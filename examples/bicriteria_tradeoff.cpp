/// \file bicriteria_tradeoff.cpp
/// \brief Theorem 1.3 hands an operator a dial: how much extra memory does
///        the online algorithm need to match an offline planner with less?
///        This example sweeps the offline cache h below the online k and
///        prints guarantee-vs-measured, answering "how much overprovision
///        buys how much certainty".
///
/// Run: ./bicriteria_tradeoff

#include <iostream>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "offline/exact_opt.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccc;

  constexpr std::size_t k = 5;
  constexpr double beta = 2.0;
  Rng rng(3);
  const Trace trace = random_uniform_trace(2, 3, 80, rng);

  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(beta));
  costs.push_back(std::make_unique<MonomialCost>(beta));

  ConvexCachingPolicy policy;
  const SimResult run = run_trace(trace, k, policy, &costs);
  const double alg = total_cost(run.metrics.miss_vector(), costs);

  Table table({"offline cache h", "guarantee factor a*k/(k-h+1)",
               "exact OPT_h cost", "measured ALG/OPT_h",
               "Thm 1.3 bound value"});
  for (std::size_t h = 1; h <= k; ++h) {
    const OptResult opt_h = exact_opt(trace, h, costs);
    const double bound = theorem13_bound(costs, opt_h.misses, k, h, beta);
    table.add(h, beta * double(k) / double(k - h + 1), opt_h.cost,
              opt_h.cost > 0.0 ? alg / opt_h.cost : 0.0, bound);
  }
  print_table(std::cout,
              "Bi-criteria dial (online k=5, f(x)=x^2): ALG cost = " +
                  format_compact(alg),
              table);
  std::cout << "The ALG column is a single number — the algorithm never\n"
               "needs to know h. The guarantee tightens from alpha*k down\n"
               "to alpha as the offline planner's memory h shrinks.\n";
  return 0;
}
