/// \file quickstart.cpp
/// \brief Five-minute tour of the library's public API:
///        1. define per-tenant convex cost functions,
///        2. generate a multi-tenant workload,
///        3. run the paper's algorithm (ALG-DISCRETE) and a baseline,
///        4. compare costs and check the Theorem 1.1 guarantee.
///
/// Run: ./quickstart

#include <iostream>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/ratio.hpp"
#include "policies/lru.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccc;

  // --- 1. Tenants and their miss costs ------------------------------------
  // Tenant 0 pays quadratically for misses (performance-sensitive);
  // tenant 1 pays linearly (batch workload).
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));       // f0(x) = x²
  costs.push_back(std::make_unique<MonomialCost>(1.0, 2.0));  // f1(x) = 2x

  // --- 2. A shared-cache workload ------------------------------------------
  // Tenant 0: Zipf-skewed hot set; tenant 1: uniform scan-ish traffic.
  std::vector<TenantWorkload> workloads;
  workloads.push_back({std::make_unique<ZipfPages>(64, 1.0), 2.0});
  workloads.push_back({std::make_unique<UniformPages>(64), 1.0});
  Rng rng(42);
  const Trace trace = generate_trace(std::move(workloads), 20'000, rng);
  const std::size_t k = 32;  // shared cache size

  // --- 3. Run the paper's algorithm and LRU on the same trace --------------
  ConvexCachingPolicy convex;  // ALG-DISCRETE (Fig. 3 of the paper)
  LruPolicy lru;
  const SimResult convex_run = run_trace(trace, k, convex, &costs);
  const SimResult lru_run = run_trace(trace, k, lru, &costs);

  Table table({"policy", "t0 misses", "t1 misses", "total cost"});
  table.add("ConvexCaching", convex_run.metrics.misses(0),
            convex_run.metrics.misses(1),
            total_cost(convex_run.metrics.miss_vector(), costs));
  table.add("LRU", lru_run.metrics.misses(0), lru_run.metrics.misses(1),
            total_cost(lru_run.metrics.miss_vector(), costs));
  print_table(std::cout, "Quickstart: cost-aware vs cost-oblivious", table);

  // --- 4. The theory, on demand --------------------------------------------
  const double alpha =
      curvature_alpha(costs, static_cast<double>(trace.size()));
  std::cout << "curvature constant alpha = " << alpha
            << "  (Theorem 1.1 factor alpha*k = " << alpha * double(k)
            << ")\n";
  std::cout << "ConvexCaching shifts misses toward the linear-cost tenant,\n"
               "which is exactly what minimizing sum_i f_i(misses_i) wants.\n";
  return 0;
}
