/// \file adversary_demo.cpp
/// \brief The Theorem 1.4 lower bound, live: an adaptive adversary reduces
///        every deterministic online policy to a 0% hit rate while an
///        offline scheme cruises.
///
/// Run: ./adversary_demo

#include <iostream>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/adversary.hpp"
#include "offline/batch_balance.hpp"
#include "policies/lru.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccc;

  constexpr std::uint32_t n = 9;       // tenants, one page each
  constexpr std::size_t kLength = 3'000;
  constexpr double beta = 2.0;         // f_i(x) = x²

  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta));

  Table table({"algorithm", "hits", "misses", "cost"});

  // Online side: the adversary watches the cache and always requests the
  // unique missing page (k = n−1 ⇒ there is exactly one).
  LruPolicy lru;
  const AdversaryRun lru_run = run_adversary(n, kLength, lru, costs);
  table.add("LRU (online)", lru_run.alg_metrics.total_hits(),
            lru_run.alg_metrics.total_misses(), lru_run.alg_cost);

  ConvexCachingPolicy convex;
  std::vector<CostFunctionPtr> costs2;
  for (std::uint32_t i = 0; i < n; ++i)
    costs2.push_back(std::make_unique<MonomialCost>(beta));
  const AdversaryRun convex_run = run_adversary(n, kLength, convex, costs2);
  table.add("ConvexCaching (online)", convex_run.alg_metrics.total_hits(),
            convex_run.alg_metrics.total_misses(), convex_run.alg_cost);

  // Offline side: §4's batch balancing on the very trace that destroyed LRU.
  BatchBalancePolicy offline((n - 1) / 2);
  const SimResult off = run_trace(lru_run.trace, n - 1, offline, &costs);
  const double off_cost = total_cost(off.metrics.miss_vector(), costs);
  table.add("BatchBalance (offline, §4)", off.metrics.total_hits(),
            off.metrics.total_misses(), off_cost);

  print_table(std::cout, "Theorem 1.4: adaptive adversary, n=9, k=8", table);
  std::cout << "online/offline gap (LRU): " << lru_run.alg_cost / off_cost
            << "  — theorem predicts at least (n/4)^beta = "
            << theorem14_lower_factor(n, beta) << "\n"
            << "No online policy can escape: the adversary is adaptive, so\n"
               "whatever page the algorithm drops is the next request.\n";
  return 0;
}
