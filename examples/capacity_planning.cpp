/// \file capacity_planning.cpp
/// \brief Operator workflow: how much memory does this tenant mix need?
///
/// One Mattson pass over an archived trace yields the exact LRU miss count
/// for every cache size; pushing those counts through the tenants' SLA
/// curves turns the miss-rate curve into a cost-vs-capacity curve, and the
/// knee of that curve is the provisioning answer. Demonstrates the
/// umbrella header and the analysis module together.
///
/// Run: ./capacity_planning

#include <iostream>

#include "analysis/mrc.hpp"
#include "ccc.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccc;

  // An archived workload (here: synthesized and saved/loaded through the
  // binary format, standing in for a production capture).
  const Trace trace = [] {
    std::vector<TenantWorkload> w;
    w.push_back({std::make_unique<ZipfPages>(200, 1.1), 2.0});
    w.push_back({std::make_unique<MarkovPages>(150, 0.85, 0.7, 3), 1.0});
    Rng rng(17);
    return generate_trace(std::move(w), 40'000, rng);
  }();

  std::vector<CostFunctionPtr> slas;
  slas.push_back(std::make_unique<PiecewiseLinearCost>(
      PiecewiseLinearCost::sla(800.0, 5.0)));
  slas.push_back(std::make_unique<PiecewiseLinearCost>(
      PiecewiseLinearCost::sla(2000.0, 2.0)));

  const MissRateCurve curve = compute_mrc(trace);

  Table table({"pool size k", "miss ratio", "refund at k",
               "marginal refund saved per extra page"});
  double previous_cost = -1.0;
  std::size_t previous_k = 0;
  for (const std::size_t k : {8u, 16u, 32u, 64u, 128u, 192u, 256u, 320u}) {
    const double cost = curve.cost_at(k, slas);
    const double marginal =
        previous_cost >= 0.0
            ? (previous_cost - cost) /
                  static_cast<double>(k - previous_k)
            : 0.0;
    table.add(k, curve.miss_ratio_at(k), cost, marginal);
    previous_cost = cost;
    previous_k = k;
  }
  print_table(std::cout, "Capacity planning from one trace pass", table);
  std::cout << "Provision where the marginal refund saved per page drops\n"
               "below the price of a page of memory — the whole curve came\n"
               "from a single O(T log T) pass, no per-k simulations.\n";
  return 0;
}
