/// \file sla_buffer_pool.cpp
/// \brief The paper's motivating scenario (§1.1): a DaaS provider shares
///        one buffer pool among tenants with SLA refund curves, after the
///        SQLVM system the authors prototyped [14, 15].
///
/// Three tenants with piecewise-linear convex SLAs replay database-like
/// traffic; the example prints the per-window refunds an operator would
/// owe under ALG-DISCRETE vs LRU, plus a per-tenant hit-rate dashboard.
///
/// Run: ./sla_buffer_pool

#include <iomanip>
#include <iostream>

#include "bufferpool/buffer_pool.hpp"
#include "core/convex_caching.hpp"
#include "cost/piecewise_linear.hpp"
#include "policies/lru.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccc;

  // SLAs: refunds kick in only above a tolerated miss budget per window —
  // the piecewise-linear convex shape §1.1 calls out explicitly.
  const auto contracts = [] {
    std::vector<TenantContract> c;
    c.push_back({"payments-db",
                 std::make_unique<PiecewiseLinearCost>(
                     PiecewiseLinearCost::sla(20.0, 8.0))});
    c.push_back({"analytics",
                 std::make_unique<PiecewiseLinearCost>(
                     PiecewiseLinearCost::sla(200.0, 1.0))});
    c.push_back({"sessions-kv",
                 std::make_unique<PiecewiseLinearCost>(
                     PiecewiseLinearCost::sla(60.0, 3.0))});
    return c;
  };

  // Workload: OLTP hot set, analytic scans, and a mid-size key-value
  // working set — synthesized stand-ins for the SQLVM traces (DESIGN.md §2).
  const Trace trace = [] {
    std::vector<TenantWorkload> w;
    w.push_back({std::make_unique<ZipfPages>(256, 1.2), 3.0});
    w.push_back({std::make_unique<ScanPages>(512), 1.5});
    w.push_back({std::make_unique<WorkingSetPages>(256, 48, 4000, 0.9), 2.0});
    Rng rng(7);
    return generate_trace(std::move(w), 50'000, rng);
  }();

  constexpr std::size_t kPoolPages = 256;
  constexpr std::size_t kWindow = 2'000;

  Table table({"policy", "tenant", "hit rate", "misses", "refund owed"});
  double totals[2] = {0.0, 0.0};
  int row = 0;
  for (const bool cost_aware : {true, false}) {
    std::unique_ptr<ReplacementPolicy> policy;
    if (cost_aware)
      policy = std::make_unique<ConvexCachingPolicy>();
    else
      policy = std::make_unique<LruPolicy>();
    BufferPool pool(kPoolPages, contracts(), std::move(policy), kWindow);
    pool.replay(trace);
    const BufferPoolReport report = pool.report();
    for (std::size_t i = 0; i < report.tenant_names.size(); ++i) {
      const double accesses =
          static_cast<double>(report.hits[i] + report.misses[i]);
      const double hit_rate =
          accesses > 0.0 ? static_cast<double>(report.hits[i]) / accesses
                         : 0.0;
      table.add(report.policy_name, report.tenant_names[i], hit_rate,
                report.misses[i], report.refunds[i]);
    }
    totals[row++] = report.total_refund;
  }
  print_table(std::cout, "DaaS buffer pool: SLA refunds per policy", table);

  std::cout << std::fixed << std::setprecision(1)
            << "total refund  ConvexCaching: " << totals[0]
            << "   LRU: " << totals[1] << "\n"
            << "The cost-aware policy spends its misses where the SLA is\n"
               "cheapest (the analytics tenant), cutting the provider's\n"
               "refund bill.\n";
  return 0;
}
