/// \file multipool_migration.cpp
/// \brief The §5 future-work scenario: tenants pinned to physical servers
///        (memory pools), with migration under a switching cost. Watch the
///        greedy rebalancer split two thrashing tenants across pools.
///
/// Run: ./multipool_migration

#include <iostream>

#include "cost/monomial.hpp"
#include "multipool/multi_pool.hpp"
#include "policies/lru.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace ccc;

  constexpr std::uint32_t kTenants = 4;
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < kTenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(2.0, 1.0 + i));

  // All four tenants start on pool 0; pool 1 idles.
  const Trace trace = [] {
    std::vector<TenantWorkload> w;
    for (std::uint32_t i = 0; i < kTenants; ++i)
      w.push_back({std::make_unique<ZipfPages>(48, 0.8), 1.0});
    Rng rng(99);
    return generate_trace(std::move(w), 30'000, rng);
  }();

  Table table({"configuration", "miss cost", "migrations",
               "switching paid", "total"});
  for (const bool rebalance : {false, true}) {
    MultiPoolOptions options;
    options.pool_capacities = {48, 48};
    options.switching_cost = 100.0;
    options.rebalance_period = rebalance ? 2'000 : 0;
    MultiPoolManager mgr(
        options, [] { return std::make_unique<LruPolicy>(); },
        std::vector<std::size_t>(kTenants, 0), costs);
    mgr.replay(trace);
    const MultiPoolReport r = mgr.report();
    table.add(rebalance ? "greedy rebalancer" : "static (all on pool 0)",
              r.miss_cost, r.migrations, r.switching_cost_paid,
              r.total_cost);
    if (rebalance) {
      std::cout << "final assignment:";
      for (std::uint32_t i = 0; i < kTenants; ++i)
        std::cout << "  tenant" << i << "->pool" << mgr.pool_of(i);
      std::cout << '\n';
    }
  }
  print_table(std::cout, "Multipool migration (§5 future work)", table);
  std::cout << "The rebalancer pays a few switching fees to stop four\n"
               "tenants from fighting over one pool while the other idles.\n";
  return 0;
}
