# Negative-compile proof that the thread-safety annotations actually bite.
#
# A thread-safety gate can rot in two silent ways: the attributes stop
# being emitted (macro regression, compiler change) or the warning flag
# stops being an error. Either way the CI job keeps passing while checking
# nothing. This module try_compiles one probe source twice at configure
# time:
#
#   1. positive: locked access to a CCC_GUARDED_BY field — must COMPILE;
#   2. negative: the same field read without the lock
#      (-DCCC_NEGATIVE_UNLOCKED_ACCESS) — must FAIL under
#      -Wthread-safety -Werror=thread-safety.
#
# If the negative probe compiles, the analysis is inert and configuration
# aborts — the gate refuses to pretend.

function(ccc_assert_thread_safety_bites)
  set(probe_src ${CMAKE_SOURCE_DIR}/tests/negative_compile/guarded_access.cpp)
  set(probe_flags
      -Wthread-safety -Werror=thread-safety
      -I${CMAKE_SOURCE_DIR}/src)

  try_compile(ccc_ts_positive_ok
    ${CMAKE_BINARY_DIR}/ts_probe_positive
    ${probe_src}
    COMPILE_DEFINITIONS "${probe_flags}"
    CXX_STANDARD 20 CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE ccc_ts_positive_log)
  if(NOT ccc_ts_positive_ok)
    message(FATAL_ERROR
            "thread-safety probe failed to compile in its CORRECT form — "
            "the annotation headers are broken:\n${ccc_ts_positive_log}")
  endif()

  try_compile(ccc_ts_negative_ok
    ${CMAKE_BINARY_DIR}/ts_probe_negative
    ${probe_src}
    COMPILE_DEFINITIONS "${probe_flags};-DCCC_NEGATIVE_UNLOCKED_ACCESS"
    CXX_STANDARD 20 CXX_STANDARD_REQUIRED ON)
  if(ccc_ts_negative_ok)
    message(FATAL_ERROR
            "thread-safety probe COMPILED with an unlocked access to a "
            "CCC_GUARDED_BY field — the analysis is inert (macro regression "
            "or missing -Werror=thread-safety) and the gate would check "
            "nothing.")
  endif()
  message(STATUS
          "Thread-safety annotations verified: unlocked guarded access is "
          "rejected at compile time")
endfunction()

ccc_assert_thread_safety_bites()
