# Empty dependencies file for e6_throughput.
# This may be replaced when dependencies are built.
