file(REMOVE_RECURSE
  "CMakeFiles/e6_throughput.dir/e6_throughput.cpp.o"
  "CMakeFiles/e6_throughput.dir/e6_throughput.cpp.o.d"
  "e6_throughput"
  "e6_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
