file(REMOVE_RECURSE
  "CMakeFiles/e5_ablations.dir/e5_ablations.cpp.o"
  "CMakeFiles/e5_ablations.dir/e5_ablations.cpp.o.d"
  "e5_ablations"
  "e5_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
