# Empty dependencies file for e5_ablations.
# This may be replaced when dependencies are built.
