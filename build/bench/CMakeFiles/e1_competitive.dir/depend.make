# Empty dependencies file for e1_competitive.
# This may be replaced when dependencies are built.
