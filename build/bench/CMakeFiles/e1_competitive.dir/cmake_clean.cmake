file(REMOVE_RECURSE
  "CMakeFiles/e1_competitive.dir/e1_competitive.cpp.o"
  "CMakeFiles/e1_competitive.dir/e1_competitive.cpp.o.d"
  "e1_competitive"
  "e1_competitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
