# Empty dependencies file for e3_lowerbound.
# This may be replaced when dependencies are built.
