file(REMOVE_RECURSE
  "CMakeFiles/e3_lowerbound.dir/e3_lowerbound.cpp.o"
  "CMakeFiles/e3_lowerbound.dir/e3_lowerbound.cpp.o.d"
  "e3_lowerbound"
  "e3_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
