# Empty compiler generated dependencies file for e8_mrc.
# This may be replaced when dependencies are built.
