file(REMOVE_RECURSE
  "CMakeFiles/e8_mrc.dir/e8_mrc.cpp.o"
  "CMakeFiles/e8_mrc.dir/e8_mrc.cpp.o.d"
  "e8_mrc"
  "e8_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
