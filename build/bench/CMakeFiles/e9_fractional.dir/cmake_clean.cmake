file(REMOVE_RECURSE
  "CMakeFiles/e9_fractional.dir/e9_fractional.cpp.o"
  "CMakeFiles/e9_fractional.dir/e9_fractional.cpp.o.d"
  "e9_fractional"
  "e9_fractional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_fractional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
