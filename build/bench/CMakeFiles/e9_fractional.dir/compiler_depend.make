# Empty compiler generated dependencies file for e9_fractional.
# This may be replaced when dependencies are built.
