# Empty compiler generated dependencies file for e4_sla_workloads.
# This may be replaced when dependencies are built.
