file(REMOVE_RECURSE
  "CMakeFiles/e4_sla_workloads.dir/e4_sla_workloads.cpp.o"
  "CMakeFiles/e4_sla_workloads.dir/e4_sla_workloads.cpp.o.d"
  "e4_sla_workloads"
  "e4_sla_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_sla_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
