file(REMOVE_RECURSE
  "CMakeFiles/e7_multipool.dir/e7_multipool.cpp.o"
  "CMakeFiles/e7_multipool.dir/e7_multipool.cpp.o.d"
  "e7_multipool"
  "e7_multipool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_multipool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
