# Empty compiler generated dependencies file for e7_multipool.
# This may be replaced when dependencies are built.
