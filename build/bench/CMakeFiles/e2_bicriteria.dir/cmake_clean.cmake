file(REMOVE_RECURSE
  "CMakeFiles/e2_bicriteria.dir/e2_bicriteria.cpp.o"
  "CMakeFiles/e2_bicriteria.dir/e2_bicriteria.cpp.o.d"
  "e2_bicriteria"
  "e2_bicriteria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_bicriteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
