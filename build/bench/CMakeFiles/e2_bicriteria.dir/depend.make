# Empty dependencies file for e2_bicriteria.
# This may be replaced when dependencies are built.
