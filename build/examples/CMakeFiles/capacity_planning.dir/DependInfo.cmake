
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planning.cpp" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o" "gcc" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ccc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/bufferpool/CMakeFiles/ccc_bufferpool.dir/DependInfo.cmake"
  "/root/repo/build/src/multipool/CMakeFiles/ccc_multipool.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ccc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/ccc_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/ccc_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ccc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
