# Empty compiler generated dependencies file for multipool_migration.
# This may be replaced when dependencies are built.
