file(REMOVE_RECURSE
  "CMakeFiles/multipool_migration.dir/multipool_migration.cpp.o"
  "CMakeFiles/multipool_migration.dir/multipool_migration.cpp.o.d"
  "multipool_migration"
  "multipool_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipool_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
