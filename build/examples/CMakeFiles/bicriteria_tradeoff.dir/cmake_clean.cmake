file(REMOVE_RECURSE
  "CMakeFiles/bicriteria_tradeoff.dir/bicriteria_tradeoff.cpp.o"
  "CMakeFiles/bicriteria_tradeoff.dir/bicriteria_tradeoff.cpp.o.d"
  "bicriteria_tradeoff"
  "bicriteria_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicriteria_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
