# Empty dependencies file for bicriteria_tradeoff.
# This may be replaced when dependencies are built.
