# Empty compiler generated dependencies file for sla_buffer_pool.
# This may be replaced when dependencies are built.
