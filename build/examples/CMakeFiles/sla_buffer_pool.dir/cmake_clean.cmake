file(REMOVE_RECURSE
  "CMakeFiles/sla_buffer_pool.dir/sla_buffer_pool.cpp.o"
  "CMakeFiles/sla_buffer_pool.dir/sla_buffer_pool.cpp.o.d"
  "sla_buffer_pool"
  "sla_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
