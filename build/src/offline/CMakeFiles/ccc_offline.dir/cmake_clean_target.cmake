file(REMOVE_RECURSE
  "libccc_offline.a"
)
