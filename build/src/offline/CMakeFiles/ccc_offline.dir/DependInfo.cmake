
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/batch_balance.cpp" "src/offline/CMakeFiles/ccc_offline.dir/batch_balance.cpp.o" "gcc" "src/offline/CMakeFiles/ccc_offline.dir/batch_balance.cpp.o.d"
  "/root/repo/src/offline/exact_opt.cpp" "src/offline/CMakeFiles/ccc_offline.dir/exact_opt.cpp.o" "gcc" "src/offline/CMakeFiles/ccc_offline.dir/exact_opt.cpp.o.d"
  "/root/repo/src/offline/opt_bounds.cpp" "src/offline/CMakeFiles/ccc_offline.dir/opt_bounds.cpp.o" "gcc" "src/offline/CMakeFiles/ccc_offline.dir/opt_bounds.cpp.o.d"
  "/root/repo/src/offline/weighted_belady.cpp" "src/offline/CMakeFiles/ccc_offline.dir/weighted_belady.cpp.o" "gcc" "src/offline/CMakeFiles/ccc_offline.dir/weighted_belady.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/ccc_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ccc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
