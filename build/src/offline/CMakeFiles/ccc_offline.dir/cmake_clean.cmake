file(REMOVE_RECURSE
  "CMakeFiles/ccc_offline.dir/batch_balance.cpp.o"
  "CMakeFiles/ccc_offline.dir/batch_balance.cpp.o.d"
  "CMakeFiles/ccc_offline.dir/exact_opt.cpp.o"
  "CMakeFiles/ccc_offline.dir/exact_opt.cpp.o.d"
  "CMakeFiles/ccc_offline.dir/opt_bounds.cpp.o"
  "CMakeFiles/ccc_offline.dir/opt_bounds.cpp.o.d"
  "CMakeFiles/ccc_offline.dir/weighted_belady.cpp.o"
  "CMakeFiles/ccc_offline.dir/weighted_belady.cpp.o.d"
  "libccc_offline.a"
  "libccc_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
