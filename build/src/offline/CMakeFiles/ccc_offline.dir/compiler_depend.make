# Empty compiler generated dependencies file for ccc_offline.
# This may be replaced when dependencies are built.
