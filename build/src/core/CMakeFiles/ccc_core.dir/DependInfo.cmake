
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/convex_caching.cpp" "src/core/CMakeFiles/ccc_core.dir/convex_caching.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/convex_caching.cpp.o.d"
  "/root/repo/src/core/convex_program.cpp" "src/core/CMakeFiles/ccc_core.dir/convex_program.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/convex_program.cpp.o.d"
  "/root/repo/src/core/fractional.cpp" "src/core/CMakeFiles/ccc_core.dir/fractional.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/fractional.cpp.o.d"
  "/root/repo/src/core/invariants.cpp" "src/core/CMakeFiles/ccc_core.dir/invariants.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/invariants.cpp.o.d"
  "/root/repo/src/core/naive_convex_caching.cpp" "src/core/CMakeFiles/ccc_core.dir/naive_convex_caching.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/naive_convex_caching.cpp.o.d"
  "/root/repo/src/core/primal_dual.cpp" "src/core/CMakeFiles/ccc_core.dir/primal_dual.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/primal_dual.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/core/CMakeFiles/ccc_core.dir/theory.cpp.o" "gcc" "src/core/CMakeFiles/ccc_core.dir/theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ccc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
