file(REMOVE_RECURSE
  "CMakeFiles/ccc_core.dir/convex_caching.cpp.o"
  "CMakeFiles/ccc_core.dir/convex_caching.cpp.o.d"
  "CMakeFiles/ccc_core.dir/convex_program.cpp.o"
  "CMakeFiles/ccc_core.dir/convex_program.cpp.o.d"
  "CMakeFiles/ccc_core.dir/fractional.cpp.o"
  "CMakeFiles/ccc_core.dir/fractional.cpp.o.d"
  "CMakeFiles/ccc_core.dir/invariants.cpp.o"
  "CMakeFiles/ccc_core.dir/invariants.cpp.o.d"
  "CMakeFiles/ccc_core.dir/naive_convex_caching.cpp.o"
  "CMakeFiles/ccc_core.dir/naive_convex_caching.cpp.o.d"
  "CMakeFiles/ccc_core.dir/primal_dual.cpp.o"
  "CMakeFiles/ccc_core.dir/primal_dual.cpp.o.d"
  "CMakeFiles/ccc_core.dir/theory.cpp.o"
  "CMakeFiles/ccc_core.dir/theory.cpp.o.d"
  "libccc_core.a"
  "libccc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
