# Empty compiler generated dependencies file for ccc_bufferpool.
# This may be replaced when dependencies are built.
