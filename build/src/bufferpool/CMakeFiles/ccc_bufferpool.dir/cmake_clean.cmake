file(REMOVE_RECURSE
  "CMakeFiles/ccc_bufferpool.dir/buffer_pool.cpp.o"
  "CMakeFiles/ccc_bufferpool.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/ccc_bufferpool.dir/window_accounting.cpp.o"
  "CMakeFiles/ccc_bufferpool.dir/window_accounting.cpp.o.d"
  "libccc_bufferpool.a"
  "libccc_bufferpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_bufferpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
