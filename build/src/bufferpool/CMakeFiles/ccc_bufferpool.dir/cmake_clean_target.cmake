file(REMOVE_RECURSE
  "libccc_bufferpool.a"
)
