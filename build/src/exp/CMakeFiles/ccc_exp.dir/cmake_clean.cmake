file(REMOVE_RECURSE
  "CMakeFiles/ccc_exp.dir/adversary.cpp.o"
  "CMakeFiles/ccc_exp.dir/adversary.cpp.o.d"
  "CMakeFiles/ccc_exp.dir/policy_factory.cpp.o"
  "CMakeFiles/ccc_exp.dir/policy_factory.cpp.o.d"
  "CMakeFiles/ccc_exp.dir/ratio.cpp.o"
  "CMakeFiles/ccc_exp.dir/ratio.cpp.o.d"
  "libccc_exp.a"
  "libccc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
