# Empty dependencies file for ccc_exp.
# This may be replaced when dependencies are built.
