file(REMOVE_RECURSE
  "libccc_exp.a"
)
