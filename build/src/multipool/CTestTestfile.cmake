# CMake generated Testfile for 
# Source directory: /root/repo/src/multipool
# Build directory: /root/repo/build/src/multipool
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
