file(REMOVE_RECURSE
  "libccc_multipool.a"
)
