file(REMOVE_RECURSE
  "CMakeFiles/ccc_multipool.dir/multi_pool.cpp.o"
  "CMakeFiles/ccc_multipool.dir/multi_pool.cpp.o.d"
  "libccc_multipool.a"
  "libccc_multipool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_multipool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
