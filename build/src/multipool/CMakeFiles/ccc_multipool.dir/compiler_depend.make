# Empty compiler generated dependencies file for ccc_multipool.
# This may be replaced when dependencies are built.
