file(REMOVE_RECURSE
  "CMakeFiles/ccc_analysis.dir/mrc.cpp.o"
  "CMakeFiles/ccc_analysis.dir/mrc.cpp.o.d"
  "libccc_analysis.a"
  "libccc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
