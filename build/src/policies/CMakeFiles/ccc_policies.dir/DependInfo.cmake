
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/arc.cpp" "src/policies/CMakeFiles/ccc_policies.dir/arc.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/arc.cpp.o.d"
  "/root/repo/src/policies/belady.cpp" "src/policies/CMakeFiles/ccc_policies.dir/belady.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/belady.cpp.o.d"
  "/root/repo/src/policies/clock.cpp" "src/policies/CMakeFiles/ccc_policies.dir/clock.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/clock.cpp.o.d"
  "/root/repo/src/policies/fifo.cpp" "src/policies/CMakeFiles/ccc_policies.dir/fifo.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/fifo.cpp.o.d"
  "/root/repo/src/policies/landlord.cpp" "src/policies/CMakeFiles/ccc_policies.dir/landlord.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/landlord.cpp.o.d"
  "/root/repo/src/policies/lfu.cpp" "src/policies/CMakeFiles/ccc_policies.dir/lfu.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/lfu.cpp.o.d"
  "/root/repo/src/policies/lru.cpp" "src/policies/CMakeFiles/ccc_policies.dir/lru.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/lru.cpp.o.d"
  "/root/repo/src/policies/lru_k.cpp" "src/policies/CMakeFiles/ccc_policies.dir/lru_k.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/lru_k.cpp.o.d"
  "/root/repo/src/policies/marking.cpp" "src/policies/CMakeFiles/ccc_policies.dir/marking.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/marking.cpp.o.d"
  "/root/repo/src/policies/random_policy.cpp" "src/policies/CMakeFiles/ccc_policies.dir/random_policy.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/random_policy.cpp.o.d"
  "/root/repo/src/policies/randomized_marking.cpp" "src/policies/CMakeFiles/ccc_policies.dir/randomized_marking.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/randomized_marking.cpp.o.d"
  "/root/repo/src/policies/static_partition.cpp" "src/policies/CMakeFiles/ccc_policies.dir/static_partition.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/static_partition.cpp.o.d"
  "/root/repo/src/policies/two_q.cpp" "src/policies/CMakeFiles/ccc_policies.dir/two_q.cpp.o" "gcc" "src/policies/CMakeFiles/ccc_policies.dir/two_q.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ccc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
