# Empty compiler generated dependencies file for ccc_policies.
# This may be replaced when dependencies are built.
