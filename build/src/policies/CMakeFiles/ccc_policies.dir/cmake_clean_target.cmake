file(REMOVE_RECURSE
  "libccc_policies.a"
)
