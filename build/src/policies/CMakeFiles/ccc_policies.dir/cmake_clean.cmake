file(REMOVE_RECURSE
  "CMakeFiles/ccc_policies.dir/arc.cpp.o"
  "CMakeFiles/ccc_policies.dir/arc.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/belady.cpp.o"
  "CMakeFiles/ccc_policies.dir/belady.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/clock.cpp.o"
  "CMakeFiles/ccc_policies.dir/clock.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/fifo.cpp.o"
  "CMakeFiles/ccc_policies.dir/fifo.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/landlord.cpp.o"
  "CMakeFiles/ccc_policies.dir/landlord.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/lfu.cpp.o"
  "CMakeFiles/ccc_policies.dir/lfu.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/lru.cpp.o"
  "CMakeFiles/ccc_policies.dir/lru.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/lru_k.cpp.o"
  "CMakeFiles/ccc_policies.dir/lru_k.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/marking.cpp.o"
  "CMakeFiles/ccc_policies.dir/marking.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/random_policy.cpp.o"
  "CMakeFiles/ccc_policies.dir/random_policy.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/randomized_marking.cpp.o"
  "CMakeFiles/ccc_policies.dir/randomized_marking.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/static_partition.cpp.o"
  "CMakeFiles/ccc_policies.dir/static_partition.cpp.o.d"
  "CMakeFiles/ccc_policies.dir/two_q.cpp.o"
  "CMakeFiles/ccc_policies.dir/two_q.cpp.o.d"
  "libccc_policies.a"
  "libccc_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
