file(REMOVE_RECURSE
  "CMakeFiles/ccc_trace.dir/generators.cpp.o"
  "CMakeFiles/ccc_trace.dir/generators.cpp.o.d"
  "CMakeFiles/ccc_trace.dir/trace.cpp.o"
  "CMakeFiles/ccc_trace.dir/trace.cpp.o.d"
  "CMakeFiles/ccc_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ccc_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/ccc_trace.dir/transforms.cpp.o"
  "CMakeFiles/ccc_trace.dir/transforms.cpp.o.d"
  "libccc_trace.a"
  "libccc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
