file(REMOVE_RECURSE
  "libccc_trace.a"
)
