# Empty dependencies file for ccc_trace.
# This may be replaced when dependencies are built.
