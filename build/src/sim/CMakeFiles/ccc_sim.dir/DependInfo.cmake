
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_state.cpp" "src/sim/CMakeFiles/ccc_sim.dir/cache_state.cpp.o" "gcc" "src/sim/CMakeFiles/ccc_sim.dir/cache_state.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/ccc_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/ccc_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/ccc_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/ccc_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ccc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
