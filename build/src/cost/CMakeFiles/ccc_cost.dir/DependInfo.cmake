
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/combinators.cpp" "src/cost/CMakeFiles/ccc_cost.dir/combinators.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/combinators.cpp.o.d"
  "/root/repo/src/cost/cost_function.cpp" "src/cost/CMakeFiles/ccc_cost.dir/cost_function.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/cost_function.cpp.o.d"
  "/root/repo/src/cost/exponential.cpp" "src/cost/CMakeFiles/ccc_cost.dir/exponential.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/exponential.cpp.o.d"
  "/root/repo/src/cost/monomial.cpp" "src/cost/CMakeFiles/ccc_cost.dir/monomial.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/monomial.cpp.o.d"
  "/root/repo/src/cost/piecewise_linear.cpp" "src/cost/CMakeFiles/ccc_cost.dir/piecewise_linear.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/piecewise_linear.cpp.o.d"
  "/root/repo/src/cost/polynomial.cpp" "src/cost/CMakeFiles/ccc_cost.dir/polynomial.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/polynomial.cpp.o.d"
  "/root/repo/src/cost/spec.cpp" "src/cost/CMakeFiles/ccc_cost.dir/spec.cpp.o" "gcc" "src/cost/CMakeFiles/ccc_cost.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
