file(REMOVE_RECURSE
  "CMakeFiles/ccc_cost.dir/combinators.cpp.o"
  "CMakeFiles/ccc_cost.dir/combinators.cpp.o.d"
  "CMakeFiles/ccc_cost.dir/cost_function.cpp.o"
  "CMakeFiles/ccc_cost.dir/cost_function.cpp.o.d"
  "CMakeFiles/ccc_cost.dir/exponential.cpp.o"
  "CMakeFiles/ccc_cost.dir/exponential.cpp.o.d"
  "CMakeFiles/ccc_cost.dir/monomial.cpp.o"
  "CMakeFiles/ccc_cost.dir/monomial.cpp.o.d"
  "CMakeFiles/ccc_cost.dir/piecewise_linear.cpp.o"
  "CMakeFiles/ccc_cost.dir/piecewise_linear.cpp.o.d"
  "CMakeFiles/ccc_cost.dir/polynomial.cpp.o"
  "CMakeFiles/ccc_cost.dir/polynomial.cpp.o.d"
  "CMakeFiles/ccc_cost.dir/spec.cpp.o"
  "CMakeFiles/ccc_cost.dir/spec.cpp.o.d"
  "libccc_cost.a"
  "libccc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
