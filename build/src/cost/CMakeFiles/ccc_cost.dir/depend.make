# Empty dependencies file for ccc_cost.
# This may be replaced when dependencies are built.
