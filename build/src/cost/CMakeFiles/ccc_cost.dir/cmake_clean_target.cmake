file(REMOVE_RECURSE
  "libccc_cost.a"
)
