# Empty compiler generated dependencies file for ccc_tests.
# This may be replaced when dependencies are built.
