
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adversary.cpp" "tests/CMakeFiles/ccc_tests.dir/test_adversary.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_adversary.cpp.o.d"
  "/root/repo/tests/test_arc.cpp" "tests/CMakeFiles/ccc_tests.dir/test_arc.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_arc.cpp.o.d"
  "/root/repo/tests/test_batch_balance.cpp" "tests/CMakeFiles/ccc_tests.dir/test_batch_balance.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_batch_balance.cpp.o.d"
  "/root/repo/tests/test_belady.cpp" "tests/CMakeFiles/ccc_tests.dir/test_belady.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_belady.cpp.o.d"
  "/root/repo/tests/test_buffer_pool.cpp" "tests/CMakeFiles/ccc_tests.dir/test_buffer_pool.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_buffer_pool.cpp.o.d"
  "/root/repo/tests/test_cache_state.cpp" "tests/CMakeFiles/ccc_tests.dir/test_cache_state.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_cache_state.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/ccc_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_clock.cpp" "tests/CMakeFiles/ccc_tests.dir/test_clock.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_clock.cpp.o.d"
  "/root/repo/tests/test_competitive_bound.cpp" "tests/CMakeFiles/ccc_tests.dir/test_competitive_bound.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_competitive_bound.cpp.o.d"
  "/root/repo/tests/test_convex_caching.cpp" "tests/CMakeFiles/ccc_tests.dir/test_convex_caching.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_convex_caching.cpp.o.d"
  "/root/repo/tests/test_convex_program.cpp" "tests/CMakeFiles/ccc_tests.dir/test_convex_program.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_convex_program.cpp.o.d"
  "/root/repo/tests/test_cost_functions.cpp" "tests/CMakeFiles/ccc_tests.dir/test_cost_functions.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_cost_functions.cpp.o.d"
  "/root/repo/tests/test_cost_spec.cpp" "tests/CMakeFiles/ccc_tests.dir/test_cost_spec.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_cost_spec.cpp.o.d"
  "/root/repo/tests/test_exact_opt.cpp" "tests/CMakeFiles/ccc_tests.dir/test_exact_opt.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_exact_opt.cpp.o.d"
  "/root/repo/tests/test_fault_injection.cpp" "tests/CMakeFiles/ccc_tests.dir/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_fault_injection.cpp.o.d"
  "/root/repo/tests/test_fractional.cpp" "tests/CMakeFiles/ccc_tests.dir/test_fractional.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_fractional.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/ccc_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_headline_claims.cpp" "tests/CMakeFiles/ccc_tests.dir/test_headline_claims.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_headline_claims.cpp.o.d"
  "/root/repo/tests/test_invariants.cpp" "tests/CMakeFiles/ccc_tests.dir/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_invariants.cpp.o.d"
  "/root/repo/tests/test_landlord.cpp" "tests/CMakeFiles/ccc_tests.dir/test_landlord.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_landlord.cpp.o.d"
  "/root/repo/tests/test_lower_bound.cpp" "tests/CMakeFiles/ccc_tests.dir/test_lower_bound.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_lower_bound.cpp.o.d"
  "/root/repo/tests/test_lru_k.cpp" "tests/CMakeFiles/ccc_tests.dir/test_lru_k.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_lru_k.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/ccc_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mrc.cpp" "tests/CMakeFiles/ccc_tests.dir/test_mrc.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_mrc.cpp.o.d"
  "/root/repo/tests/test_multipool.cpp" "tests/CMakeFiles/ccc_tests.dir/test_multipool.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_multipool.cpp.o.d"
  "/root/repo/tests/test_opt_bounds.cpp" "tests/CMakeFiles/ccc_tests.dir/test_opt_bounds.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_opt_bounds.cpp.o.d"
  "/root/repo/tests/test_policies_basic.cpp" "tests/CMakeFiles/ccc_tests.dir/test_policies_basic.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_policies_basic.cpp.o.d"
  "/root/repo/tests/test_policy_factory.cpp" "tests/CMakeFiles/ccc_tests.dir/test_policy_factory.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_policy_factory.cpp.o.d"
  "/root/repo/tests/test_primal_dual.cpp" "tests/CMakeFiles/ccc_tests.dir/test_primal_dual.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_primal_dual.cpp.o.d"
  "/root/repo/tests/test_randomized_marking.cpp" "tests/CMakeFiles/ccc_tests.dir/test_randomized_marking.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_randomized_marking.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ccc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/ccc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_static_partition.cpp" "tests/CMakeFiles/ccc_tests.dir/test_static_partition.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_static_partition.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ccc_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_string_util.cpp" "tests/CMakeFiles/ccc_tests.dir/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_string_util.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/ccc_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_theory.cpp" "tests/CMakeFiles/ccc_tests.dir/test_theory.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_theory.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/ccc_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ccc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/ccc_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_transforms.cpp" "tests/CMakeFiles/ccc_tests.dir/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_transforms.cpp.o.d"
  "/root/repo/tests/test_two_q.cpp" "tests/CMakeFiles/ccc_tests.dir/test_two_q.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_two_q.cpp.o.d"
  "/root/repo/tests/test_umbrella.cpp" "tests/CMakeFiles/ccc_tests.dir/test_umbrella.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_umbrella.cpp.o.d"
  "/root/repo/tests/test_weighted_belady.cpp" "tests/CMakeFiles/ccc_tests.dir/test_weighted_belady.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_weighted_belady.cpp.o.d"
  "/root/repo/tests/test_window_accounting.cpp" "tests/CMakeFiles/ccc_tests.dir/test_window_accounting.cpp.o" "gcc" "tests/CMakeFiles/ccc_tests.dir/test_window_accounting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/ccc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/bufferpool/CMakeFiles/ccc_bufferpool.dir/DependInfo.cmake"
  "/root/repo/build/src/multipool/CMakeFiles/ccc_multipool.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ccc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/ccc_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/ccc_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ccc_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
