/// \file e9_fractional.cpp
/// \brief Experiment E9 — integral ALG-DISCRETE vs the fractional
///        relaxation ([3]-style exponential profile, §1.3 lineage).
///
/// Randomization/fractionality is the dividing line of the paper's theory:
/// Theorem 1.4's Ω(k)^β lower bound binds only deterministic integral
/// algorithms, while [3] gets O(log k) for weighted caching fractionally.
/// This bench measures that gap empirically: fractional miss mass vs the
/// integral algorithm's misses vs the OPT bracket, for linear (the [3]
/// setting) and convex (the paper's) costs. Shape: fractional ≤ integral
/// everywhere, with the widest gap on cyclic/scan patterns where integral
/// policies thrash.

#include <iostream>

#include "core/convex_caching.hpp"
#include "core/fractional.hpp"
#include "cost/monomial.hpp"
#include "offline/opt_bounds.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

Trace make_trace(const std::string& kind, std::uint32_t tenants,
                 std::size_t length, std::uint64_t seed) {
  std::vector<TenantWorkload> w;
  for (std::uint32_t i = 0; i < tenants; ++i) {
    // Working sets sized near the cache: the regime where fractional
    // residency pays (far larger sets thrash everyone equally).
    if (kind == "zipf")
      w.push_back({std::make_unique<ZipfPages>(24, 1.0), 1.0});
    else if (kind == "scan")
      w.push_back({std::make_unique<ScanPages>(10), 1.0});
    else
      w.push_back({std::make_unique<UniformPages>(12), 1.0});
  }
  Rng rng(seed);
  return generate_trace(std::move(w), length, rng);
}

int run(int argc, const char* const* argv) {
  Cli cli("E9: integral ALG-DISCRETE vs the fractional relaxation "
          "(Bansal-Buchbinder-Naor-style exponential profile)");
  cli.flag("k", "16", "cache size")
      .flag("tenants", "2", "number of tenants")
      .flag("length", "8000", "requests per trace")
      .flag("betas", "1,2", "monomial exponents")
      .flag("seed", "17", "workload seed")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t k = cli.get_u64("k");
  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const std::size_t length = cli.get_u64("length");

  Table table({"workload", "beta", "integral cost", "fractional objective",
               "fractional/integral", "OPT upper (heuristic)"});

  for (const std::string kind : {"zipf", "scan", "uniform"}) {
    for (const double beta : cli.get_double_list("betas")) {
      const Trace trace =
          make_trace(kind, tenants, length, cli.get_u64("seed"));
      std::vector<CostFunctionPtr> costs;
      for (std::uint32_t i = 0; i < tenants; ++i)
        costs.push_back(std::make_unique<MonomialCost>(beta, 1.0 + i));

      ConvexCachingPolicy integral;
      const SimResult run = run_trace(trace, k, integral, &costs);
      const double integral_cost =
          total_cost(run.metrics.miss_vector(), costs);

      const FractionalResult frac =
          run_fractional_caching(trace, k, costs);

      const OptEstimate opt = estimate_opt(trace, k, costs, 0);
      table.add(kind, beta, integral_cost, frac.objective,
                integral_cost > 0.0 ? frac.objective / integral_cost : 0.0,
                opt.upper_cost);
    }
  }

  print_table(std::cout,
              "E9 — fractional relaxation vs integral algorithm (k=" +
                  std::to_string(k) + ")",
              table);
  std::cout << "Reading: the fractional profile's edge is regime-dependent:\n"
               "it wins decisively on tight scans with convex costs (the\n"
               "thrashing pattern behind every paging lower bound), tracks\n"
               "the integral algorithm on mixed traffic, and its adaptive-\n"
               "weight generalization can trail slightly on skewed convex\n"
               "workloads — the relaxation is machinery, not magic.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
