/// \file e2_bicriteria.cpp
/// \brief Experiment E2 — Theorem 1.3's bi-criteria trade-off.
///
/// ALG runs with cache k while OPT is restricted to h ≤ k. The guarantee
/// improves from α·k (h = k) down to α (h = 1): the blow-up factor is
/// α·k/(k−h+1). This bench sweeps h for a fixed k, solving the h-restricted
/// offline problem exactly, and prints measured-vs-bound per h. Shape to
/// expect: measured ratio *falls* as h shrinks (OPT gets weaker), and the
/// bound falls in lockstep — the ALG cost itself is constant down the
/// column because the algorithm never depends on h.

#include <iostream>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "offline/exact_opt.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

int run(int argc, const char* const* argv) {
  Cli cli("E2: bi-criteria guarantee (Theorem 1.3) — ALG with cache k vs "
          "exact OPT with cache h <= k");
  cli.flag("beta", "2", "monomial exponent")
      .flag("k", "5", "online cache size")
      .flag("tenants", "2", "number of tenants")
      .flag("pages", "3", "pages per tenant")
      .flag("length", "60", "requests per trace")
      .flag("trials", "8", "random traces per h")
      .flag("seed", "2", "base RNG seed")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const double beta = cli.get_double("beta");
  const std::size_t k = cli.get_u64("k");
  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const std::uint64_t pages = cli.get_u64("pages");
  const std::size_t length = cli.get_u64("length");
  const std::size_t trials = cli.get_u64("trials");

  Table table({"h", "blowup a*k/(k-h+1)", "mean ALG/OPT_h", "max ALG/OPT_h",
               "mean bound ratio", "Thm1.3 holds"});

  // Pre-generate the trials once so every h row sees the same traces.
  std::vector<Trace> traces;
  Rng rng(cli.get_u64("seed"));
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng trial_rng = rng.split();
    traces.push_back(random_uniform_trace(tenants, pages, length, trial_rng));
  }

  for (std::size_t h = 1; h <= k; ++h) {
    RunningStats ratio_stats, bound_stats;
    bool holds = true;
    for (const Trace& trace : traces) {
      std::vector<CostFunctionPtr> costs;
      for (std::uint32_t i = 0; i < tenants; ++i)
        costs.push_back(std::make_unique<MonomialCost>(beta));
      ConvexCachingPolicy policy;
      const SimResult run = run_trace(trace, k, policy, &costs);
      const double alg = total_cost(run.metrics.miss_vector(), costs);
      const OptResult opt_h = exact_opt(trace, h, costs);
      const double rhs = theorem13_bound(costs, opt_h.misses, k, h, beta);
      holds = holds && alg <= rhs + 1e-9;
      if (opt_h.cost > 0.0) ratio_stats.add(alg / opt_h.cost);
      if (opt_h.cost > 0.0) bound_stats.add(rhs / opt_h.cost);
    }
    table.add(h,
              beta * static_cast<double>(k) / static_cast<double>(k - h + 1),
              ratio_stats.mean(), ratio_stats.max(), bound_stats.mean(),
              holds ? "yes" : "VIOLATED");
  }

  print_table(std::cout, "E2 — bi-criteria trade-off (Theorem 1.3)", table);
  std::cout << "Reading: shrinking OPT's cache h weakens the adversary —\n"
               "both the measured ratio and the guarantee fall toward α as\n"
               "h goes to 1; the inequality holds on every row.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
