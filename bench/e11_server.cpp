/// \file e11_server.cpp
/// \brief Experiment E11 — networked cache-server loopback load test.
///
/// Replays a Zipf-skewed multi-tenant trace against a CacheServer through N
/// pipelined TCP connections (in-process by default; --connect drives an
/// externally launched ccc-serverd) and reports throughput plus response
/// latency quantiles (p50/p99/p999).
///
/// Determinism contract (DESIGN.md §12): the trace is partitioned by
/// connection with `shard_of_page(page, server_shards) % connections`, so
/// each shard's request subsequence arrives in trace order over exactly one
/// connection. The server batches per connection and access_batch preserves
/// per-shard order, hence the server-side books are **bit-identical** to a
/// direct single-threaded access_batch replay of the same trace — which
/// --verify (on by default) asserts per tenant: hits, misses, evictions,
/// and a miss-cost ratio of exactly 1.0. Drift fails the run. The check
/// compares post-minus-pre STATS deltas, so it also holds against a server
/// that has already served traffic.
///
/// Latency is measured per pipelined window: a window of W requests is
/// encoded, flushed, and each of its W responses is stamped against the
/// flush time — i.e. the quantiles describe what a client pipelining at
/// depth W actually observes, batching delay included.
///
/// --soak-seconds loops the trace until the deadline; connections agree on
/// the loop count through a barrier, so the determinism check survives
/// soaking. --rebalance-every N exercises ShardedCache::rebalance() under
/// live traffic: the trace is cut into N-request segments, every segment
/// boundary is a double barrier (all responses read → one worker sends
/// REBALANCE → traffic resumes), and the reference replay rebalances at
/// the identical boundaries — so --verify still demands bit-identical
/// books and a miss-cost ratio of exactly 1.0 across resizes and seqlock
/// table rebuilds. JSON rows land in the schema scripts/check_bench_regression.py
/// gates: (policy="server-cN", cost, tenants) keyed, with
/// requests_per_second and wall_seconds.

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "obs/cost_tracker.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "shard/sharded_cache.hpp"
#include "sim/metrics.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

using Clock = std::chrono::steady_clock;

Trace make_trace(std::uint32_t tenants, std::uint64_t pages_per_tenant,
                 double skew, std::size_t length, std::uint64_t seed) {
  std::vector<TenantWorkload> workloads;
  workloads.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t)
    workloads.push_back(
        {std::make_unique<ZipfPages>(pages_per_tenant, skew), 1.0});
  Rng rng(seed);
  return generate_trace(std::move(workloads), length, rng);
}

std::vector<CostFunctionPtr> make_costs(const std::string& family,
                                        std::uint32_t tenants) {
  std::vector<CostFunctionPtr> costs;
  costs.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    const double w = 1.0 + static_cast<double>(t % 4);
    if (family == "mono2") {
      costs.push_back(std::make_unique<MonomialCost>(2.0, w));
    } else if (family == "mono3") {
      costs.push_back(std::make_unique<MonomialCost>(3.0, w));
    } else if (family == "linear") {
      costs.push_back(std::make_unique<MonomialCost>(1.0, w));
    } else if (family == "sla") {
      costs.push_back(std::make_unique<PiecewiseLinearCost>(
          PiecewiseLinearCost::sla(8.0 * w, w)));
    } else {
      throw std::invalid_argument("unknown cost family '" + family +
                                  "'; valid: mono2 mono3 linear sla");
    }
  }
  return costs;
}

/// Per-worker tallies, merged after join.
struct WorkerResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t errors = 0;  ///< kBadRequest/kMalformed/unknown statuses
  std::string failure;       ///< non-empty if the worker threw
};

struct VerifyResult {
  bool ran = false;
  std::uint64_t drift = 0;    ///< Σ |server book − reference book|
  double cost_ratio = 0.0;    ///< server miss cost / reference miss cost
  double server_cost = 0.0;
  double reference_cost = 0.0;
  /// Tenants where CostTracker::collect over the replayed reference cache
  /// disagrees with its aggregated books or where the tracker's per-tenant
  /// ALG cost f_i(a_i) is not bit-identical to f_i applied to those books.
  std::uint64_t tracker_mismatches = 0;
  double tracker_cost = 0.0;  ///< Σ_i f_i(a_i) as the tracker reports it
};

/// Per-stage server latency attribution, pulled from the in-process
/// server's metrics registry after shutdown (external servers keep theirs
/// behind their own /metrics port — scrape that instead).
struct StageLatency {
  std::string stage;
  obs::HistogramSnapshot snapshot;
};

/// Books delta between two STATS snapshots (post − pre, per tenant).
server::StatsPayload stats_delta(const server::StatsPayload& pre,
                                 const server::StatsPayload& post) {
  server::StatsPayload delta = post;
  for (std::size_t t = 0; t < delta.hits.size(); ++t) {
    delta.hits[t] -= pre.hits[t];
    delta.misses[t] -= pre.misses[t];
    delta.evictions[t] -= pre.evictions[t];
  }
  delta.lockfree_hits -= pre.lockfree_hits;
  return delta;
}

void write_json(const std::string& path, const Cli& cli,
                std::uint32_t tenants, std::size_t shards,
                std::size_t connections, std::uint64_t loops,
                std::uint64_t rebalances, std::uint64_t requests_sent,
                double wall_seconds,
                const obs::HistogramSnapshot& latency,
                const WorkerResult& totals, std::uint64_t lockfree_hits,
                const VerifyResult& verify,
                const std::vector<StageLatency>& stages) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"benchmark\": \"e11_server\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"config\": {\n";
  os << "    \"requests\": " << cli.get_u64("requests") << ",\n";
  os << "    \"tenants\": " << tenants << ",\n";
  os << "    \"shards\": " << shards << ",\n";
  os << "    \"connections\": " << connections << ",\n";
  os << "    \"window\": " << cli.get_u64("window") << ",\n";
  os << "    \"pages_per_tenant\": " << cli.get_u64("pages-per-tenant")
     << ",\n";
  os << "    \"k_per_tenant\": " << cli.get_u64("k-per-tenant") << ",\n";
  os << "    \"skew\": " << cli.get_double("skew") << ",\n";
  os << "    \"seed\": " << cli.get_u64("seed") << ",\n";
  os << "    \"soak_seconds\": " << cli.get_double("soak-seconds") << ",\n";
  os << "    \"rebalance_every\": " << cli.get_u64("rebalance-every")
     << ",\n";
  os << "    \"hitpath\": \"" << json_escape(cli.get("hitpath")) << "\",\n";
  os << "    \"connect\": \"" << json_escape(cli.get("connect")) << "\",\n";
  os << "    \"costs\": \"" << json_escape(cli.get("costs")) << "\"\n";
  os << "  },\n";
  os << "  \"results\": [\n";
  os << "    {\"policy\": \"server-c" << connections << "\", \"cost\": \""
     << json_escape(cli.get("costs")) << "\", \"tenants\": " << tenants
     << ", \"shards\": " << shards << ", \"connections\": " << connections
     << ", \"loops\": " << loops << ", \"rebalances\": " << rebalances
     << ", \"requests\": " << requests_sent
     << ", \"wall_seconds\": " << wall_seconds
     << ", \"requests_per_second\": "
     << (wall_seconds > 0.0
             ? static_cast<double>(requests_sent) / wall_seconds
             : 0.0)
     << ", \"p50_us\": "
     << static_cast<double>(latency.quantile(0.5)) / 1e3
     << ", \"p99_us\": "
     << static_cast<double>(latency.quantile(0.99)) / 1e3
     << ", \"p999_us\": "
     << static_cast<double>(latency.quantile(0.999)) / 1e3
     << ", \"hits\": " << totals.hits << ", \"misses\": " << totals.misses
     << ", \"errors\": " << totals.errors
     << ", \"lockfree_hits\": " << lockfree_hits;
  if (verify.ran)
    os << ", \"drift\": " << verify.drift
       << ", \"miss_cost\": " << verify.server_cost
       << ", \"cost_ratio_vs_direct\": " << verify.cost_ratio
       << ", \"tracker_mismatches\": " << verify.tracker_mismatches
       << ", \"tracker_cost\": " << verify.tracker_cost;
  // Per-stage request-latency attribution (in-process runs only): one
  // object per ccc_server_stage_latency_ns stage, quantiles in µs so they
  // read next to p50_us/p99_us above. Informational in the regression
  // gate — stage mix shifts with batch shape, so these are reported, not
  // thresholded (scripts/check_bench_regression.py).
  if (!stages.empty()) {
    os << ", \"stage_latency_us\": {";
    for (std::size_t s = 0; s < stages.size(); ++s) {
      const StageLatency& stage = stages[s];
      os << (s == 0 ? "" : ", ") << "\"" << json_escape(stage.stage)
         << "\": {\"count\": " << stage.snapshot.count << ", \"p50_us\": "
         << static_cast<double>(stage.snapshot.quantile(0.5)) / 1e3
         << ", \"p99_us\": "
         << static_cast<double>(stage.snapshot.quantile(0.99)) / 1e3
         << ", \"p999_us\": "
         << static_cast<double>(stage.snapshot.quantile(0.999)) / 1e3 << "}";
    }
    os << "}";
  }
  os << "}\n";
  os << "  ]\n}\n";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << os.str();
  std::cout << "wrote " << path << "\n";
}

int run(int argc, const char* const* argv) {
  Cli cli(
      "E11 — loopback load test of the networked cache server: replays a "
      "multi-tenant Zipf trace through N pipelined connections, reports "
      "req/s and p50/p99/p999 response latency, and asserts the server's "
      "books are bit-identical to a direct access_batch replay "
      "(DESIGN.md §12); emits JSON for CI");
  cli.flag("connections", "4", "pipelined TCP connections (worker threads)")
      .flag("window", "256", "pipelining depth: requests in flight per "
            "connection")
      .flag("requests", "200000", "trace length (per loop)")
      .flag("tenants", "16", "tenant count")
      .flag("shards", "4", "server shard count (in-process mode)")
      .flag("pages-per-tenant", "64", "page universe per tenant")
      .flag("k-per-tenant", "8", "cache capacity = k-per-tenant × tenants")
      .flag("skew", "0.9", "Zipf skew of every tenant's stream")
      .flag("seed", "1234",
            "trace and policy seed (must match the server's --seed when "
            "--connect is used, or --verify will report drift)")
      .flag("hitpath", "seqlock",
            "hit path of the in-process server and of the verify reference: "
            "seqlock (default) or locked")
      .flag("costs", "mono2", "cost family: mono2,mono3,linear,sla")
      .flag("soak-seconds", "0",
            "0 = one pass over the trace; >0 = loop the trace until the "
            "deadline (connections agree on the loop count via a barrier, "
            "so --verify still holds)")
      .flag("connect", "",
            "host:port of an already-running ccc-serverd (empty = run the "
            "server in-process on an ephemeral port); shard count, tenant "
            "count and capacity are taken from its STATS response")
      .flag("verify", "1",
            "assert zero drift vs a direct single-threaded access_batch "
            "replay (post-minus-pre STATS deltas)")
      .flag("rebalance-every", "0",
            "0 = never; N = after every N trace requests, quiesce all "
            "connections at a barrier and have one worker send REBALANCE; "
            "the verify reference rebalances at the same boundaries, so "
            "the books must stay bit-identical (with --connect the server "
            "must be freshly started: the split reads total books, which "
            "pre-existing traffic would skew away from the reference)")
      .flag("json", "BENCH_server.json", "output JSON path (empty = none)");
  if (!cli.parse(argc, argv)) return 0;

  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const auto connections =
      static_cast<std::size_t>(cli.get_u64("connections"));
  const auto window = static_cast<std::size_t>(cli.get_u64("window"));
  const auto requests = static_cast<std::size_t>(cli.get_u64("requests"));
  const double soak_seconds = cli.get_double("soak-seconds");
  const bool verify_books = cli.get_bool("verify");
  const std::string hitpath = cli.get("hitpath");
  if (hitpath != "seqlock" && hitpath != "locked")
    throw std::invalid_argument("unknown hit path '" + hitpath +
                                "'; valid: seqlock locked");
  if (connections == 0 || window == 0)
    throw std::invalid_argument("--connections and --window must be >= 1");

  const auto costs = make_costs(cli.get("costs"), tenants);

  // ---- the server: in-process on an ephemeral port, or external ----
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;
  std::unique_ptr<server::CacheServer> inproc;
  std::thread server_thread;
  int server_rc = -1;
  if (cli.get("connect").empty()) {
    ShardedCacheOptions cache_options;
    cache_options.capacity =
        static_cast<std::size_t>(cli.get_u64("k-per-tenant")) * tenants;
    cache_options.num_shards =
        static_cast<std::size_t>(cli.get_u64("shards"));
    cache_options.num_tenants = tenants;
    cache_options.seed = cli.get_u64("seed");
    cache_options.hit_path =
        hitpath == "seqlock" ? HitPath::kSeqlock : HitPath::kLocked;
    server::ServerOptions server_options;
    server_options.metrics = false;  // e11 measures the cache port only
    inproc = std::make_unique<server::CacheServer>(server_options,
                                                   cache_options, nullptr,
                                                   &costs);
    inproc->start();
    port = inproc->port();
    server_thread = std::thread([&] { server_rc = inproc->run(); });
  } else {
    const std::string target = cli.get("connect");
    const std::size_t colon = target.rfind(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("--connect expects host:port");
    address = target.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::stoul(target.substr(colon + 1)));
  }

  // ---- pre-replay STATS: server config + baseline books ----
  server::StatsPayload pre;
  {
    server::BlockingClient probe(address, port);
    pre = probe.stats();
  }
  if (pre.num_tenants != tenants)
    throw std::runtime_error(
        "server has " + std::to_string(pre.num_tenants) +
        " tenants, e11 was asked for " + std::to_string(tenants) +
        " — align --tenants with the server");
  const auto server_shards = static_cast<std::size_t>(pre.num_shards);
  const auto capacity = static_cast<std::size_t>(pre.capacity);

  // ---- trace + by-shard connection partition (the determinism move) ----
  // With --rebalance-every N the trace is additionally cut into segments
  // of N requests *in trace order*: every connection finishes its share of
  // segment s (and has read all its responses, so the server books sit
  // exactly at the segment boundary) before anyone starts segment s+1.
  const Trace trace =
      make_trace(tenants, cli.get_u64("pages-per-tenant"),
                 cli.get_double("skew"), requests, cli.get_u64("seed"));
  const auto rebalance_every =
      static_cast<std::size_t>(cli.get_u64("rebalance-every"));
  const std::size_t num_segments =
      rebalance_every == 0
          ? 1
          : (trace.size() + rebalance_every - 1) / rebalance_every;
  std::vector<std::vector<std::vector<Request>>> partition(
      num_segments, std::vector<std::vector<Request>>(connections));
  {
    const std::vector<Request>& all = trace.requests();
    for (std::size_t i = 0; i < all.size(); ++i)
      partition[rebalance_every == 0 ? 0 : i / rebalance_every]
               [shard_of_page(all[i].page, server_shards) % connections]
          .push_back(all[i]);
  }

  // ---- connect all workers up front (excluded from the timed section) ----
  std::vector<std::unique_ptr<server::BlockingClient>> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c)
    clients.push_back(
        std::make_unique<server::BlockingClient>(address, port));

  obs::Histogram latency_hist;
  std::vector<WorkerResult> results(connections);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> loops_done{0};
  std::atomic<std::uint64_t> rebalances_sent{0};
  std::barrier loop_barrier(static_cast<std::ptrdiff_t>(connections));
  std::barrier rebalance_barrier(static_cast<std::ptrdiff_t>(connections));
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(soak_seconds));

  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      server::BlockingClient& client = *clients[c];
      try {
        for (std::uint64_t loop = 0;; ++loop) {
          for (std::size_t seg = 0; seg < partition.size(); ++seg) {
            const std::vector<Request>& mine = partition[seg][c];
            std::size_t i = 0;
            while (i < mine.size()) {
              const std::size_t n = std::min(window, mine.size() - i);
              for (std::size_t j = 0; j < n; ++j)
                client.enqueue_get(mine[i + j].tenant, mine[i + j].page);
              const auto flushed = Clock::now();
              client.flush();
              client.read_responses(n, [&](const server::ResponseMsg& msg) {
                latency_hist.record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - flushed)
                        .count()));
                switch (static_cast<server::Status>(msg.status)) {
                  case server::Status::kHit: ++result.hits; break;
                  case server::Status::kMiss: ++result.misses; break;
                  default: ++result.errors; break;
                }
              });
              i += n;
            }
            if (rebalance_every != 0) {
              // Double barrier around the split: the first waits until
              // every connection has *read all its responses* for this
              // segment — the server has answered, hence applied, every
              // segment request, so its books sit exactly at the boundary.
              // Worker 0 then triggers the rebalance while everyone else
              // is quiescent (no in-flight traffic for the resize to
              // interleave with), and the second barrier releases the
              // next segment. REBALANCE fires after every segment, the
              // last included — the reference replay mirrors that.
              rebalance_barrier.arrive_and_wait();
              if (c == 0) {
                client.rebalance();
                rebalances_sent.fetch_add(1);
              }
              rebalance_barrier.arrive_and_wait();
            }
          }
          // Everyone finishes loop L, then worker 0 decides whether L+1
          // happens — so every connection replays the same loop count and
          // the books stay comparable to `loops × trace` (DESIGN.md §12).
          if (c == 0) {
            loops_done.store(loop + 1);
            stop.store(soak_seconds <= 0.0 || Clock::now() >= deadline);
          }
          loop_barrier.arrive_and_wait();
          if (stop.load()) break;
        }
      } catch (const std::exception& e) {
        result.failure = e.what();
        stop.store(true);
        // Do not touch the barrier here: a throwing worker can no longer
        // participate, and the others will fail on their sockets if the
        // server died. (Workers only throw on transport errors.)
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerResult totals;
  for (const WorkerResult& result : results) {
    if (!result.failure.empty())
      throw std::runtime_error("worker failed: " + result.failure);
    totals.hits += result.hits;
    totals.misses += result.misses;
    totals.errors += result.errors;
  }
  if (totals.errors != 0)
    throw std::runtime_error(std::to_string(totals.errors) +
                             " error responses — server rejected requests");
  const std::uint64_t loops = loops_done.load();
  const std::uint64_t requests_sent =
      loops * static_cast<std::uint64_t>(trace.size());

  // ---- post-replay STATS + zero-drift verification ----
  server::StatsPayload post;
  {
    server::BlockingClient probe(address, port);
    post = probe.stats();
  }
  const server::StatsPayload delta = stats_delta(pre, post);

  VerifyResult verify;
  if (verify_books) {
    ShardedCacheOptions ref_options;
    ref_options.capacity = capacity;
    ref_options.num_shards = server_shards;
    ref_options.num_tenants = tenants;
    ref_options.seed = cli.get_u64("seed");
    ref_options.hit_path =
        hitpath == "seqlock" ? HitPath::kSeqlock : HitPath::kLocked;
    ShardedCache reference(ref_options, nullptr, &costs);
    std::vector<StepEvent> events;
    constexpr std::size_t kRefBatch = 1024;
    const std::vector<Request>& all = trace.requests();
    for (std::uint64_t loop = 0; loop < loops; ++loop) {
      for (std::size_t seg = 0; seg < num_segments; ++seg) {
        const std::size_t begin =
            rebalance_every == 0 ? 0 : seg * rebalance_every;
        const std::size_t end =
            rebalance_every == 0
                ? all.size()
                : std::min(all.size(), begin + rebalance_every);
        for (std::size_t i = begin; i < end; i += kRefBatch) {
          events.clear();
          reference.access_batch(
              std::span<const Request>(all.data() + i,
                                       std::min(kRefBatch, end - i)),
              events);
        }
        // Mirror the live run: a rebalance after every segment, the last
        // included. The default hook's split depends only on per-shard
        // miss books, which are bit-identical to the server's at this
        // boundary — so both sides compute the same split and the
        // resize-driven evictions match exactly.
        if (rebalance_every != 0) reference.rebalance();
      }
    }
    const Metrics ref_metrics = reference.aggregated_metrics();
    verify.ran = true;
    for (TenantId t = 0; t < tenants; ++t) {
      const auto diff = [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a - b : b - a;
      };
      verify.drift += diff(delta.hits[t], ref_metrics.hits(t));
      verify.drift += diff(delta.misses[t], ref_metrics.misses(t));
      verify.drift += diff(delta.evictions[t], ref_metrics.evictions(t));
    }
    verify.server_cost = total_cost(delta.misses, costs);
    verify.reference_cost = total_cost(ref_metrics.miss_vector(), costs);
    verify.cost_ratio = verify.reference_cost > 0.0
                            ? verify.server_cost / verify.reference_cost
                            : (verify.server_cost == 0.0 ? 1.0 : 0.0);

    // The telemetry path must agree with the books it claims to describe:
    // CostTracker::collect aggregates the same replayed cache through the
    // per-shard snapshot path /metrics uses, so its per-tenant miss counts
    // must equal the aggregated books and its per-tenant ALG cost must be
    // bit-identical to f_i applied to those books — exact equality, not a
    // tolerance, since both sides add the same integers and evaluate the
    // same f_i once.
    const obs::CostTracker tracker = obs::CostTracker::collect(reference);
    const obs::CostSnapshot tracker_snap = tracker.snapshot(costs, capacity);
    for (TenantId t = 0; t < tenants; ++t) {
      const bool misses_match =
          tracker.misses()[t] == ref_metrics.misses(t);
      const bool cost_match =
          tracker_snap.tenant_cost[t] ==
          costs[t]->value(static_cast<double>(ref_metrics.misses(t)));
      if (!misses_match || !cost_match) ++verify.tracker_mismatches;
      verify.tracker_cost += tracker_snap.tenant_cost[t];
    }
  }

  // ---- shut down an in-process server gracefully ----
  std::vector<StageLatency> stages;
  if (inproc != nullptr) {
    for (auto& client : clients) client->close();
    inproc->request_stop();
    server_thread.join();
    if (server_rc != 0)
      throw std::runtime_error("in-process server exited with " +
                               std::to_string(server_rc));
    // With the loop joined the registry snapshot is exact: pull the
    // per-stage latency attribution for the JSON row.
    obs::MetricsRegistry registry;
    inproc->fill_metrics(registry);
    if (const obs::MetricFamily* family =
            registry.find("ccc_server_stage_latency_ns")) {
      for (const obs::HistogramSample& sample : family->histograms)
        for (const auto& [key, label] : sample.labels)
          if (key == "stage")
            stages.push_back(StageLatency{label, sample.snapshot});
    }
  }

  // ---- report ----
  const obs::HistogramSnapshot latency = latency_hist.snapshot();
  Table table({"policy", "cost", "conns", "window", "req/s", "p50_us",
               "p99_us", "p999_us", "hit_rate"});
  const double rps = wall_seconds > 0.0
                         ? static_cast<double>(requests_sent) / wall_seconds
                         : 0.0;
  const double hit_rate =
      requests_sent > 0
          ? static_cast<double>(totals.hits) /
                static_cast<double>(requests_sent)
          : 0.0;
  table.add("server-c" + std::to_string(connections), cli.get("costs"),
            connections, window, rps,
            static_cast<double>(latency.quantile(0.5)) / 1e3,
            static_cast<double>(latency.quantile(0.99)) / 1e3,
            static_cast<double>(latency.quantile(0.999)) / 1e3, hit_rate);
  std::cout << table.to_ascii() << "\n";
  std::cout << "requests=" << requests_sent << " loops=" << loops
            << " rebalances=" << rebalances_sent.load()
            << " wall=" << format_double(wall_seconds, 3) << "s hits="
            << totals.hits << " misses=" << totals.misses
            << " lockfree_hits=" << delta.lockfree_hits << "\n";
  if (verify.ran)
    std::cout << "verify: drift=" << verify.drift
              << " cost_ratio=" << format_double(verify.cost_ratio, 6)
              << " (server " << format_compact(verify.server_cost)
              << " vs direct " << format_compact(verify.reference_cost)
              << ") tracker_mismatches=" << verify.tracker_mismatches
              << " tracker_cost=" << format_compact(verify.tracker_cost)
              << "\n";
  if (!stages.empty()) {
    Table stage_table({"stage", "count", "p50_us", "p99_us", "p999_us"});
    for (const StageLatency& stage : stages)
      stage_table.add(
          stage.stage, stage.snapshot.count,
          static_cast<double>(stage.snapshot.quantile(0.5)) / 1e3,
          static_cast<double>(stage.snapshot.quantile(0.99)) / 1e3,
          static_cast<double>(stage.snapshot.quantile(0.999)) / 1e3);
    std::cout << stage_table.to_ascii() << "\n";
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty())
    write_json(json_path, cli, tenants, server_shards, connections, loops,
               rebalances_sent.load(), requests_sent, wall_seconds, latency,
               totals, delta.lockfree_hits, verify, stages);

  if (verify.ran && verify.drift != 0) {
    std::cerr << "e11_server: DRIFT — server books diverge from the direct "
                 "replay by "
              << verify.drift << "\n";
    return 1;
  }
  if (verify.ran && verify.cost_ratio != 1.0) {
    // Zero drift already implies this (both sides apply the same f_i to
    // the same integer books), so a failure here means the cost plumbing
    // itself diverged — worth its own message.
    std::cerr << "e11_server: COST DRIFT — server/reference miss-cost "
                 "ratio is "
              << format_double(verify.cost_ratio, 6) << ", want exactly 1\n";
    return 1;
  }
  if (verify.ran && verify.tracker_mismatches != 0) {
    std::cerr << "e11_server: TRACKER DRIFT — CostTracker disagrees with "
                 "the replayed books for "
              << verify.tracker_mismatches << " tenant(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "e11_server: " << e.what() << "\n";
    return 1;
  }
}
