/// \file e4_sla_workloads.cpp
/// \brief Experiment E4 — the SQLVM-style provider-cost comparison
///        (motivating scenario of §1.1 and the companion paper [14]).
///
/// Four DaaS tenants share one buffer pool. Each has a piecewise-linear
/// convex SLA (free up to a tolerated miss budget per accounting window,
/// then a per-miss refund) and a distinct access pattern: a Zipf-skewed
/// OLTP tenant, a scan-heavy reporting tenant, a phase-shifting tenant,
/// and a uniform background tenant. The bench replays the same trace under
/// ALG-DISCRETE and every baseline and reports the refund the provider
/// would owe — the quantity the paper's cost model is designed to
/// minimize. Shape: cost-aware policies (convex, landlord) owe less than
/// tenant-oblivious ones (lru, fifo); static partitioning wastes capacity.

#include <iostream>

#include "bufferpool/buffer_pool.hpp"
#include "core/convex_caching.hpp"
#include "cost/piecewise_linear.hpp"
#include "exp/policy_factory.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

std::vector<TenantContract> make_contracts() {
  std::vector<TenantContract> contracts;
  // Gold OLTP: tight SLA, expensive refunds.
  contracts.push_back({"gold-oltp",
                       std::make_unique<PiecewiseLinearCost>(
                           PiecewiseLinearCost::sla(50.0, 10.0))});
  // Reporting: scans are expected to miss; generous tolerance.
  contracts.push_back({"report-scan",
                       std::make_unique<PiecewiseLinearCost>(
                           PiecewiseLinearCost::sla(400.0, 2.0))});
  // Bursty dev/test tenant with phase shifts.
  contracts.push_back({"phased-dev",
                       std::make_unique<PiecewiseLinearCost>(
                           PiecewiseLinearCost::sla(150.0, 4.0))});
  // Background batch: cheap.
  contracts.push_back({"batch-bg",
                       std::make_unique<PiecewiseLinearCost>(
                           PiecewiseLinearCost::sla(300.0, 1.0))});
  return contracts;
}

Trace make_workload(std::size_t length, std::uint64_t seed) {
  std::vector<TenantWorkload> tenants;
  tenants.push_back({std::make_unique<ZipfPages>(400, 1.1), 4.0});
  tenants.push_back({std::make_unique<ScanPages>(300), 2.0});
  tenants.push_back(
      {std::make_unique<WorkingSetPages>(300, 40, 2000, 0.9), 2.0});
  tenants.push_back({std::make_unique<UniformPages>(200), 1.0});
  Rng rng(seed);
  return generate_trace(std::move(tenants), length, rng);
}

int run(int argc, const char* const* argv) {
  Cli cli("E4: multi-tenant SLA refund comparison on a shared buffer pool "
          "(the paper's motivating DaaS scenario)");
  cli.flag("k", "192", "buffer pool capacity in pages")
      .flag("length", "60000", "total requests")
      .flag("window", "2000", "SLA accounting window in requests")
      .flag("seed", "7", "workload seed")
      .flag("policies", "", "comma-separated policies (default: all online)")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t k = cli.get_u64("k");
  const std::size_t length = cli.get_u64("length");
  const std::size_t window = cli.get_u64("window");
  const Trace trace = make_workload(length, cli.get_u64("seed"));

  std::vector<std::string> policies = online_policy_names();
  if (!cli.get("policies").empty()) {
    policies.clear();
    for (const auto& p : split(cli.get("policies"), ','))
      policies.push_back(std::string(trim(p)));
  }
  policies.push_back("belady");  // offline reference row

  Table table({"policy", "gold-oltp", "report-scan", "phased-dev",
               "batch-bg", "total refund", "total misses"});

  const auto add_row = [&](std::unique_ptr<ReplacementPolicy> policy) {
    BufferPool pool(k, make_contracts(), std::move(policy), window);
    pool.replay(trace);
    const BufferPoolReport report = pool.report();
    std::uint64_t misses = 0;
    for (const std::uint64_t m : report.misses) misses += m;
    table.add(report.policy_name, report.refunds[0], report.refunds[1],
              report.refunds[2], report.refunds[3], report.total_refund,
              misses);
  };

  for (const std::string& name : policies) add_row(make_policy(name));
  // The [14]-style deployment variant: marginals re-base at every
  // accounting window, matching how the SLA is actually billed.
  ConvexCachingOptions windowed;
  windowed.window_length = window;
  add_row(std::make_unique<ConvexCachingPolicy>(windowed));

  print_table(std::cout,
              "E4 — provider refund under per-window SLAs (k=" +
                  std::to_string(k) + ", window=" + std::to_string(window) +
                  ")",
              table);
  std::cout << "Reading: ALG-DISCRETE (ConvexCaching) concentrates its miss\n"
               "budget on tenants whose marginal refund is lowest, cutting\n"
               "the provider's bill far below LRU/FIFO/Landlord/static\n"
               "partitioning. ARC and LFU remain competitive here: flat-\n"
               "until-knee SLAs give zero derivative below the tolerance,\n"
               "so cost-awareness only engages once a tenant crosses its\n"
               "knee. Belady is the offline miss-count reference, not the\n"
               "refund optimum.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
