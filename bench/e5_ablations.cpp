/// \file e5_ablations.cpp
/// \brief Experiment E5 — design ablations and the §2.5 generality claim.
///
/// Three questions the paper's design raises:
///   1. Do the two non-obvious steps of Fig. 3 — the survivor debit and the
///      victim-tenant bump — actually matter? (Ablate each.)
///   2. Does the discrete-marginal variant (§2.5) behave like the analytic
///      one on convex costs?
///   3. Does the algorithm stay sane on non-convex / discontinuous costs,
///      where the theorems are silent but §2.5 says it still applies?
/// All variants run on the same traces; the table reports total cost
/// against the exact optimum where tractable and against the heuristic OPT
/// bracket otherwise.

#include <iostream>

#include "core/convex_caching.hpp"
#include "cost/combinators.hpp"
#include "cost/monomial.hpp"
#include "offline/opt_bounds.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

struct Variant {
  std::string label;
  ConvexCachingOptions options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full (Fig.3)", {}});
  ConvexCachingOptions no_debit;
  no_debit.debit_survivors = false;
  out.push_back({"no survivor debit", no_debit});
  ConvexCachingOptions no_bump;
  no_bump.bump_victim_tenant = false;
  out.push_back({"no tenant bump", no_bump});
  ConvexCachingOptions discrete;
  discrete.derivative = DerivativeMode::kDiscreteMarginal;
  out.push_back({"discrete marginal (2.5)", discrete});
  return out;
}

int run(int argc, const char* const* argv) {
  Cli cli("E5: Fig. 3 step ablations and §2.5 arbitrary-cost generality");
  cli.flag("beta", "2", "monomial exponent for the convex part")
      .flag("tenants", "3", "number of tenants")
      .flag("pages", "12", "pages per tenant")
      .flag("k", "12", "cache size")
      .flag("length", "20000", "requests per trace")
      .flag("trials", "5", "traces per variant")
      .flag("seed", "11", "base RNG seed")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const double beta = cli.get_double("beta");
  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const std::uint64_t pages = cli.get_u64("pages");
  const std::size_t k = cli.get_u64("k");
  const std::size_t length = cli.get_u64("length");
  const std::size_t trials = cli.get_u64("trials");

  // Part 1+2: convex monomial costs with asymmetric scales.
  Table table({"variant", "mean cost", "vs full", "mean cost/OPT_ub"});
  // Phase-shifting working sets: without the survivor debit, budgets never
  // decay, so pages of an abandoned hot set linger — the debit step is the
  // algorithm's recency mechanism and this workload exposes it.
  std::vector<Trace> traces;
  Rng rng(cli.get_u64("seed"));
  for (std::size_t i = 0; i < trials; ++i) {
    Rng trial_rng = rng.split();
    std::vector<TenantWorkload> workloads;
    for (std::uint32_t tenant = 0; tenant < tenants; ++tenant)
      workloads.push_back(
          {std::make_unique<WorkingSetPages>(pages * 4, pages / 2,
                                             1500 + 400 * tenant, 0.95),
           1.0});
    traces.push_back(generate_trace(std::move(workloads), length, trial_rng));
  }
  const auto make_costs = [&] {
    std::vector<CostFunctionPtr> costs;
    for (std::uint32_t i = 0; i < tenants; ++i)
      costs.push_back(
          std::make_unique<MonomialCost>(beta, 1.0 + 2.0 * i));
    return costs;
  };

  double full_mean = 0.0;
  for (const Variant& variant : variants()) {
    RunningStats cost_stats, ratio_stats;
    for (const Trace& trace : traces) {
      const auto costs = make_costs();
      ConvexCachingPolicy policy(variant.options);
      const SimResult run = run_trace(trace, k, policy, &costs);
      const double cost = total_cost(run.metrics.miss_vector(), costs);
      cost_stats.add(cost);
      const OptEstimate opt = estimate_opt(trace, k, costs, 0);
      if (opt.upper_cost > 0.0) ratio_stats.add(cost / opt.upper_cost);
    }
    if (variant.label == "full (Fig.3)") full_mean = cost_stats.mean();
    table.add(variant.label, cost_stats.mean(),
              full_mean > 0.0 ? cost_stats.mean() / full_mean : 1.0,
              ratio_stats.mean());
  }
  print_table(std::cout,
              "E5a — Fig. 3 ablations on convex costs (f=scale*x^" +
                  format_compact(beta) + ")",
              table);

  // Part 3: non-convex costs (§2.5) — the discrete variant must keep
  // functioning and stay in the same cost range as cost-blind baselines.
  Table nonconvex({"cost shape", "convex-discrete cost", "LRU-equivalent "
                   "cost (same trace, cost-blind)"});
  for (const std::string shape : {"step", "sqrt"}) {
    RunningStats ours, blind;
    for (const Trace& trace : traces) {
      std::vector<CostFunctionPtr> costs;
      for (std::uint32_t i = 0; i < tenants; ++i) {
        if (shape == "step")
          costs.push_back(std::make_unique<StepCost>(25.0, 10.0 + 5.0 * i));
        else
          costs.push_back(std::make_unique<SqrtCost>(1.0 + i));
      }
      ConvexCachingOptions discrete;
      discrete.derivative = DerivativeMode::kDiscreteMarginal;
      ConvexCachingPolicy policy(discrete);
      const SimResult a = run_trace(trace, k, policy, &costs);
      ours.add(total_cost(a.metrics.miss_vector(), costs));
      // Cost-blind reference: same algorithm with unit-linear costs.
      std::vector<CostFunctionPtr> unit;
      for (std::uint32_t i = 0; i < tenants; ++i)
        unit.push_back(std::make_unique<MonomialCost>(1.0));
      ConvexCachingPolicy blind_policy;
      const SimResult b = run_trace(trace, k, blind_policy, &unit);
      blind.add(total_cost(b.metrics.miss_vector(), costs));
    }
    nonconvex.add(shape, ours.mean(), blind.mean());
  }
  print_table(std::cout, "E5b — §2.5 generality: non-convex cost shapes",
              nonconvex);
  std::cout << "Reading: the survivor debit is the algorithm's recency\n"
               "mechanism — removing it is catastrophic on shifting working\n"
               "sets; the tenant bump is second-order on these workloads.\n"
               "The discrete-marginal variant tracks the analytic one on\n"
               "convex costs. On non-convex shapes (§2.5, no guarantee) it\n"
               "helps when marginals carry signal (sqrt) and can lose when\n"
               "they are almost everywhere zero (staircase plateaus).\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
