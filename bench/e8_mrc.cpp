/// \file e8_mrc.cpp
/// \brief Experiment E8 — cost-vs-capacity curves (capacity planning).
///
/// The paper's objective Σ_i f_i(misses_i) is, for a fixed LRU-managed
/// pool, a function of the pool size k alone. One Mattson pass yields the
/// per-tenant LRU miss counts at *every* k simultaneously; feeding them
/// through the tenants' convex cost functions draws the provider's
/// cost-vs-capacity curve — where SLA knees sit, and how much memory the
/// cost-aware algorithm effectively "saves". The table prints the curve
/// (figure-as-rows) plus, at selected k, the cost ALG-DISCRETE actually
/// achieves versus the LRU curve's prediction.

#include <iostream>

#include "analysis/mrc.hpp"
#include "core/convex_caching.hpp"
#include "cost/piecewise_linear.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

int run(int argc, const char* const* argv) {
  Cli cli("E8: LRU miss-rate curve and cost-vs-capacity, with ALG-DISCRETE "
          "spot checks");
  cli.flag("length", "60000", "requests in the workload")
      .flag("seed", "13", "workload seed")
      .flag("ks", "16,32,64,96,128,192,256,384,512",
            "cache sizes for the curve")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  // Three tenants: skewed OLTP, looping scan, Markov-correlated runs.
  std::vector<TenantWorkload> workloads;
  workloads.push_back({std::make_unique<ZipfPages>(300, 1.0), 2.0});
  workloads.push_back({std::make_unique<ScanPages>(200), 1.0});
  workloads.push_back({std::make_unique<MarkovPages>(250, 0.8, 0.8, 5), 1.5});
  Rng rng(cli.get_u64("seed"));
  const Trace trace =
      generate_trace(std::move(workloads), cli.get_u64("length"), rng);

  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<PiecewiseLinearCost>(
      PiecewiseLinearCost::sla(500.0, 8.0)));
  costs.push_back(std::make_unique<PiecewiseLinearCost>(
      PiecewiseLinearCost::sla(5000.0, 1.0)));
  costs.push_back(std::make_unique<PiecewiseLinearCost>(
      PiecewiseLinearCost::sla(2000.0, 3.0)));

  const MissRateCurve curve = compute_mrc(trace);

  Table table({"k", "LRU miss ratio", "t0 misses", "t1 misses", "t2 misses",
               "LRU cost (curve)", "ConvexCaching cost (simulated)"});
  for (const std::uint64_t k : cli.get_u64_list("ks")) {
    ConvexCachingPolicy policy;
    const SimResult run = run_trace(trace, k, policy, &costs);
    table.add(k, curve.miss_ratio_at(k), curve.tenant_misses_at(k, 0),
              curve.tenant_misses_at(k, 1), curve.tenant_misses_at(k, 2),
              curve.cost_at(k, costs),
              total_cost(run.metrics.miss_vector(), costs));
  }

  print_table(std::cout,
              "E8 — cost vs capacity: exact LRU curve (one Mattson pass) "
              "vs ALG-DISCRETE",
              table);
  std::cout << "Reading: the LRU column is exact for every k from a single\n"
               "O(T log T) pass (stack property). ALG-DISCRETE reaches a\n"
               "given cost level at a smaller k than LRU — the horizontal\n"
               "gap between the two columns is memory the cost-aware\n"
               "policy saves the provider.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
