/// \file e7_multipool.cpp
/// \brief Experiment E7 — the §5 future-work extension: multiple memory
///        pools with tenant migration under switching costs.
///
/// Six tenants, two pools. Tenant load shifts over time (phase-shifting
/// working sets), so any static tenant→pool assignment is eventually
/// wrong. The bench compares (a) one big shared pool of the combined size,
/// (b) static balanced assignment over two pools, and (c) the greedy
/// rebalancer at several switching costs. Shape: the rebalancer recovers
/// most of the gap to the big shared pool while bounded switching spend,
/// and its benefit shrinks as the switching cost rises.

#include <iostream>

#include "cost/monomial.hpp"
#include "multipool/multi_pool.hpp"
#include "policies/lru.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

constexpr std::uint32_t kTenants = 6;

Trace make_workload(std::size_t length, std::uint64_t seed) {
  std::vector<TenantWorkload> tenants;
  for (std::uint32_t i = 0; i < kTenants; ++i)
    tenants.push_back({std::make_unique<WorkingSetPages>(
                           120, 30, 3000 + 900 * i, 0.9),
                       1.0 + 0.4 * i});
  Rng rng(seed);
  return generate_trace(std::move(tenants), length, rng);
}

std::vector<CostFunctionPtr> make_costs() {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < kTenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(2.0, 1.0 + 0.5 * i));
  return costs;
}

PolicyFactory lru_factory() {
  return [] { return std::make_unique<LruPolicy>(); };
}

int run(int argc, const char* const* argv) {
  Cli cli("E7: multiple memory pools with migration (paper §5 future work)");
  cli.flag("pool", "64", "capacity of each of the two pools")
      .flag("length", "40000", "total requests")
      .flag("period", "1000", "rebalance cadence in requests")
      .flag("switch-costs", "0,1e5,1e7,1e9", "switching costs to sweep")
      .flag("seed", "21", "workload seed")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const std::size_t pool = cli.get_u64("pool");
  const std::size_t length = cli.get_u64("length");
  const Trace trace = make_workload(length, cli.get_u64("seed"));
  const auto costs = make_costs();

  Table table({"configuration", "miss cost", "migrations",
               "switching paid", "total cost"});

  {  // One shared pool with the combined capacity (upper reference).
    MultiPoolOptions options;
    options.pool_capacities = {2 * pool};
    MultiPoolManager mgr(options, lru_factory(),
                         std::vector<std::size_t>(kTenants, 0), costs);
    mgr.replay(trace);
    const MultiPoolReport r = mgr.report();
    table.add("one shared pool (2x size)", r.miss_cost, r.migrations,
              r.switching_cost_paid, r.total_cost);
  }
  {  // Sensible static split, no migration (the planner got it right).
    MultiPoolOptions options;
    options.pool_capacities = {pool, pool};
    std::vector<std::size_t> assignment(kTenants);
    for (std::uint32_t i = 0; i < kTenants; ++i) assignment[i] = i % 2;
    MultiPoolManager mgr(options, lru_factory(), assignment, costs);
    mgr.replay(trace);
    const MultiPoolReport r = mgr.report();
    table.add("two pools, good static split", r.miss_cost, r.migrations,
              r.switching_cost_paid, r.total_cost);
  }
  {  // Pathological static assignment: everyone crowds pool 0.
    MultiPoolOptions options;
    options.pool_capacities = {pool, pool};
    MultiPoolManager mgr(options, lru_factory(),
                         std::vector<std::size_t>(kTenants, 0), costs);
    mgr.replay(trace);
    const MultiPoolReport r = mgr.report();
    table.add("two pools, bad static (all on 0)", r.miss_cost, r.migrations,
              r.switching_cost_paid, r.total_cost);
  }
  for (const double sc : cli.get_double_list("switch-costs")) {
    // The rebalancer starts from the same bad assignment and must earn its
    // keep against the switching cost.
    MultiPoolOptions options;
    options.pool_capacities = {pool, pool};
    options.switching_cost = sc;
    options.rebalance_period = cli.get_u64("period");
    MultiPoolManager mgr(options, lru_factory(),
                         std::vector<std::size_t>(kTenants, 0), costs);
    mgr.replay(trace);
    const MultiPoolReport r = mgr.report();
    table.add("bad start + rebalance (switch=" + format_compact(sc) + ")",
              r.miss_cost, r.migrations, r.switching_cost_paid,
              r.total_cost);
  }

  print_table(std::cout, "E7 — multipool assignment and migration (§5)",
              table);
  std::cout << "Reading: starting from a pathological all-on-one-pool\n"
               "assignment, the rebalancer recovers most of the gap to the\n"
               "well-planned static split with a handful of migrations;\n"
               "raising the switching cost suppresses migrations until the\n"
               "behaviour decays back to the bad static assignment.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
