/// \file e10_sharded.cpp
/// \brief Experiment E10 — sharded-frontend scaling study.
///
/// Sweeps shard counts × worker threads × hit paths × cost families over
/// one fixed Zipf-skewed multi-tenant trace and reports, per cell:
///
///   - throughput (wall-clock of the parallel replay section, Mreq/s) and
///     the speedup over the 1-shard × 1-thread cell of the same family;
///   - the *partitioning cost*: Σ_i f_i(misses_i) of the sharded run
///     divided by the same objective for the unsharded ALG-DISCRETE replay
///     (E1/E6's single SimulatorSession) on the identical trace. Sharding
///     buys parallelism by pinning capacity to page subsets; this ratio is
///     what that costs in the paper's objective.
///
/// Results are emitted as JSON (default BENCH_sharded.json) next to the
/// ASCII table, in the same shape CI archives for e6.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/convex_caching.hpp"
#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "obs/observer.hpp"
#include "obs/registry.hpp"
#include "obs/trace_event.hpp"
#include "shard/parallel_replay.hpp"
#include "shard/sharded_cache.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

Trace make_trace(std::uint32_t tenants, std::uint64_t pages_per_tenant,
                 double skew, std::size_t length, std::uint64_t seed) {
  std::vector<TenantWorkload> workloads;
  workloads.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t)
    workloads.push_back(
        {std::make_unique<ZipfPages>(pages_per_tenant, skew), 1.0});
  Rng rng(seed);
  return generate_trace(std::move(workloads), length, rng);
}

std::vector<CostFunctionPtr> make_costs(const std::string& family,
                                        std::uint32_t tenants) {
  std::vector<CostFunctionPtr> costs;
  costs.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    const double w = 1.0 + static_cast<double>(t % 4);
    if (family == "mono2") {
      costs.push_back(std::make_unique<MonomialCost>(2.0, w));
    } else if (family == "mono3") {
      costs.push_back(std::make_unique<MonomialCost>(3.0, w));
    } else if (family == "linear") {
      costs.push_back(std::make_unique<MonomialCost>(1.0, w));
    } else if (family == "sla") {
      costs.push_back(std::make_unique<PiecewiseLinearCost>(
          PiecewiseLinearCost::sla(8.0 * w, w)));
    } else {
      throw std::invalid_argument("unknown cost family '" + family +
                                  "'; valid: mono2 mono3 linear sla");
    }
  }
  return costs;
}

struct BenchRow {
  std::string cost_family;
  std::string hitpath;  ///< "locked" or "seqlock"
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::size_t capacity = 0;
  PerfCounters perf;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double miss_cost = 0.0;
  double speedup = 0.0;     ///< vs the 1-shard/1-thread cell, same family
  double cost_ratio = 0.0;  ///< miss_cost / unsharded miss_cost
  double shard_seconds = 0.0;  ///< Σ per-shard in-lock time
};

/// `foo.json` → `foo<suffix>` (see e6_throughput's obs outputs).
std::string obs_path(const std::string& json_path, const char* suffix) {
  const std::string base =
      json_path.size() > 5 && json_path.ends_with(".json")
          ? json_path.substr(0, json_path.size() - 5)
          : json_path;
  return base + suffix;
}

void write_obs_outputs(const obs::MetricsRegistry& registry,
                       const std::string& json_path) {
  const std::string obs_json = obs_path(json_path, ".obs.json");
  std::ofstream json_out(obs_json);
  if (!json_out) throw std::runtime_error("cannot write " + obs_json);
  registry.write_json(json_out);
  std::cout << "wrote " << obs_json << "\n";

  const std::string obs_prom = obs_path(json_path, ".obs.prom");
  std::ofstream prom_out(obs_prom);
  if (!prom_out) throw std::runtime_error("cannot write " + obs_prom);
  registry.write_prometheus(prom_out);
  std::cout << "wrote " << obs_prom << "\n";
}

void write_json(const std::string& path, const Cli& cli, std::size_t tenants,
                const std::vector<BenchRow>& rows,
                const std::vector<std::pair<std::string, double>>& baselines) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"benchmark\": \"e10_sharded\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"config\": {\n";
  os << "    \"requests\": " << cli.get_u64("requests") << ",\n";
  os << "    \"tenants\": " << tenants << ",\n";
  os << "    \"pages_per_tenant\": " << cli.get_u64("pages-per-tenant")
     << ",\n";
  os << "    \"k_per_tenant\": " << cli.get_u64("k-per-tenant") << ",\n";
  os << "    \"skew\": " << cli.get_double("skew") << ",\n";
  os << "    \"seed\": " << cli.get_u64("seed") << ",\n";
  os << "    \"batch\": " << cli.get_u64("batch") << ",\n";
  os << "    \"shards\": \"" << json_escape(cli.get("shards")) << "\",\n";
  os << "    \"threads\": \"" << json_escape(cli.get("threads")) << "\",\n";
  os << "    \"hitpaths\": \"" << json_escape(cli.get("hitpaths")) << "\",\n";
  os << "    \"costs\": \"" << json_escape(cli.get("costs")) << "\"\n";
  os << "  },\n";
  os << "  \"unsharded_baselines\": {";
  for (std::size_t i = 0; i < baselines.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(baselines[i].first)
       << "\": " << baselines[i].second;
  os << "},\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    os << "    {\"cost\": \"" << json_escape(r.cost_family)
       << "\", \"hitpath\": \"" << json_escape(r.hitpath)
       << "\", \"shards\": " << r.shards << ", \"threads\": " << r.threads
       << ", \"capacity\": " << r.capacity
       << ", \"requests\": " << r.perf.requests
       << ", \"wall_seconds\": " << r.perf.wall_seconds
       << ", \"ns_per_request\": " << r.perf.ns_per_request()
       << ", \"requests_per_second\": "
       << (r.perf.wall_seconds > 0.0
               ? static_cast<double>(r.perf.requests) / r.perf.wall_seconds
               : 0.0)
       << ", \"speedup_vs_1shard\": " << r.speedup
       << ", \"shard_seconds\": " << r.shard_seconds
       << ", \"hits\": " << r.hits << ", \"misses\": " << r.misses
       << ", \"evictions\": " << r.perf.evictions
       << ", \"lockfree_hits\": " << r.perf.lockfree_hits
       << ", \"miss_cost\": " << r.miss_cost
       << ", \"cost_ratio_vs_unsharded\": " << r.cost_ratio << "}"
       << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << os.str();
  std::cout << "wrote " << path << "\n";
}

int run(int argc, const char* const* argv) {
  Cli cli(
      "E10 — sharded concurrent frontend: throughput scaling across shard "
      "and thread counts, and the competitive-cost degradation partitioning "
      "causes vs the unsharded ALG-DISCRETE replay; emits JSON for CI");
  cli.flag("shards", "1,2,4,8", "comma-separated shard counts to sweep")
      .flag("threads", "1,2,4,8", "comma-separated worker thread counts")
      .flag("hitpaths", "locked",
            "comma-separated hit paths to sweep: locked,seqlock (seqlock "
            "serves fresh hits lock-free via the flat residency tables)")
      .flag("costs", "mono2", "cost families: mono2,mono3,linear,sla")
      .flag("tenants", "64", "tenant count")
      .flag("requests", "1000000", "requests per measured run")
      .flag("pages-per-tenant", "64", "page universe per tenant")
      .flag("k-per-tenant", "8", "cache capacity = k-per-tenant × tenants")
      .flag("skew", "0.9", "Zipf skew of every tenant's stream")
      .flag("batch", "1024", "requests per access_batch call")
      .flag("seed", "1234", "trace generator seed")
      .flag("obs", "0",
            "1 = share one SimObserver across every cell's shards and dump "
            "latency/eviction histograms plus all counters next to the "
            "bench JSON (requires a CCC_OBS build)")
      .flag("obs-cadence", "8",
            "observed cells: time every Nth step (1 = every step)")
      .flag("json", "BENCH_sharded.json", "output JSON path (empty = none)");
  if (!cli.parse(argc, argv)) return 0;

  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const auto shard_counts = cli.get_u64_list("shards");
  const auto thread_counts = cli.get_u64_list("threads");
  const auto hitpath_names = split(cli.get("hitpaths"), ',');
  for (const std::string& name : hitpath_names)
    if (name != "locked" && name != "seqlock")
      throw std::invalid_argument("unknown hit path '" + name +
                                  "'; valid: locked seqlock");
  const auto families = split(cli.get("costs"), ',');
  const auto requests = static_cast<std::size_t>(cli.get_u64("requests"));
  const std::size_t capacity =
      static_cast<std::size_t>(cli.get_u64("k-per-tenant")) * tenants;
  const auto batch = static_cast<std::size_t>(cli.get_u64("batch"));
  const bool observe = cli.get_bool("obs");
  const std::uint64_t obs_cadence =
      std::max<std::uint64_t>(1, cli.get_u64("obs-cadence"));
#ifndef CCC_OBS_ENABLED
  if (observe)
    throw std::runtime_error(
        "--obs requires a binary built with -DCCC_OBS=ON");
#endif
  const std::unique_ptr<obs::TraceEventWriter> trace_writer =
      observe ? obs::TraceEventWriter::from_env() : nullptr;
  obs::MetricsRegistry obs_registry;

  const Trace trace =
      make_trace(tenants, cli.get_u64("pages-per-tenant"),
                 cli.get_double("skew"), requests, cli.get_u64("seed"));

  std::vector<BenchRow> rows;
  std::vector<std::pair<std::string, double>> baselines;
  Table table({"cost", "hitpath", "shards", "threads", "ns/req", "Mreq/s",
               "speedup", "miss_cost", "cost_ratio"});

  for (const std::string& family : families) {
    const auto costs = make_costs(family, tenants);

    // Unsharded reference: one ALG-DISCRETE over the whole cache — the
    // cost yardstick every sharded cell is divided by.
    ConvexCachingPolicy unsharded;
    const SimResult reference = run_trace(trace, capacity, unsharded, &costs);
    const double unsharded_cost =
        total_cost(reference.metrics.miss_vector(), costs);
    baselines.emplace_back(family, unsharded_cost);
    std::cout << family << " unsharded: "
              << reference.perf.ns_per_request() << " ns/req, cost "
              << format_compact(unsharded_cost) << "\n";

    for (const std::string& hitpath_name : hitpath_names) {
      // 1-shard/1-thread wall-clock of this family × hit path. Latched on
      // the first cell exactly once: the old `base_wall == 0.0` re-latch
      // made a later cell the baseline whenever the first one timed at
      // zero, silently inflating every speedup in the family.
      double base_wall = 0.0;
      bool have_base = false;
      for (const std::uint64_t s64 : shard_counts) {
        for (const std::uint64_t t64 : thread_counts) {
          const auto num_shards = static_cast<std::size_t>(s64);
          const auto num_threads = static_cast<std::size_t>(t64);

          ShardedCacheOptions options;
          options.capacity = capacity;
          options.num_shards = num_shards;
          options.num_tenants = tenants;
          options.seed = cli.get_u64("seed");
          options.hit_path = hitpath_name == "seqlock" ? HitPath::kSeqlock
                                                       : HitPath::kLocked;
          std::unique_ptr<obs::SimObserver> observer;
          if (observe) {
            obs::SimObserverOptions observer_options;
            observer_options.latency_sample_period = obs_cadence;
            observer_options.trace = trace_writer.get();
            observer = std::make_unique<obs::SimObserver>(observer_options);
            options.step_observer = observer.get();
          }
          ShardedCache cache(options, make_convex_factory(), &costs);

          ParallelReplayOptions replay_options;
          replay_options.threads = num_threads;
          replay_options.batch_size = batch;
          ParallelReplayer replayer(replay_options);
          const ParallelReplayResult result = replayer.replay(trace, cache);

          BenchRow row;
          row.cost_family = family;
          row.hitpath = hitpath_name;
          row.shards = num_shards;
          row.threads = num_threads;
          row.capacity = capacity;
          row.perf = result.perf;
          row.hits = result.metrics.total_hits();
          row.misses = result.metrics.total_misses();
          row.miss_cost = result.miss_cost;
          row.shard_seconds = result.shard_seconds;
          if (observer != nullptr) {
            const obs::LabelSet labels{
                {"cost", family},
                {"hitpath", hitpath_name},
                {"shards", std::to_string(num_shards)},
                {"threads", std::to_string(num_threads)}};
            observer->fill(obs_registry, labels);
            obs::snapshot_perf(obs_registry, result.perf, labels);
            obs::snapshot_sharded(obs_registry, cache, labels);
          }
          if (!have_base) {
            base_wall = result.perf.wall_seconds;
            have_base = true;
            if (base_wall <= 0.0)
              std::cerr << "warning: " << family
                        << " baseline cell reported zero wall_seconds; "
                           "speedups for this family are unreliable\n";
          }
          row.speedup =
              result.perf.wall_seconds > 0.0 && base_wall > 0.0
                  ? base_wall / result.perf.wall_seconds
                  : 0.0;
          row.cost_ratio =
              unsharded_cost > 0.0 ? row.miss_cost / unsharded_cost : 0.0;

          table.add(family, hitpath_name, num_shards, num_threads,
                    row.perf.ns_per_request(),
                    row.perf.wall_seconds > 0.0
                        ? static_cast<double>(row.perf.requests) /
                              (row.perf.wall_seconds * 1e6)
                        : 0.0,
                    row.speedup, row.miss_cost, row.cost_ratio);
          std::cout << family << " " << hitpath_name << " S=" << num_shards
                    << " T=" << num_threads << ": "
                    << row.perf.ns_per_request() << " ns/req, "
                    << "speedup " << format_double(row.speedup, 2)
                    << ", cost ratio " << format_double(row.cost_ratio, 3)
                    << "\n";
          rows.push_back(std::move(row));
        }
      }
    }
  }

  std::cout << "\n" << table.to_ascii() << "\n";
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) write_json(json_path, cli, tenants, rows, baselines);
  if (observe && !json_path.empty()) write_obs_outputs(obs_registry, json_path);
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "e10_sharded: " << e.what() << "\n";
    return 1;
  }
}
