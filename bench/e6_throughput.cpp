/// \file e6_throughput.cpp
/// \brief Experiment E6 — request-processing throughput harness.
///
/// Adoption-grade numbers: nanoseconds per request across tenant counts,
/// cache sizes and cost families, on Zipf-skewed multi-tenant streams. The
/// point of the global cross-tenant eviction index is that ALG-DISCRETE's
/// per-request work is O(log k) *independent of the number of tenants*;
/// the `convex-scan` rows (per-tenant heaps scanned on every eviction, the
/// previous layout) collapse as tenants grow while `convex` stays flat.
///
/// Every run is also written as machine-readable JSON (default
/// `BENCH_throughput.json`) so CI can track the perf trajectory:
///
///   e6_throughput --tenants 16,256,4096,65536
///                 --policies convex,convex-scan,lru --json out.json
///
/// Scan-based baselines are auto-skipped above `--max-scan-tenants`
/// (the quadratic blow-up is the point; no need to wait hours for it) and
/// the skip is recorded in the JSON.
///
/// Two pseudo-policies route the trace through a 1-shard ShardedCache
/// instead of a bare SimulatorSession, measuring the frontend's hit paths
/// under identical decisions: `sharded-locked` (every request takes the
/// shard mutex) and `sharded-seqlock` (fresh hits bypass it via the
/// optimistic flat-table probe). Both are timed externally around the
/// access loop — the seqlock path deliberately does no per-request
/// bookkeeping — and after the sweep the harness *asserts* that every
/// locked/seqlock cell pair produced identical hits/misses/evictions:
/// the optimistic path must buy speed, never different decisions.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/convex_caching.hpp"
#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "exp/policy_factory.hpp"
#include "shard/sharded_cache.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

#ifdef CCC_AUDIT_ENABLED
#include "audit/audit.hpp"
#endif

#include "obs/observer.hpp"
#include "obs/registry.hpp"
#include "obs/trace_event.hpp"

// ----------------------------------------------------------------------
// Counting operator new/delete replacements (whole-binary, this TU only
// links into e6). The --alloc-stats probe snapshots the counter around a
// steady-state replay to assert the eviction path performs zero heap
// allocations per request once the arena-backed index has plateaued. The
// relaxed increment costs ~1ns per *allocation* — and the claim under
// test is precisely that steady-state cells allocate nothing, so the
// hook cannot skew the throughput numbers it rides along with.
// ----------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  size = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
// Deletes must pair with the malloc-family allocators above (the default
// ones are not guaranteed to be free()-compatible).
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ccc {
namespace {

std::uint64_t heap_alloc_count() {
  return g_new_calls.load(std::memory_order_relaxed);
}

Trace make_trace(std::uint32_t tenants, std::uint64_t pages_per_tenant,
                 double skew, std::size_t length, std::uint64_t seed) {
  std::vector<TenantWorkload> workloads;
  workloads.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t)
    workloads.push_back(
        {std::make_unique<ZipfPages>(pages_per_tenant, skew), 1.0});
  Rng rng(seed);
  return generate_trace(std::move(workloads), length, rng);
}

/// Cost families swept by the harness. Per-tenant parameters rotate so
/// tenants are not interchangeable (otherwise the convex policy degenerates
/// to round-robin and the index is never stressed).
std::vector<CostFunctionPtr> make_costs(const std::string& family,
                                        std::uint32_t tenants) {
  std::vector<CostFunctionPtr> costs;
  costs.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    const double w = 1.0 + static_cast<double>(t % 4);
    if (family == "mono2") {
      costs.push_back(std::make_unique<MonomialCost>(2.0, w));
    } else if (family == "mono3") {
      costs.push_back(std::make_unique<MonomialCost>(3.0, w));
    } else if (family == "linear") {
      costs.push_back(std::make_unique<MonomialCost>(1.0, w));
    } else if (family == "sla") {
      costs.push_back(std::make_unique<PiecewiseLinearCost>(
          PiecewiseLinearCost::sla(8.0 * w, w)));
    } else {
      throw std::invalid_argument("unknown cost family '" + family +
                                  "'; valid: mono2 mono3 linear sla");
    }
  }
  return costs;
}

struct BenchRow {
  std::string policy;
  std::string cost_family;
  std::uint32_t tenants = 0;
  std::size_t capacity = 0;
  bool skipped = false;
  std::string skip_reason;
  bool audited = false;       // run with the CCC_AUDIT shadow checks on
  PerfCounters perf;          // best (min wall-clock) repeat
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  // --alloc-stats probe rows only (no requests_per_second, so the CI
  // regression gate skips them automatically).
  bool alloc_probe = false;
  std::uint64_t steady_allocs = 0;     // operator new calls, measured half
  std::uint64_t steady_evictions = 0;  // evictions in the measured half
  std::uint64_t steady_requests = 0;   // requests in the measured half
};

[[nodiscard]] bool is_sharded_policy(const std::string& name) {
  return name == "sharded-locked" || name == "sharded-seqlock";
}

void write_json(const std::string& path, const Cli& cli,
                const std::vector<BenchRow>& rows) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"benchmark\": \"e6_throughput\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"config\": {\n";
  os << "    \"requests\": " << cli.get_u64("requests") << ",\n";
  os << "    \"pages_per_tenant\": " << cli.get_u64("pages-per-tenant")
     << ",\n";
  os << "    \"k_per_tenant\": " << cli.get_u64("k-per-tenant") << ",\n";
  os << "    \"skew\": " << cli.get_double("skew") << ",\n";
  os << "    \"seed\": " << cli.get_u64("seed") << ",\n";
  os << "    \"repeats\": " << cli.get_u64("repeats") << ",\n";
  os << "    \"sharded_batch\": " << cli.get_u64("sharded-batch") << ",\n";
  os << "    \"tenants\": \"" << json_escape(cli.get("tenants")) << "\",\n";
  os << "    \"policies\": \"" << json_escape(cli.get("policies")) << "\",\n";
  os << "    \"costs\": \"" << json_escape(cli.get("costs")) << "\"\n";
  os << "  },\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    os << "    {\"policy\": \"" << json_escape(r.policy) << "\", \"cost\": \""
       << json_escape(r.cost_family) << "\", \"tenants\": " << r.tenants
       << ", \"capacity\": " << r.capacity
       << ", \"audit\": " << (r.audited ? "true" : "false");
    if (r.skipped) {
      os << ", \"skipped\": true, \"reason\": \"" << json_escape(r.skip_reason)
         << "\"}";
    } else if (r.alloc_probe) {
      // Deliberately no requests_per_second: probe rows measure heap
      // traffic, not throughput, and must stay out of the perf gate.
      os << ", \"skipped\": false, \"alloc_probe\": true"
         << ", \"steady_state_allocs\": " << r.steady_allocs
         << ", \"evictions_measured\": " << r.steady_evictions
         << ", \"requests_measured\": " << r.steady_requests << "}";
    } else {
      os << ", \"skipped\": false"
         << ", \"requests\": " << r.perf.requests
         << ", \"wall_seconds\": " << r.perf.wall_seconds
         << ", \"ns_per_request\": " << r.perf.ns_per_request()
         << ", \"requests_per_second\": "
         << (r.perf.wall_seconds > 0.0
                 ? static_cast<double>(r.perf.requests) / r.perf.wall_seconds
                 : 0.0)
         << ", \"hits\": " << r.hits << ", \"misses\": " << r.misses
         << ", \"evictions\": " << r.perf.evictions
         << ", \"heap_pops\": " << r.perf.heap_pops
         << ", \"stale_skips\": " << r.perf.stale_skips
         << ", \"index_rebuilds\": " << r.perf.index_rebuilds
         << ", \"lockfree_hits\": " << r.perf.lockfree_hits << "}";
    }
    os << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << os.str();
  std::cout << "wrote " << path << "\n";
}

/// Derives the obs snapshot path from the bench JSON path: `foo.json` →
/// `foo.obs.json` / `foo.obs.prom`; a non-.json path just gets the suffix
/// appended.
std::string obs_path(const std::string& json_path, const char* suffix) {
  const std::string base =
      json_path.size() > 5 && json_path.ends_with(".json")
          ? json_path.substr(0, json_path.size() - 5)
          : json_path;
  return base + suffix;
}

void write_obs_outputs(const obs::MetricsRegistry& registry,
                       const std::string& json_path) {
  const std::string obs_json = obs_path(json_path, ".obs.json");
  std::ofstream json_out(obs_json);
  if (!json_out) throw std::runtime_error("cannot write " + obs_json);
  registry.write_json(json_out);
  std::cout << "wrote " << obs_json << "\n";

  const std::string obs_prom = obs_path(json_path, ".obs.prom");
  std::ofstream prom_out(obs_prom);
  if (!prom_out) throw std::runtime_error("cannot write " + obs_prom);
  registry.write_prometheus(prom_out);
  std::cout << "wrote " << obs_prom << "\n";
}

/// Measures one cell: `repeats` runs of `policy_name` over `trace`, keeping
/// the min-wall-clock repeat. With `audit` true the runs carry a
/// ConvexCachingAuditor (cadence `audit_cadence`); any reported violation
/// aborts the benchmark — an audited number from a broken run is worthless.
/// `observer`, when non-null, is attached to every repeat (requires a
/// CCC_OBS build).
void measure(BenchRow& row, const Trace& trace, std::size_t capacity,
             const std::vector<CostFunctionPtr>& costs,
             const std::string& policy_name, std::uint64_t repeats,
             bool audit, std::uint64_t audit_cadence,
             StepObserver* observer) {
  const auto policy = make_policy(policy_name);
  SimOptions options;
  options.step_observer = observer;
#ifdef CCC_AUDIT_ENABLED
  AuditConfig audit_config;
  audit_config.step_cadence = audit_cadence;
  audit_config.eviction_cadence = audit_cadence;
  ConvexCachingAuditor auditor(audit_config);
  if (audit) options.auditor = &auditor;
#else
  (void)audit_cadence;
  if (audit)
    throw std::runtime_error(
        "--audit requires a binary built with -DCCC_AUDIT=ON");
#endif
  row.audited = audit;
  bool first = true;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    const SimResult result = run_trace(trace, capacity, *policy, &costs,
                                       options);
#ifdef CCC_AUDIT_ENABLED
    if (audit && !auditor.report().ok())
      throw std::runtime_error("audit violations in benchmarked run: " +
                               auditor.report().summary());
#endif
    if (first || result.perf.wall_seconds < row.perf.wall_seconds) {
      row.perf = result.perf;
      row.hits = result.metrics.total_hits();
      row.misses = result.metrics.total_misses();
      first = false;
    }
  }
}

/// Measures one sharded-frontend cell: `repeats` fresh 1-shard
/// ShardedCaches driven through access_batch() in fixed-size windows
/// (`batch` requests each; 1 = per-request access()), keeping the
/// min-wall-clock repeat. Batch submission is the frontend's intended
/// steady-state interface: it amortises the shard lock and the clock reads
/// over each locked group, engages the probe-ahead prefetch, and under
/// kSeqlock lets the optimistic prefix of every group bypass the lock.
/// Timing is external around the submission loop — under kSeqlock the fast
/// path does no per-request bookkeeping, so the frontend's internal
/// wall_seconds covers only the locked residue and would flatter the
/// optimistic path.
void measure_sharded(BenchRow& row, const Trace& trace, std::size_t capacity,
                     const std::vector<CostFunctionPtr>& costs,
                     HitPath hit_path, std::uint32_t tenants,
                     std::uint64_t repeats, std::uint64_t seed,
                     std::size_t batch, StepObserver* observer) {
  using Clock = std::chrono::steady_clock;
  bool first = true;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    ShardedCacheOptions options;
    options.capacity = capacity;
    options.num_shards = 1;
    options.num_tenants = tenants;
    options.seed = seed;
    options.hit_path = hit_path;
    options.step_observer = observer;
    ShardedCache cache(options, nullptr, &costs);
    const std::span<const Request> requests(trace.requests());
    const auto start = Clock::now();
    if (batch <= 1) {
      for (const Request& request : requests) (void)cache.access(request);
    } else {
      for (std::size_t i = 0; i < requests.size(); i += batch)
        cache.access_batch(
            requests.subspan(i, std::min(batch, requests.size() - i)));
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    PerfCounters perf = cache.aggregated_perf();
    perf.wall_seconds = wall;
    if (first || perf.wall_seconds < row.perf.wall_seconds) {
      const Metrics metrics = cache.aggregated_metrics();
      row.perf = perf;
      row.hits = metrics.total_hits();
      row.misses = metrics.total_misses();
      first = false;
    }
  }
}

/// The --alloc-stats probe: replays the first half of the trace through
/// one ALG-DISCRETE session (warm-up — the residency map reaches its
/// final size and the arena behind the eviction index plateaus), then
/// counts operator new calls over the second half. With the bump-pointer
/// arena backing the lazy index's heap storage, a steady-state eviction
/// performs zero heap allocations; in Release builds a nonzero count
/// fails the benchmark (the CI allocation gate).
BenchRow run_alloc_probe(const Trace& trace, std::size_t capacity,
                         const std::vector<CostFunctionPtr>& costs,
                         const std::string& family, std::uint32_t tenants) {
  BenchRow row;
  row.policy = "convex-alloc-probe";
  row.cost_family = family;
  row.tenants = tenants;
  row.capacity = capacity;
  row.alloc_probe = true;

  ConvexCachingPolicy policy;
  SimulatorSession session(capacity, tenants, policy, &costs);
  const std::span<const Request> requests(trace.requests());
  const std::size_t half = requests.size() / 2;
  for (std::size_t i = 0; i < half; ++i) (void)session.step(requests[i]);

  const std::uint64_t allocs_before = heap_alloc_count();
  const std::uint64_t evictions_before = session.perf_counters().evictions;
  for (std::size_t i = half; i < requests.size(); ++i)
    (void)session.step(requests[i]);
  row.steady_allocs = heap_alloc_count() - allocs_before;
  row.steady_evictions =
      session.perf_counters().evictions - evictions_before;
  row.steady_requests = requests.size() - half;

  std::cout << "alloc-probe n=" << tenants << " cost=" << family << ": "
            << row.steady_allocs << " heap allocations over "
            << row.steady_requests << " steady-state requests ("
            << row.steady_evictions << " evictions)\n";
  return row;
}

/// The sharded cells' zero-drift gate: every (cost, tenants) pair measured
/// on both hit paths must have produced identical books. A divergence means
/// the optimistic path served a stale hit — a correctness bug, so the
/// benchmark aborts rather than publish numbers from a broken run.
void check_hit_path_equivalence(const std::vector<BenchRow>& rows) {
  for (const BenchRow& locked : rows) {
    if (locked.policy != "sharded-locked" || locked.skipped) continue;
    for (const BenchRow& seqlock : rows) {
      if (seqlock.policy != "sharded-seqlock" || seqlock.skipped) continue;
      if (seqlock.cost_family != locked.cost_family ||
          seqlock.tenants != locked.tenants)
        continue;
      if (locked.hits != seqlock.hits || locked.misses != seqlock.misses ||
          locked.perf.evictions != seqlock.perf.evictions)
        throw std::runtime_error(
            "hit-path divergence at cost=" + locked.cost_family +
            " tenants=" + std::to_string(locked.tenants) +
            ": locked " + std::to_string(locked.hits) + "/" +
            std::to_string(locked.misses) + "/" +
            std::to_string(locked.perf.evictions) + " vs seqlock " +
            std::to_string(seqlock.hits) + "/" +
            std::to_string(seqlock.misses) + "/" +
            std::to_string(seqlock.perf.evictions) +
            " (hits/misses/evictions)");
      std::cout << "hit-path equivalence OK: cost=" << locked.cost_family
                << " n=" << locked.tenants << " (cost ratio 1.00)\n";
    }
  }
}

int run(int argc, const char* const* argv) {
  Cli cli(
      "E6 — request throughput of online policies across tenant counts, "
      "cache sizes and cost families; emits JSON for CI perf tracking");
  cli.flag("tenants", "16,256,4096,65536",
           "comma-separated tenant counts to sweep")
      .flag("policies", "convex,convex-scan,lru",
            "comma-separated policy names (see policy_factory); "
            "sharded-locked / sharded-seqlock route through a 1-shard "
            "ShardedCache on the corresponding hit path")
      .flag("costs", "mono2", "cost families: mono2,mono3,linear,sla")
      .flag("requests", "1000000", "requests per measured run")
      .flag("pages-per-tenant", "16", "page universe per tenant")
      .flag("k-per-tenant", "8", "cache capacity = k-per-tenant × tenants")
      .flag("skew", "0.9", "Zipf skew of every tenant's stream")
      .flag("repeats", "1", "measured repeats per cell (min wall-clock wins)")
      .flag("seed", "1234", "trace generator seed")
      .flag("max-scan-tenants", "8192",
            "skip convex-scan above this tenant count")
      .flag("max-naive-tenants", "64",
            "skip convex-naive above this tenant count")
      .flag("audit", "0",
            "1 = add an audited twin row per convex/convex-scan cell "
            "(requires a CCC_AUDIT build); measures the audit overhead")
      .flag("audit-cadence", "64",
            "audited rows: run the shadow checks every Nth request/eviction")
      .flag("obs", "0",
            "1 = attach a SimObserver to every measured cell and dump "
            "latency/eviction histograms plus all counters next to the "
            "bench JSON (requires a CCC_OBS build; see --obs-cadence)")
      .flag("sharded-batch", "256",
            "sharded cells: requests per access_batch() submission "
            "(1 = drive access() per request)")
      .flag("obs-cadence", "8",
            "observed rows: time every Nth step (1 = every step; higher "
            "values shrink the observation overhead)")
      .flag("alloc-stats", "0",
            "1 = add one allocation-probe row per (cost, tenants) cell: "
            "warm a convex session on the first half of the trace, count "
            "operator new calls over the second half; Release builds fail "
            "on a nonzero steady-state count (the CI allocation gate)")
      .flag("expect-lockfree-frac", "0",
            "fail unless every sharded-seqlock cell served at least this "
            "fraction of its requests lock-free (0 = no check); the CI "
            "eviction-pressure cell uses this to pin the per-tenant-epoch "
            "freshness win")
      .flag("json", "BENCH_throughput.json",
            "output JSON path (empty = no JSON)");
  if (!cli.parse(argc, argv)) return 0;

  const auto tenant_counts = cli.get_u64_list("tenants");
  const auto policies = split(cli.get("policies"), ',');
  const auto families = split(cli.get("costs"), ',');
  const auto requests = static_cast<std::size_t>(cli.get_u64("requests"));
  const std::uint64_t pages_per_tenant = cli.get_u64("pages-per-tenant");
  const std::uint64_t k_per_tenant = cli.get_u64("k-per-tenant");
  const double skew = cli.get_double("skew");
  const std::uint64_t repeats = std::max<std::uint64_t>(1,
                                                        cli.get_u64("repeats"));
  const std::uint64_t max_scan = cli.get_u64("max-scan-tenants");
  const std::uint64_t max_naive = cli.get_u64("max-naive-tenants");
  const bool audit = cli.get_bool("audit");
  const std::uint64_t audit_cadence =
      std::max<std::uint64_t>(1, cli.get_u64("audit-cadence"));
#ifndef CCC_AUDIT_ENABLED
  if (audit)
    throw std::runtime_error(
        "--audit requires a binary built with -DCCC_AUDIT=ON");
#endif
  const bool observe = cli.get_bool("obs");
  const std::uint64_t obs_cadence =
      std::max<std::uint64_t>(1, cli.get_u64("obs-cadence"));
#ifndef CCC_OBS_ENABLED
  if (observe)
    throw std::runtime_error(
        "--obs requires a binary built with -DCCC_OBS=ON");
#endif
  // Optional Chrome trace spans (CCC_OBS_TRACE=path), shared by all cells.
  const std::unique_ptr<obs::TraceEventWriter> trace_writer =
      observe ? obs::TraceEventWriter::from_env() : nullptr;
  obs::MetricsRegistry obs_registry;

  std::vector<BenchRow> rows;
  Table table({"policy", "cost", "tenants", "capacity", "ns/req", "Mreq/s",
               "hit%", "stale/evict"});

  for (const std::uint64_t n64 : tenant_counts) {
    const auto tenants = static_cast<std::uint32_t>(n64);
    const std::size_t capacity =
        static_cast<std::size_t>(k_per_tenant) * tenants;
    const Trace trace = make_trace(tenants, pages_per_tenant, skew, requests,
                                   cli.get_u64("seed"));
    for (const std::string& family : families) {
      const auto costs = make_costs(family, tenants);
      if (cli.get_bool("alloc-stats"))
        rows.push_back(
            run_alloc_probe(trace, capacity, costs, family, tenants));
      for (const std::string& policy_name : policies) {
        BenchRow row;
        row.policy = policy_name;
        row.cost_family = family;
        row.tenants = tenants;
        row.capacity = capacity;

        if (policy_name == "convex-scan" && n64 > max_scan) {
          row.skipped = true;
          row.skip_reason = "tenants > max-scan-tenants";
        } else if (policy_name == "convex-naive" && n64 > max_naive) {
          row.skipped = true;
          row.skip_reason = "tenants > max-naive-tenants";
        }
        if (row.skipped) {
          std::cout << policy_name << " n=" << tenants << " cost=" << family
                    << ": skipped (" << row.skip_reason << ")\n";
          rows.push_back(std::move(row));
          continue;
        }

        // Unaudited cell, plus — with --audit and an audit-capable policy —
        // an audited twin, so the JSON carries overhead pairs. (The sharded
        // pseudo-policies take neither an auditor nor audit twins: the
        // frontend owns its sessions.)
        const bool audit_capable =
            policy_name == "convex" || policy_name == "convex-scan";
        for (const bool audited : {false, true}) {
          if (audited && !(audit && audit_capable)) continue;
          BenchRow cell = row;
          std::unique_ptr<obs::SimObserver> observer;
          if (observe) {
            obs::SimObserverOptions observer_options;
            observer_options.latency_sample_period = obs_cadence;
            observer_options.trace = trace_writer.get();
            observer = std::make_unique<obs::SimObserver>(observer_options);
          }
          if (is_sharded_policy(policy_name)) {
            measure_sharded(cell, trace, capacity, costs,
                            policy_name == "sharded-seqlock"
                                ? HitPath::kSeqlock
                                : HitPath::kLocked,
                            tenants, repeats, cli.get_u64("seed"),
                            static_cast<std::size_t>(std::max<std::uint64_t>(
                                1, cli.get_u64("sharded-batch"))),
                            observer.get());
          } else {
            measure(cell, trace, capacity, costs, policy_name, repeats,
                    audited, audit_cadence, observer.get());
          }
          if (observer != nullptr && !audited) {
            const obs::LabelSet labels{{"policy", policy_name},
                                       {"cost", family},
                                       {"tenants", std::to_string(tenants)}};
            observer->fill(obs_registry, labels);
            obs::snapshot_perf(obs_registry, cell.perf, labels);
          }
          const std::uint64_t accesses = cell.hits + cell.misses;
          const double hit_pct =
              accesses == 0 ? 0.0
                            : 100.0 * static_cast<double>(cell.hits) /
                                  static_cast<double>(accesses);
          const std::string label =
              policy_name + (audited ? "+audit" : "");
          table.add(label, family, tenants, capacity,
                    cell.perf.ns_per_request(),
                    cell.perf.wall_seconds > 0.0
                        ? static_cast<double>(cell.perf.requests) /
                              (cell.perf.wall_seconds * 1e6)
                        : 0.0,
                    hit_pct, cell.perf.stale_skips_per_eviction());
          std::cout << label << " n=" << tenants << " cost=" << family
                    << ": " << cell.perf.ns_per_request() << " ns/req\n";
          rows.push_back(std::move(cell));
        }
      }
    }
  }

  std::cout << "\n" << table.to_ascii() << "\n";
  check_hit_path_equivalence(rows);
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) write_json(json_path, cli, rows);
  if (observe && !json_path.empty()) write_obs_outputs(obs_registry, json_path);

  // CI assertions last, after the JSON landed (a failing gate should
  // still leave the numbers on disk for diagnosis).
  const double expect_lockfree = cli.get_double("expect-lockfree-frac");
  if (expect_lockfree > 0.0) {
    bool any = false;
    for (const BenchRow& row : rows) {
      if (row.policy != "sharded-seqlock" || row.skipped) continue;
      any = true;
      const double frac =
          row.perf.requests == 0
              ? 0.0
              : static_cast<double>(row.perf.lockfree_hits) /
                    static_cast<double>(row.perf.requests);
      std::cout << "lockfree fraction n=" << row.tenants
                << " cost=" << row.cost_family << ": " << frac << "\n";
      if (frac < expect_lockfree)
        throw std::runtime_error(
            "sharded-seqlock cell cost=" + row.cost_family + " n=" +
            std::to_string(row.tenants) + " served only " +
            std::to_string(frac) + " of requests lock-free (< " +
            std::to_string(expect_lockfree) + ")");
    }
    if (!any)
      throw std::runtime_error(
          "--expect-lockfree-frac set but no sharded-seqlock cell ran");
  }
  if (cli.get_bool("alloc-stats")) {
    for (const BenchRow& row : rows) {
      if (!row.alloc_probe) continue;
#ifdef NDEBUG
      if (row.steady_allocs != 0)
        throw std::runtime_error(
            "allocation gate: cost=" + row.cost_family + " n=" +
            std::to_string(row.tenants) + " performed " +
            std::to_string(row.steady_allocs) +
            " heap allocations at steady state (expected 0)");
#endif
    }
  }
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "e6_throughput: " << e.what() << "\n";
    return 1;
  }
}
