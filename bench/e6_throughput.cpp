/// \file e6_throughput.cpp
/// \brief Experiment E6 — request-processing throughput (google-benchmark).
///
/// Adoption-grade numbers: nanoseconds per request for every online policy
/// across cache sizes, on a Zipf-skewed multi-tenant stream. The point of
/// the optimized ALG-DISCRETE (per-tenant lazy heaps + offset folding) is
/// that it stays within a small constant of LRU instead of the O(k) per
/// eviction of the literal Fig. 3 transcription — the `convex-naive` rows
/// make that gap visible.

#include <benchmark/benchmark.h>

#include "cost/monomial.hpp"
#include "exp/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

constexpr std::uint32_t kTenants = 4;

Trace make_trace(std::size_t length, std::uint64_t pages_per_tenant) {
  std::vector<TenantWorkload> tenants;
  for (std::uint32_t i = 0; i < kTenants; ++i)
    tenants.push_back(
        {std::make_unique<ZipfPages>(pages_per_tenant, 0.9), 1.0});
  Rng rng(1234);
  return generate_trace(std::move(tenants), length, rng);
}

std::vector<CostFunctionPtr> make_costs() {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < kTenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(2.0, 1.0 + i));
  return costs;
}

void bench_policy(benchmark::State& state, const std::string& name) {
  const auto k = static_cast<std::size_t>(state.range(0));
  // Working set ~2x the cache so evictions dominate.
  const Trace trace = make_trace(50'000, k / 2);
  const auto costs = make_costs();
  const auto policy = make_policy(name);

  for (auto _ : state) {
    const SimResult result = run_trace(trace, k, *policy, &costs);
    benchmark::DoNotOptimize(result.metrics.total_misses());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}

void register_benches() {
  for (const char* name :
       {"lru", "fifo", "marking", "landlord", "static", "convex",
        "convex-naive", "lru2", "lfu"}) {
    auto* bench = benchmark::RegisterBenchmark(
        (std::string("policy/") + name).c_str(),
        [name = std::string(name)](benchmark::State& state) {
          bench_policy(state, name);
        });
    bench->Arg(256)->Arg(2048)->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  ccc::register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
