/// \file e1_competitive.cpp
/// \brief Experiment E1 — Theorem 1.1 / Corollary 1.2 upper bound.
///
/// For f(x)=x^β the paper proves ALG ≤ β^β·k^β · OPT (Cor. 1.2), and the
/// tighter per-tenant form ALG ≤ Σ f_i(α·k·b_i) (Thm. 1.1). This bench
/// measures the realized competitive ratio against the *exact* offline
/// optimum on small multi-tenant instances and prints it next to both
/// bounds. The interesting shape: measured ratios are far below the
/// worst-case bound on stochastic traces, grow with β and k, and the
/// Theorem 1.1 inequality never once fails.

#include <iostream>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/ratio.hpp"
#include "offline/exact_opt.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ccc {
namespace {

int run(int argc, const char* const* argv) {
  Cli cli("E1: competitive ratio of ALG-DISCRETE vs exact OPT "
          "(Theorem 1.1 / Corollary 1.2)");
  cli.flag("betas", "1,2,3", "monomial exponents to sweep")
      .flag("ks", "2,3,4", "cache sizes to sweep")
      .flag("tenants", "2", "number of tenants")
      .flag("pages", "3", "pages per tenant (small: exact OPT)")
      .flag("length", "60", "requests per trace")
      .flag("trials", "8", "random traces per configuration")
      .flag("seed", "1", "base RNG seed")
      .flag("jobs", "0", "worker threads for the sweep (0 = hardware)")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const auto betas = cli.get_double_list("betas");
  const auto ks = cli.get_u64_list("ks");
  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const std::uint64_t pages = cli.get_u64("pages");
  const std::size_t length = cli.get_u64("length");
  const std::size_t trials = cli.get_u64("trials");

  Table table({"beta", "k", "alpha", "mean ratio", "max ratio",
               "Cor1.2 bound b^b*k^b", "Thm1.1 holds"});

  // The (beta, k, trial) grid is embarrassingly parallel: every cell gets
  // its own RNG stream derived up front, and results land in pre-sized
  // slots, so the table is identical for any worker count.
  struct Cell {
    double ratio = -1.0;  ///< < 0 means skipped (OPT intractable / zero)
    bool theorem_holds = true;
  };
  ThreadPool pool(static_cast<std::size_t>(cli.get_u64("jobs")));
  std::vector<Cell> cells(betas.size() * ks.size() * trials);
  std::vector<Rng> streams;
  streams.reserve(cells.size());
  Rng root(cli.get_u64("seed"));
  for (std::size_t i = 0; i < cells.size(); ++i) streams.push_back(root.split());

  pool.parallel_for(cells.size(), [&](std::size_t index) {
    const double beta = betas[index / (ks.size() * trials)];
    const std::uint64_t k = ks[(index / trials) % ks.size()];
    Rng trial_rng = streams[index];
    const Trace trace = random_uniform_trace(tenants, pages, length, trial_rng);
    std::vector<CostFunctionPtr> costs;
    for (std::uint32_t i = 0; i < tenants; ++i)
      costs.push_back(std::make_unique<MonomialCost>(beta));
    ConvexCachingPolicy policy;
    const RatioResult r = measure_ratio(trace, k, costs, policy);
    Cell& cell = cells[index];
    if (r.opt.exact && r.opt.upper_cost > 0.0) cell.ratio = r.ratio;
    cell.theorem_holds = r.alg_cost <= r.theorem11_rhs + 1e-9 || !r.opt.exact;
  });

  for (std::size_t bi = 0; bi < betas.size(); ++bi) {
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      RunningStats ratios;
      bool theorem_holds = true;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        const Cell& cell = cells[(bi * ks.size() + ki) * trials + trial];
        if (cell.ratio >= 0.0) ratios.add(cell.ratio);
        theorem_holds = theorem_holds && cell.theorem_holds;
      }
      const double beta = betas[bi];
      table.add(beta, ks[ki], beta /* alpha = beta for monomials */,
                ratios.mean(), ratios.max(),
                corollary12_factor(beta, ks[ki]),
                theorem_holds ? "yes" : "VIOLATED");
    }
  }

  print_table(std::cout,
              "E1 — competitive ratio vs exact OPT (f(x)=x^beta)", table);
  std::cout << "Reading: measured ratios sit well below the worst-case\n"
               "bound on stochastic traces and grow with beta and k; the\n"
               "Theorem 1.1 inequality must hold on every instance.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
