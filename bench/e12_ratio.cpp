/// \file e12_ratio.cpp
/// \brief Experiment E12 — live-telemetry competitive ratio vs the
///        Corollary 1.2 bound.
///
/// The observability layer exports `ccc_competitive_ratio` — realized ALG
/// cost over the certified dual lower bound the policy banks online
/// (DESIGN.md §13). This bench measures how that *online* gauge compares
/// to the paper's value-domain cap β^β·k^β for f(x)=x^β on two trace
/// shapes:
///
///   - `adversary` — the §4 adaptive lower-bound construction (n
///     single-page tenants, k = n−1, every post-warm-up request misses):
///     maximal eviction pressure, so the eviction-driven dual bank is at
///     its tightest and the measured ratio approaches what the paper's
///     worst case actually costs.
///   - `zipf` — skewed stochastic traffic: the ratio gauge over-estimates
///     ALG/OPT here (compulsory misses bank no dual mass), yet must still
///     sit under the theorem bound, which is the alarm condition the
///     nightly soak monitors.
///
/// Every certified row asserts measured_ratio ≤ theorem_ratio_bound; a
/// violation exits nonzero, making the bench a CI check of the exported
/// gauge, not just a table.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/adversary.hpp"
#include "obs/cost_tracker.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

std::vector<CostFunctionPtr> monomials(std::uint32_t n, double beta) {
  std::vector<CostFunctionPtr> costs;
  costs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta));
  return costs;
}

/// Packages a finished policy's books as the one-account tracker that
/// ShardedCache::dual_accounts + CostTracker::collect would build for a
/// single shard — the exact pipeline behind /metrics and /debug/costs.
obs::CostSnapshot telemetry_snapshot(const ConvexCachingPolicy& policy,
                                     const Metrics& metrics,
                                     const std::vector<CostFunctionPtr>& costs,
                                     std::size_t capacity) {
  obs::CostTracker tracker(
      static_cast<std::uint32_t>(metrics.miss_vector().size()));
  tracker.add_misses(metrics.miss_vector());
  obs::DualAccount account;
  account.id = 0;
  account.valid = policy.dual_certificate_valid();
  account.mass = policy.dual_mass_by_tenant();
  account.evictions = policy.tenant_evictions();
  tracker.add_account(std::move(account));
  return tracker.snapshot(costs, capacity);
}

struct Row {
  std::string shape;
  double beta = 0.0;
  std::size_t k = 0;
  obs::CostSnapshot snap;
  double cor12 = 0.0;
  bool holds = true;
};

int run(int argc, const char* const* argv) {
  Cli cli(
      "E12: live competitive-ratio telemetry vs the Corollary 1.2 bound "
      "beta^beta*k^beta — the exported gauge must sit under the proved "
      "cap on adversarial and Zipf traces (exit 1 on violation)");
  cli.flag("betas", "1,2,3", "monomial exponents to sweep")
      .flag("tenants", "8", "tenants (adversary uses k = tenants-1)")
      .flag("ks", "4,8", "cache sizes for the zipf shape")
      .flag("pages-per-tenant", "64", "zipf page universe per tenant")
      .flag("skew", "0.9", "zipf skew")
      .flag("length", "40000", "requests per trace")
      .flag("seed", "1", "RNG seed")
      .flag("json", "", "optional JSON output path");
  if (!cli.parse(argc, argv)) return 0;

  const auto betas = cli.get_double_list("betas");
  const auto ks = cli.get_u64_list("ks");
  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const std::size_t length = cli.get_u64("length");

  std::vector<Row> rows;
  for (const double beta : betas) {
    // Adversarial shape: n single-page tenants, k = n−1.
    {
      auto costs = monomials(tenants, beta);
      ConvexCachingPolicy policy;
      const AdversaryRun adv =
          run_adversary(tenants, length, policy, costs);
      Row row;
      row.shape = "adversary";
      row.beta = beta;
      row.k = tenants - 1;
      row.snap = telemetry_snapshot(policy, adv.alg_metrics, costs, row.k);
      row.cor12 = corollary12_factor(beta, row.k);
      rows.push_back(std::move(row));
    }
    // Zipf shape across cache sizes.
    for (const std::uint64_t k : ks) {
      auto costs = monomials(tenants, beta);
      std::vector<TenantWorkload> workloads;
      workloads.reserve(tenants);
      for (std::uint32_t t = 0; t < tenants; ++t)
        workloads.push_back(
            {std::make_unique<ZipfPages>(cli.get_u64("pages-per-tenant"),
                                         cli.get_double("skew")),
             1.0});
      Rng rng(cli.get_u64("seed") + static_cast<std::uint64_t>(beta) * 1000 +
              k);
      const Trace trace = generate_trace(std::move(workloads), length, rng);
      ConvexCachingPolicy policy;
      const SimResult result =
          run_trace(trace, static_cast<std::size_t>(k), policy, &costs);
      Row row;
      row.shape = "zipf";
      row.beta = beta;
      row.k = static_cast<std::size_t>(k);
      row.snap =
          telemetry_snapshot(policy, result.metrics, costs, row.k);
      row.cor12 = corollary12_factor(beta, row.k);
      rows.push_back(std::move(row));
    }
  }

  bool all_hold = true;
  Table table({"shape", "beta", "k", "alg_cost", "dual_LB", "ratio",
               "Cor1.2 b^b*k^b", "holds"});
  for (Row& row : rows) {
    // An uncertified or zero ratio is "no claim", not a pass — but every
    // row here runs the default analytic policy, so certification failing
    // would itself be a bug worth failing on. The bound check carries an
    // additive warm-up allowance: the dual bank is blind to each tenant's
    // compulsory first miss (OPT pays it too), so on traces that saturate
    // the cap ALG may exceed bound·LB by at most bound·Σ_i f_i(1) — but
    // only tenants that actually *missed* earned their f_i(1) term. A
    // flat Σ over all tenants would hand a tenant that never missed a
    // slack budget another tenant's certified-ratio violation could hide
    // under.
    double warmup = 0.0;
    for (std::size_t t = 0; t < tenants; ++t)
      if (t < row.snap.tenant_cost.size() && row.snap.tenant_cost[t] > 0.0)
        warmup += monomials(1, row.beta)[0]->value(1.0);
    row.holds = row.snap.certified &&
                (row.snap.competitive_ratio == 0.0 ||
                 row.snap.cost_total <=
                     row.snap.theorem_ratio_bound *
                         (row.snap.dual_lower_bound + warmup) *
                         (1.0 + 1e-9));
    all_hold = all_hold && row.holds;
    table.add(row.shape, row.beta, row.k,
              format_compact(row.snap.cost_total),
              format_compact(row.snap.dual_lower_bound),
              format_double(row.snap.competitive_ratio, 2),
              format_compact(row.cor12), row.holds ? "yes" : "NO");
  }
  std::cout << table.to_ascii() << "\n";

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\n  \"benchmark\": \"e12_ratio\",\n  \"schema_version\": 1,\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      os << "    {\"shape\": \"" << row.shape << "\", \"beta\": " << row.beta
         << ", \"k\": " << row.k << ", \"alg_cost\": " << row.snap.cost_total
         << ", \"dual_lower_bound\": " << row.snap.dual_lower_bound
         << ", \"competitive_ratio\": " << row.snap.competitive_ratio
         << ", \"theorem_ratio_bound\": " << row.snap.theorem_ratio_bound
         << ", \"corollary12\": " << row.cor12 << ", \"certified\": "
         << (row.snap.certified ? "true" : "false") << ", \"holds\": "
         << (row.holds ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::ofstream out(json_path);
    if (!out) throw std::runtime_error("cannot write " + json_path);
    out << os.str();
    std::cout << "wrote " << json_path << "\n";
  }

  if (!all_hold) {
    std::cerr << "e12_ratio: BOUND VIOLATION — a certified measured ratio "
                 "exceeds the Corollary 1.2 cap\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "e12_ratio: " << e.what() << "\n";
    return 1;
  }
}
