/// \file e3_lowerbound.cpp
/// \brief Experiment E3 — the Theorem 1.4 lower bound, executed.
///
/// §4's construction: n single-page tenants, cache k = n−1, an adaptive
/// adversary that always requests the one missing page. Every deterministic
/// online algorithm misses on every request; the offline batch-balancing
/// scheme pays only ≈ n·(4T/n²)^β. The bench sweeps n and β, runs the
/// adversary against several online policies, and prints the realized
/// online/offline gap next to the theorem's (n/4)^β prediction. Shape:
/// the gap grows polynomially in n with exponent β, for every policy.

#include <iostream>

#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/adversary.hpp"
#include "exp/policy_factory.hpp"
#include "offline/batch_balance.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace ccc {
namespace {

int run(int argc, const char* const* argv) {
  Cli cli("E3: Theorem 1.4 lower-bound instance — adaptive adversary vs "
          "offline batch balancing");
  cli.flag("ns", "7,9,11,13", "tenant counts (cache size is n-1)")
      .flag("betas", "1,2,3", "monomial exponents")
      .flag("length", "4000", "adversary requests per run")
      .flag("policies", "lru,convex,marking", "online policies to defeat")
      .flag("csv", "", "optional CSV output path");
  if (!cli.parse(argc, argv)) return 0;

  const auto ns = cli.get_u64_list("ns");
  const auto betas = cli.get_double_list("betas");
  const std::size_t length = cli.get_u64("length");

  Table table({"policy", "n", "beta", "online cost", "offline cost",
               "measured gap", "Thm1.4 predicts (n/4)^b"});

  for (const auto& name : split(cli.get("policies"), ',')) {
    for (const std::uint64_t n64 : ns) {
      const auto n = static_cast<std::uint32_t>(n64);
      for (const double beta : betas) {
        std::vector<CostFunctionPtr> costs;
        for (std::uint32_t i = 0; i < n; ++i)
          costs.push_back(std::make_unique<MonomialCost>(beta));
        const auto policy = make_policy(name);
        const AdversaryRun adv = run_adversary(n, length, *policy, costs);

        BatchBalancePolicy offline((n - 1) / 2);
        const SimResult off =
            run_trace(adv.trace, n - 1, offline, &costs);
        const double off_cost =
            total_cost(off.metrics.miss_vector(), costs);
        table.add(name, n64, beta, adv.alg_cost, off_cost,
                  off_cost > 0.0 ? adv.alg_cost / off_cost : 0.0,
                  theorem14_lower_factor(n, beta));
      }
    }
  }

  print_table(std::cout,
              "E3 — lower-bound instance (Theorem 1.4, k = n-1)", table);
  std::cout << "Reading: every online policy suffers a miss per request on\n"
               "the adaptive sequence; the measured gap exceeds the (n/4)^b\n"
               "prediction and grows with both n and beta.\n";
  if (!cli.get("csv").empty()) table.write_csv(cli.get("csv"));
  return 0;
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
