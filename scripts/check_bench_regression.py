#!/usr/bin/env python3
"""CI throughput regression gate for the e6 benchmark JSON.

Compares the requests_per_second of each (policy, cost, tenants) cell in
one or more fresh BENCH_*.json files against the committed baseline and
fails when any cell drops by more than the tolerance (default 25%, see
bench/baselines/README.md for why the bar is that wide on shared runners).
The gate is one-sided — improvements never fail — but a cell running at
more than 2x its committed number is flagged as a stale baseline (console
warning + a dedicated step-summary section, still exit 0): an undersized
baseline silently widens the band a later regression can hide in.

`--current` may be repeated: the bench-smoke job measures the
eviction-pressure cells and the hit-path serving cells in separate
e6_throughput invocations (they use different workload shapes), and the
gate compares their union against the single committed baseline. A cell
key that appears in more than one current file is a hard input error —
the union would silently prefer one measurement over the other.

Also sanity-checks the perf plumbing the ratios are built on: a cell whose
wall_seconds is missing or non-positive fails the gate outright (a zero
denominator means a dropped counter field upstream, not a fast run), a
baseline cell missing from every current file is a failure (a silently
dropped cell is how a gate rots), and a non-positive baseline rps is a
hard input error rather than an automatic pass (the old `inf` ratio waved
through any cell with a corrupt baseline).

When $GITHUB_STEP_SUMMARY is set (always, inside a GitHub Actions step),
the same comparison is appended there as a markdown table so the verdict
is readable from the run's summary page without digging through logs.
Rows that carry latency quantiles (BENCH_server: end-to-end p50/p99/p999
plus per-stage attribution from in-process runs) get a second,
informational table — p99 moves with runner noise far more than
throughput does, so latency is reported next to the verdicts but never
thresholded.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_throughput.baseline.json \
                            --current BENCH_throughput.json \
                            [--current BENCH_hitpath.json ...] \
                            [--tolerance 0.25] \
                            [--current-obs BENCH_throughput.obs.json]

`--current-obs` additionally validates an observability snapshot emitted by
`e6_throughput --obs`: it must parse as JSON and contain a non-empty
`ccc_step_latency_ns` histogram.

Exit status: 0 = within tolerance, 1 = regression or missing cells,
2 = bad invocation / unreadable input / corrupt baseline or snapshot.
"""

import argparse
import json
import os
import sys


# A current cell at more than this multiple of its committed baseline
# marks the baseline stale: reported (step summary + stderr), never fatal.
STALE_BASELINE_RATIO = 2.0


def row_key(row):
    return (row["policy"], row["cost"], row["tenants"])


def comparable_rows(doc):
    """Measured, unaudited cells only — audit twins and skips aren't perf."""
    rows = {}
    for row in doc.get("results", []):
        if row.get("skipped") or row.get("audit"):
            continue
        if "requests_per_second" not in row:
            continue
        rows[row_key(row)] = row
    return rows


def check_obs_snapshot(path):
    """Validates an e6 --obs JSON snapshot; returns an error string or None."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return f"cannot read obs snapshot: {e}"
    families = {m.get("name"): m for m in doc.get("metrics", [])}
    latency = families.get("ccc_step_latency_ns")
    if latency is None:
        return "obs snapshot has no ccc_step_latency_ns histogram"
    samples = latency.get("samples", [])
    if not samples or all(s.get("count", 0) <= 0 for s in samples):
        return "ccc_step_latency_ns histogram is empty (observer not attached?)"
    return None


def latency_summary(baseline, current):
    """Markdown section for per-cell latency quantiles — informational.

    Never contributes to the gate verdict: stage mix shifts with batch
    shape and p99 with runner load, so a threshold here would only flake.
    """
    keys = [k for k in sorted(current) if "p50_us" in current[k]]
    if not keys:
        return []
    lines = [
        "",
        "### Request latency (informational, not gated)",
        "",
        "| cell | p50 µs | p99 µs | p999 µs | baseline p99 µs |",
        "| --- | ---: | ---: | ---: | ---: |",
    ]
    for key in keys:
        label = f"{key[0]}/{key[1]}/n={key[2]}"
        row = current[key]
        base = baseline.get(key, {})
        base_p99 = base.get("p99_us")
        base_cell = f"{base_p99:.1f}" if base_p99 is not None else "—"
        lines.append(
            f"| `{label}` | {row['p50_us']:.1f} | {row['p99_us']:.1f} "
            f"| {row['p999_us']:.1f} | {base_cell} |")
        base_stages = base.get("stage_latency_us", {})
        for stage, q in sorted(row.get("stage_latency_us", {}).items()):
            stage_p99 = base_stages.get(stage, {}).get("p99_us")
            stage_cell = f"{stage_p99:.1f}" if stage_p99 is not None else "—"
            lines.append(
                f"| `{label}` · stage `{stage}` | {q['p50_us']:.1f} "
                f"| {q['p99_us']:.1f} | {q['p999_us']:.1f} "
                f"| {stage_cell} |")
    return lines


def write_step_summary(lines):
    """Appends markdown lines to the GitHub Actions step summary, if any."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        # The summary is a nicety; never fail the gate over it.
        print(f"check_bench_regression: cannot write step summary: {e}",
              file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument(
        "--current",
        required=True,
        action="append",
        help="current-run JSON; repeat for multi-invocation sweeps",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional throughput drop (default 0.25)",
    )
    parser.add_argument(
        "--current-obs",
        help="optional e6 --obs JSON snapshot to sanity-check",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = comparable_rows(json.load(f))
        current = {}
        for path in args.current:
            with open(path) as f:
                rows = comparable_rows(json.load(f))
            overlap = sorted(set(rows) & set(current))
            if overlap:
                print(f"check_bench_regression: cell "
                      f"{overlap[0][0]}/{overlap[0][1]}/n={overlap[0][2]} "
                      f"appears in more than one --current file ({path}) — "
                      f"ambiguous union", file=sys.stderr)
                return 2
            current.update(rows)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read input: {e}", file=sys.stderr)
        return 2

    if not baseline:
        print("check_bench_regression: baseline has no comparable rows",
              file=sys.stderr)
        return 2

    current_all = dict(current)  # the gate loop pops; latency table needs all
    failures = []
    stale = []
    summary = [
        "### Throughput regression gate",
        "",
        "| cell | baseline req/s | current req/s | ratio | verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    print(f"{'cell':<44} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key, base_row in sorted(baseline.items()):
        label = f"{key[0]}/{key[1]}/n={key[2]}"
        base_rps = base_row["requests_per_second"]
        cur_row = current.pop(key, None)
        if cur_row is None:
            failures.append(f"{label}: cell missing from current run")
            print(f"{label:<44} {base_rps:>12.0f} {'MISSING':>12} {'-':>7}")
            summary.append(
                f"| `{label}` | {base_rps:,.0f} | — | — | ❌ missing |")
            continue
        if base_rps <= 0:
            print(f"check_bench_regression: baseline rps for {label} is "
                  f"{base_rps} — corrupt baseline file", file=sys.stderr)
            return 2
        cur_rps = cur_row["requests_per_second"]
        if cur_row.get("wall_seconds", 0) <= 0:
            failures.append(
                f"{label}: current wall_seconds is non-positive — a perf "
                f"counter was dropped somewhere upstream")
            print(f"{label:<44} {base_rps:>12.0f} {'BAD WALL':>12} {'-':>7}")
            summary.append(
                f"| `{label}` | {base_rps:,.0f} | — | — | ❌ bad wall |")
            continue
        ratio = cur_rps / base_rps
        flag = ""
        verdict = "✅ pass"
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{label}: {cur_rps:.0f} req/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {base_rps:.0f}"
            )
            flag = "  << REGRESSION"
            verdict = f"❌ −{(1.0 - ratio) * 100:.1f}%"
        elif ratio > STALE_BASELINE_RATIO:
            # The gate is one-sided by design (improvements never fail),
            # but a cell running at >2x its committed number means the
            # baseline no longer describes this runner/build and the
            # effective tolerance band has silently widened. Surface it.
            stale.append((label, base_rps, cur_rps, ratio))
            flag = "  << STALE BASELINE"
            verdict = f"⚠️ +{(ratio - 1.0) * 100:.0f}% (stale baseline)"
        print(f"{label:<44} {base_rps:>12.0f} {cur_rps:>12.0f} "
              f"{ratio:>7.2f}{flag}")
        summary.append(f"| `{label}` | {base_rps:,.0f} | {cur_rps:,.0f} "
                       f"| {ratio:.2f} | {verdict} |")

    # Cells measured but absent from the baseline are not gated; surface
    # them so a forgotten baseline refresh is visible, not silent.
    for key in sorted(current):
        label = f"{key[0]}/{key[1]}/n={key[2]}"
        cur_rps = current[key]["requests_per_second"]
        print(f"{label:<44} {'(no baseline)':>12} {cur_rps:>12.0f} {'-':>7}")
        summary.append(
            f"| `{label}` | — | {cur_rps:,.0f} | — | ⚠️ not in baseline |")

    if stale:
        summary.extend([
            "",
            "### ⚠️ Stale baseline cells (informational — gate still "
            "one-sided)",
            "",
            "These cells ran at more than "
            f"{STALE_BASELINE_RATIO:.0f}x their committed baseline. The "
            "gate only catches *drops*, so an undersized baseline quietly "
            "widens the band a future regression can hide in — refresh "
            "`bench/baselines/` from a clean run of this runner class.",
            "",
            "| cell | baseline req/s | current req/s | ratio |",
            "| --- | ---: | ---: | ---: |",
        ])
        for label, base_rps, cur_rps, ratio in stale:
            summary.append(f"| `{label}` | {base_rps:,.0f} "
                           f"| {cur_rps:,.0f} | {ratio:.2f} |")
        print(f"\nwarning: {len(stale)} cell(s) ran at >"
              f"{STALE_BASELINE_RATIO:.0f}x their committed baseline — "
              f"refresh bench/baselines/ (gate unaffected)",
              file=sys.stderr)

    summary.extend(latency_summary(baseline, current_all))

    if args.current_obs:
        error = check_obs_snapshot(args.current_obs)
        if error is not None:
            print(f"check_bench_regression: {error}", file=sys.stderr)
            return 2
        print(f"obs snapshot {args.current_obs} OK")

    summary.append("")
    if failures:
        summary.append(f"**FAILED** (tolerance {args.tolerance:.0%}): "
                       f"{len(failures)} cell(s)")
        write_step_summary(summary)
        print(f"\nthroughput regression gate FAILED "
              f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    summary.append(f"**Passed** (tolerance {args.tolerance:.0%})")
    write_step_summary(summary)
    print(f"\nthroughput regression gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
