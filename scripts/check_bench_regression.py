#!/usr/bin/env python3
"""CI throughput regression gate for the e6 benchmark JSON.

Compares the requests_per_second of each (policy, cost, tenants) cell in a
fresh BENCH_throughput.json against the committed baseline and fails when
any cell drops by more than the tolerance (default 25%, see
bench/baselines/README.md for why the bar is that wide on shared runners).

Also sanity-checks the perf plumbing the ratios are built on: a cell whose
wall_seconds is missing or non-positive fails the gate outright (a zero
denominator means a dropped counter field upstream, not a fast run), and a
non-positive baseline rps is a hard input error rather than an automatic
pass (the old `inf` ratio waved through any cell with a corrupt baseline).

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_throughput.baseline.json \
                            --current BENCH_throughput.json [--tolerance 0.25] \
                            [--current-obs BENCH_throughput.obs.json]

`--current-obs` additionally validates an observability snapshot emitted by
`e6_throughput --obs`: it must parse as JSON and contain a non-empty
`ccc_step_latency_ns` histogram.

Exit status: 0 = within tolerance, 1 = regression or missing cells,
2 = bad invocation / unreadable input / corrupt baseline or snapshot.
"""

import argparse
import json
import sys


def row_key(row):
    return (row["policy"], row["cost"], row["tenants"])


def comparable_rows(doc):
    """Measured, unaudited cells only — audit twins and skips aren't perf."""
    rows = {}
    for row in doc.get("results", []):
        if row.get("skipped") or row.get("audit"):
            continue
        if "requests_per_second" not in row:
            continue
        rows[row_key(row)] = row
    return rows


def check_obs_snapshot(path):
    """Validates an e6 --obs JSON snapshot; returns an error string or None."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return f"cannot read obs snapshot: {e}"
    families = {m.get("name"): m for m in doc.get("metrics", [])}
    latency = families.get("ccc_step_latency_ns")
    if latency is None:
        return "obs snapshot has no ccc_step_latency_ns histogram"
    samples = latency.get("samples", [])
    if not samples or all(s.get("count", 0) <= 0 for s in samples):
        return "ccc_step_latency_ns histogram is empty (observer not attached?)"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional throughput drop (default 0.25)",
    )
    parser.add_argument(
        "--current-obs",
        help="optional e6 --obs JSON snapshot to sanity-check",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = comparable_rows(json.load(f))
        with open(args.current) as f:
            current = comparable_rows(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read input: {e}", file=sys.stderr)
        return 2

    if not baseline:
        print("check_bench_regression: baseline has no comparable rows",
              file=sys.stderr)
        return 2

    failures = []
    print(f"{'cell':<44} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key, base_row in sorted(baseline.items()):
        label = f"{key[0]}/{key[1]}/n={key[2]}"
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{label}: cell missing from current run")
            print(f"{label:<44} {base_row['requests_per_second']:>12.0f} "
                  f"{'MISSING':>12} {'-':>7}")
            continue
        base_rps = base_row["requests_per_second"]
        cur_rps = cur_row["requests_per_second"]
        if base_rps <= 0:
            print(f"check_bench_regression: baseline rps for {label} is "
                  f"{base_rps} — corrupt baseline file", file=sys.stderr)
            return 2
        if cur_row.get("wall_seconds", 0) <= 0:
            failures.append(
                f"{label}: current wall_seconds is non-positive — a perf "
                f"counter was dropped somewhere upstream")
            print(f"{label:<44} {base_rps:>12.0f} {'BAD WALL':>12} {'-':>7}")
            continue
        ratio = cur_rps / base_rps
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{label}: {cur_rps:.0f} req/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {base_rps:.0f}"
            )
            flag = "  << REGRESSION"
        print(f"{label:<44} {base_rps:>12.0f} {cur_rps:>12.0f} "
              f"{ratio:>7.2f}{flag}")

    if args.current_obs:
        error = check_obs_snapshot(args.current_obs)
        if error is not None:
            print(f"check_bench_regression: {error}", file=sys.stderr)
            return 2
        print(f"obs snapshot {args.current_obs} OK")

    if failures:
        print(f"\nthroughput regression gate FAILED "
              f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nthroughput regression gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
