#!/usr/bin/env python3
"""CI throughput regression gate for the e6 benchmark JSON.

Compares the requests_per_second of each (policy, cost, tenants) cell in a
fresh BENCH_throughput.json against the committed baseline and fails when
any cell drops by more than the tolerance (default 25%, see
bench/baselines/README.md for why the bar is that wide on shared runners).

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_throughput.baseline.json \
                            --current BENCH_throughput.json [--tolerance 0.25]

Exit status: 0 = within tolerance, 1 = regression or missing cells,
2 = bad invocation / unreadable input.
"""

import argparse
import json
import sys


def row_key(row):
    return (row["policy"], row["cost"], row["tenants"])


def comparable_rows(doc):
    """Measured, unaudited cells only — audit twins and skips aren't perf."""
    rows = {}
    for row in doc.get("results", []):
        if row.get("skipped") or row.get("audit"):
            continue
        if "requests_per_second" not in row:
            continue
        rows[row_key(row)] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="maximum allowed fractional throughput drop (default 0.25)",
    )
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = comparable_rows(json.load(f))
        with open(args.current) as f:
            current = comparable_rows(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot read input: {e}", file=sys.stderr)
        return 2

    if not baseline:
        print("check_bench_regression: baseline has no comparable rows",
              file=sys.stderr)
        return 2

    failures = []
    print(f"{'cell':<44} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for key, base_row in sorted(baseline.items()):
        label = f"{key[0]}/{key[1]}/n={key[2]}"
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{label}: cell missing from current run")
            print(f"{label:<44} {base_row['requests_per_second']:>12.0f} "
                  f"{'MISSING':>12} {'-':>7}")
            continue
        base_rps = base_row["requests_per_second"]
        cur_rps = cur_row["requests_per_second"]
        ratio = cur_rps / base_rps if base_rps > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{label}: {cur_rps:.0f} req/s is "
                f"{(1.0 - ratio) * 100:.1f}% below baseline {base_rps:.0f}"
            )
            flag = "  << REGRESSION"
        print(f"{label:<44} {base_rps:>12.0f} {cur_rps:>12.0f} "
              f"{ratio:>7.2f}{flag}")

    if failures:
        print(f"\nthroughput regression gate FAILED "
              f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nthroughput regression gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
