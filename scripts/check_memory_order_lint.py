#!/usr/bin/env python3
"""Memory-order justification lint.

Every *explicit* std::memory_order argument in the concurrency-bearing
directories (src/shard, src/analysis) must carry an adjacent justification
comment: either on the same line, or within the three lines above the use.
A bare `memory_order_relaxed` with no stated reason is exactly how seqlock
protocols rot — the next editor cannot tell a load that is relaxed because
the acquire fence covers it from one that is relaxed by accident.

A "justification" is deliberately cheap to satisfy: any comment text near
the use counts. The lint enforces that the reasoning is *written down*,
not that it is correct — the model checker (tests/test_seqlock_model.cpp)
handles correctness.

Usage:
  scripts/check_memory_order_lint.py [--root REPO_ROOT]
  scripts/check_memory_order_lint.py --self-test

Exits 1 listing each offending file:line when an unjustified use is found.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src/shard", "src/analysis", "src/obs")
SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

MEMORY_ORDER_RE = re.compile(r"\bmemory_order(?:_\w+|::\w+)")
COMMENT_RE = re.compile(r"//|/\*")
# Lines above a use that merely continue the same expression should not
# soak up the comment window.
JUSTIFICATION_WINDOW = 3


def line_has_comment(line: str) -> bool:
    return COMMENT_RE.search(line) is not None


def find_unjustified(text: str) -> list[int]:
    """Returns 1-based line numbers of unjustified memory_order uses."""
    lines = text.splitlines()
    offenders = []
    in_block_comment = False
    commentish = []  # per line: does it contain / continue a comment?
    for line in lines:
        has = in_block_comment or line_has_comment(line)
        # Track /* ... */ spans (good enough for this codebase's style).
        opens = line.count("/*")
        closes = line.count("*/")
        if opens > closes:
            in_block_comment = True
        elif closes >= opens and closes > 0:
            in_block_comment = False
        commentish.append(has)

    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]
        if not MEMORY_ORDER_RE.search(code):
            continue  # use only inside a comment (or absent) — fine
        if line_has_comment(line):
            continue  # same-line justification
        window = commentish[max(0, i - JUSTIFICATION_WINDOW) : i]
        if any(window):
            continue
        offenders.append(i + 1)
    return offenders


def scan(root: pathlib.Path) -> int:
    failed = False
    for rel in SCAN_DIRS:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            offenders = find_unjustified(path.read_text(encoding="utf-8"))
            for lineno in offenders:
                failed = True
                print(
                    f"{path.relative_to(root)}:{lineno}: explicit "
                    "memory_order without an adjacent justification comment "
                    f"(same line or within {JUSTIFICATION_WINDOW} lines above)"
                )
    if failed:
        print(
            "\nmemory-order lint FAILED — say *why* the ordering is "
            "sufficient next to each use.",
            file=sys.stderr,
        )
        return 1
    print("memory-order lint passed")
    return 0


def self_test() -> int:
    cases = [
        # (source, expected offending line numbers)
        ("x.load(std::memory_order_acquire);", [1]),
        ("x.load(std::memory_order_acquire);  // pairs with release", []),
        ("// the fence below covers this\nx.load(std::memory_order_relaxed);", []),
        (
            "// justification\n\n\n\nx.load(std::memory_order_relaxed);",
            [5],  # comment is outside the 3-line window
        ),
        ("/* block\n   comment */\nx.store(1, std::memory_order_release);", []),
        ("int y = 0;\nx.store(1, std::memory_order_release);", [2]),
        ("// mentions memory_order_relaxed only in a comment", []),
        (
            "y.load(std::memory_order_acquire);  // why\n"
            "z.load(std::memory_order_acquire);",
            [],  # previous justified line sits inside the window
        ),
        ("x.load(std::memory_order::acquire);", [1]),  # C++20 spelling
    ]
    ok = True
    for i, (src, expected) in enumerate(cases):
        got = find_unjustified(src)
        if got != expected:
            ok = False
            print(f"self-test case {i} FAILED: expected {expected}, got {got}")
    if ok:
        print(f"self-test passed ({len(cases)} cases)")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the script's grandparent)",
    )
    parser.add_argument(
        "--self-test", action="store_true", help="run the lint's own tests"
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return scan(args.root)


if __name__ == "__main__":
    sys.exit(main())
