#pragma once
/// \file parallel_replay.hpp
/// \brief Multi-threaded trace replay against a ShardedCache.
///
/// The trace is partitioned *by shard* — shard s's subsequence, in trace
/// order — and the per-shard streams are executed across a worker pool in
/// chunks of `batch_size` via access_batch. Because each shard's requests
/// are replayed in trace order by exactly one in-flight task at a time,
/// per-shard victim sequences (and therefore all aggregated counts) are
/// identical for every thread count: the replay is a deterministic
/// scaling experiment, not a race. Wall-clock is measured around the
/// parallel section only; cross-shard request *interleaving* is the one
/// thing that varies with scheduling, which is exactly the freedom the
/// sharded decomposition grants (shards share no state).

#include <cstddef>
#include <vector>

#include "shard/sharded_cache.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace ccc {

struct ParallelReplayOptions {
  std::size_t threads = 0;       ///< worker threads; 0 = hardware concurrency
  std::size_t batch_size = 1024; ///< requests per access_batch call
};

struct ParallelReplayResult {
  Metrics metrics{1};            ///< aggregated across shards
  /// Aggregated counters. `perf.wall_seconds` is the *elapsed* time of the
  /// parallel section (what throughput is computed from); the summed
  /// per-shard processing time that ShardedCache::aggregated_perf reports
  /// is preserved in `shard_seconds` below.
  PerfCounters perf;
  /// Σ over shards of in-lock processing time. shard_seconds / (threads ×
  /// perf.wall_seconds) is the parallel efficiency of the replay.
  double shard_seconds = 0.0;
  double miss_cost = 0.0;        ///< Σ_i f_i(misses_i); 0 without cost functions
  std::vector<std::uint64_t> shard_requests;  ///< trace share per shard
};

class ParallelReplayer {
 public:
  explicit ParallelReplayer(ParallelReplayOptions options = {});

  /// Replays `trace` against `cache` and returns the aggregated books.
  /// The cache is *not* reset — chain calls to replay phased workloads.
  /// Throws std::invalid_argument if the trace's tenant count exceeds the
  /// cache's.
  ParallelReplayResult replay(const Trace& trace, ShardedCache& cache);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return pool_.thread_count();
  }

 private:
  ParallelReplayOptions options_;
  ThreadPool pool_;
};

}  // namespace ccc
