#include "shard/parallel_replay.hpp"

#include <algorithm>
#include <chrono>
#include <span>

#include "util/check.hpp"

namespace ccc {

ParallelReplayer::ParallelReplayer(ParallelReplayOptions options)
    : options_(options), pool_(options.threads) {
  CCC_REQUIRE(options_.batch_size > 0, "batch size must be positive");
}

ParallelReplayResult ParallelReplayer::replay(const Trace& trace,
                                              ShardedCache& cache) {
  CCC_REQUIRE(trace.num_tenants() <= cache.num_tenants(),
              "trace has more tenants than the sharded cache");

  // Partition the trace by shard, preserving order within each shard.
  const std::size_t num_shards = cache.num_shards();
  std::vector<std::vector<Request>> streams(num_shards);
  for (const Request& request : trace)
    streams[cache.shard_of(request.page)].push_back(request);

  const std::size_t batch = options_.batch_size;
  const auto start = std::chrono::steady_clock::now();
  pool_.parallel_for(num_shards, [&](std::size_t s) {
    const std::vector<Request>& stream = streams[s];
    for (std::size_t begin = 0; begin < stream.size(); begin += batch) {
      const std::size_t count = std::min(batch, stream.size() - begin);
      cache.access_batch(std::span<const Request>(&stream[begin], count));
    }
  });
  const auto stop = std::chrono::steady_clock::now();

  ParallelReplayResult result;
  result.metrics = cache.aggregated_metrics();
  result.perf = cache.aggregated_perf();
  result.shard_seconds = result.perf.wall_seconds;
  result.perf.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  result.shard_requests.reserve(num_shards);
  for (const std::vector<Request>& stream : streams)
    result.shard_requests.push_back(stream.size());
  if (cache.has_costs()) result.miss_cost = cache.global_miss_cost();
  return result;
}

}  // namespace ccc
