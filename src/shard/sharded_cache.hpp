#pragma once
/// \file sharded_cache.hpp
/// \brief Hash-partitioned concurrent frontend over S independent policy
///        instances — the standard systems move for serving heavy
///        concurrent traffic from one logical cache.
///
/// Pages are partitioned by a mixed hash of their id; shard s owns the
/// pages with `shard_of(page) == s` and runs its own ReplacementPolicy
/// (ALG-DISCRETE by default, via make_convex_factory) over its own
/// CacheState, budgets and eviction index, behind a per-shard mutex. The
/// decomposition is sound for the paper's algorithm because ALG-DISCRETE's
/// entire state — budgets B(p), per-tenant miss counts m(i), the global
/// debit offset and the per-tenant bumps — is a function of the requests
/// the instance itself served; restricted to the page subset P ∩ shard_s
/// each shard is simply a smaller instance of the §1.2 problem (cf. the
/// per-pool decomposition in src/multipool, and the Landlord credit
/// locality that makes per-shard budget state independent).
///
/// What partitioning costs: each shard pays Σ_i f_i(m_{i,s}) against *its*
/// offline optimum with capacity k_s, so the summed guarantee is
/// α·Σ_s OPT_s(k_s) — and Σ_s OPT_s(k_s) can exceed the unsharded OPT(k)
/// because OPT can no longer move capacity between page subsets.
/// Experiment E10 measures exactly this degradation next to the throughput
/// the parallelism buys.
///
/// Concurrency contract: any number of threads may call access() /
/// access_batch() concurrently. Requests hitting different shards proceed
/// in parallel; requests hitting the same shard serialize on that shard's
/// mutex, in the caller-observed arrival order of lock acquisition.
/// access_batch() groups its requests by shard and takes each shard lock
/// once per group, amortizing lock traffic; within a batch, per-shard
/// request order is preserved, so single-threaded replays are deterministic
/// for any batch size. Aggregation (metrics, costs, stats) locks shards one
/// at a time — locks are never nested, so the layer cannot deadlock.
///
/// With `HitPath::kSeqlock` the common case — a hit on a page whose budget
/// is already current — bypasses the mutex entirely: readers probe a flat
/// per-shard residency table validated by a per-shard sequence counter and
/// an eviction epoch, and fall back to the locked path on a torn read, a
/// miss, or a stale budget stamp. Sound for ALG-DISCRETE only (enforced at
/// construction) because such a "fresh" hit is a pure state no-op there;
/// DESIGN.md §10 gives the full argument and the memory-order recipe.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "shard/seqlock_table.hpp"
#include "sim/simulator.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ccc {

class ConvexCachingPolicy;

/// Splits `total` capacity into `shards` parts differing by at most one
/// page (the first `total % shards` shards get the extra page). Every
/// shard receives at least one page; throws if `total < shards`.
[[nodiscard]] std::vector<std::size_t> even_split(std::size_t total,
                                                 std::size_t shards);

/// Miss-rate-driven split: capacity proportional to each shard's share of
/// the observed misses (+1 smoothing so an idle shard keeps a foothold),
/// floored at `min_per_shard`, remainder to the heaviest missers. The
/// default rebalancer hook feeds recent per-shard miss counts through this.
[[nodiscard]] std::vector<std::size_t> miss_rate_split(
    std::size_t total, const std::vector<std::uint64_t>& misses,
    std::size_t min_per_shard);

/// Pure shard router: the shard index a ShardedCache built with
/// `num_shards` shards assigns `page` to. Exposed as a free function so
/// external trace partitioners — the e11 loopback load generator assigns
/// each shard's subsequence to one connection to keep networked replays
/// deterministic (DESIGN.md §12) — can replicate the mapping exactly.
[[nodiscard]] std::size_t shard_of_page(PageId page,
                                        std::size_t num_shards) noexcept;

/// How hits reach their shard.
enum class HitPath {
  kLocked,   ///< every request takes the shard mutex (the safe default)
  kSeqlock,  ///< fresh hits go lock-free; misses/evictions take the mutex
};

struct ShardedCacheOptions {
  std::size_t capacity = 0;    ///< total pages summed across shards
  std::size_t num_shards = 1;
  std::uint32_t num_tenants = 0;
  std::uint64_t seed = 1;      ///< shard s seeds its policy with seed + s
  /// Capacity floor per shard enforced by the default rebalancer.
  std::size_t min_shard_capacity = 1;
  /// kSeqlock requires an ALG-DISCRETE policy (the default factory) with
  /// `window_length == 0` — the constructor rejects anything else, since
  /// the optimistic path is only sound when a fresh hit changes no policy
  /// state. Single-threaded replays produce bit-identical metrics, events
  /// and victim sequences on either path.
  HitPath hit_path = HitPath::kLocked;
  /// Optional observability hook, shared by *all* shards — it must be
  /// thread-safe (obs::SimObserver is: lock-free histograms, mutexed trace
  /// writer). Requires a `CCC_OBS=ON` build; the per-shard session
  /// constructors throw otherwise, so observation is never silently lost.
  StepObserver* step_observer = nullptr;
};

/// Raw per-shard ingredients of the online dual lower bound (DESIGN.md
/// §13): the cumulative y-mass Σ B(victim) split by victim owner and the
/// per-tenant eviction counts m(i,s) that cap the dual coefficients at
/// f'_i(m(i,s)). Each shard is its own (CP) instance with capacity k_s, so
/// the Fenchel correction must be applied per shard — obs::CostTracker
/// keeps these accounts separate instead of summing them element-wise.
struct ShardDualAccount {
  /// False unless the shard runs ALG-DISCRETE in the paper's whole-run
  /// configuration (see ConvexCachingPolicy::dual_certificate_valid).
  bool valid = false;
  std::vector<double> mass;                 ///< Σ B(victim) per tenant
  std::vector<std::uint64_t> evictions;     ///< m(i, s) per tenant
};

/// Per-shard observability snapshot (inputs to rebalancing decisions).
struct ShardStats {
  std::size_t capacity = 0;
  std::size_t resident = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t accesses = hits + misses;
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class ShardedCache {
 public:
  /// Computes a new capacity split from the current per-shard stats. Must
  /// return `num_shards()` positive entries summing to the total capacity
  /// (rebalance() validates and throws otherwise).
  using RebalanceHook =
      std::function<std::vector<std::size_t>(const std::vector<ShardStats>&)>;

  /// `factory` builds one independent policy per shard (nullptr selects
  /// ALG-DISCRETE via make_convex_factory). `costs`, when provided, must
  /// hold one function per tenant and outlive the cache.
  ShardedCache(ShardedCacheOptions options, PolicyFactory factory,
               const std::vector<CostFunctionPtr>* costs);

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Routes one request to its shard (locks it) and returns what happened.
  StepEvent access(const Request& request);

  /// Groups `batch` by shard, then processes each group under one lock
  /// acquisition. Thread-safe; per-shard request order within the batch is
  /// preserved.
  void access_batch(std::span<const Request> batch);

  /// As above, additionally appending one StepEvent per request to
  /// `events` *in batch order*: after the call, `events[old_size + i]` is
  /// the outcome of `batch[i]` regardless of how the requests were grouped
  /// across shards. (Events used to come back shard-grouped, which made it
  /// impossible for callers to match an event to its request.)
  void access_batch(std::span<const Request> batch,
                    std::vector<StepEvent>& events);

  [[nodiscard]] std::size_t shard_of(PageId page) const noexcept;
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return options_.num_tenants;
  }
  [[nodiscard]] std::size_t total_capacity() const noexcept {
    return options_.capacity;
  }

  /// Per-tenant metrics summed across shards — the global books. In
  /// particular miss_vector() feeds the paper objective Σ_i f_i(misses_i),
  /// which stays a *global* quantity even though each shard only tracked
  /// its own share.
  [[nodiscard]] Metrics aggregated_metrics() const;

  /// Index/work counters summed across shards via PerfCounters::merge —
  /// every field, including wall-clock. Each shard accumulates the time
  /// spent processing its requests under its own lock, so the aggregated
  /// `wall_seconds` is the **sum of per-shard processing time**: under a
  /// serial replay it equals the elapsed request-loop time; under a
  /// parallel replay it is the combined CPU-side shard time, an upper
  /// bound on the elapsed wall-clock (ParallelReplayer measures elapsed
  /// time around its parallel section and reports that separately).
  /// Either way `ns_per_request()` on the aggregate is meaningful — it is
  /// the average per-request processing cost inside the shard locks.
  [[nodiscard]] PerfCounters aggregated_perf() const;

  /// Σ_i f_i(Σ_s misses_{i,s}) under the constructor's cost functions;
  /// throws if none were provided.
  [[nodiscard]] double global_miss_cost() const;

  /// Whether the constructor received per-tenant cost functions.
  [[nodiscard]] bool has_costs() const noexcept { return costs_ != nullptr; }

  /// The constructor's per-tenant cost functions (nullptr when absent) —
  /// read by the obs snapshot helpers to price per-tenant misses.
  [[nodiscard]] const std::vector<CostFunctionPtr>* costs() const noexcept {
    return costs_;
  }

  [[nodiscard]] std::vector<ShardStats> shard_stats() const;
  [[nodiscard]] std::vector<std::size_t> capacities() const;

  /// One dual account per shard, read under each shard's mutex (locks are
  /// taken one at a time, like every other aggregation path). Accounts are
  /// `valid == false` when the shard's policy is not ALG-DISCRETE in the
  /// certificate-bearing configuration; obs::CostTracker then reports no
  /// lower bound rather than a wrong one.
  [[nodiscard]] std::vector<ShardDualAccount> dual_accounts() const;

  /// Replaces the rebalancer (nullptr restores the default miss-rate hook).
  void set_rebalance_hook(RebalanceHook hook);

  /// Recomputes the capacity split from current shard stats via the hook
  /// and applies it: growing shards just get headroom, shrinking shards
  /// drain immediately through their policy's eviction path (see
  /// SimulatorSession::resize). Data-race-free against concurrent access
  /// in both hit-path modes (each shard is resized under its mutex, and
  /// under kSeqlock the table rebuild sits inside an odd seq window so
  /// lock-free readers retry); note the split is computed from a
  /// moment-in-time stats snapshot, so concurrent traffic can make it
  /// mildly stale — harmless, the next rebalance catches up.
  void rebalance();

  /// Read-only view of one shard's session (tests / diagnostics; take care
  /// not to race a concurrent replay).
  [[nodiscard]] const SimulatorSession& shard_session(std::size_t shard) const;

 private:
  struct Shard {
    /// Policy and session state is mutated only under `mutex` — the
    /// pt_guarded_by annotations make the analysis reject any unlocked
    /// dereference (the pointers themselves are set once at construction
    /// and never reseated).
    std::unique_ptr<ReplacementPolicy> policy CCC_PT_GUARDED_BY(mutex);
    std::unique_ptr<SimulatorSession> session CCC_PT_GUARDED_BY(mutex);
    /// Time spent processing this shard's requests (timed per access()
    /// call / per batch group, so batched ingestion amortizes the clock
    /// reads). Summed by aggregated_perf().
    double wall_seconds CCC_GUARDED_BY(mutex) = 0.0;
    mutable util::Mutex mutex;

    // ---- seqlock hit path (allocated only under HitPath::kSeqlock) ----
    /// Lock-free residency mirror (protocol lives in seqlock_table.hpp):
    /// readers probe it with no lock; all writer-side members are called
    /// only while holding `mutex` (single writer). Sized once at ≥ 2x the
    /// *total* capacity so rebalancing never reallocates under a
    /// concurrent reader.
    SeqlockResidencyTable<StdAtomics> table;
    /// Downcast view of `policy` (kSeqlock requires ALG-DISCRETE, so the
    /// cast is checked once at construction). Read under `mutex` right
    /// after each locked step to learn which freshness signals the
    /// eviction raised — whether the shared offset moved and whether the
    /// victim tenant's budgets were re-based — so evict_and_insert can
    /// stale exactly the entries whose effective budgets changed.
    const ConvexCachingPolicy* convex CCC_PT_GUARDED_BY(mutex) = nullptr;
    /// Per-tenant hits served lock-free (folded into metrics/perf on
    /// aggregation; never written by the locked path).
    std::unique_ptr<std::atomic<std::uint64_t>[]> lockfree_hits;
  };

  /// Lock-free fast path: returns true iff `request` was a fresh hit and
  /// has been fully served (event filled in, hit tallied). Must NOT hold
  /// the shard mutex (the whole point; also keeps the analysis honest
  /// about which side of the protocol this is).
  bool try_seqlock_hit(Shard& shard, const Request& request,
                       StepEvent& event) const CCC_EXCLUDES(shard.mutex);
  /// Mirrors one locked step's outcome into the shard's residency table.
  /// Returns true iff the event was a hit whose stamp was already current
  /// — i.e. the optimistic path would have served it; process_group uses
  /// that as its resume signal.
  bool apply_event_seqlock(Shard& shard, const StepEvent& event)
      CCC_REQUIRES(shard.mutex);
  /// Processes one shard's slice of a batch in submission order. Under
  /// kSeqlock the slice is served as alternating runs: a lock-free run of
  /// fresh hits, then — at the first request needing the mutex — a locked
  /// run that ends once a streak of already-fresh hits shows the
  /// optimistic path is viable again. Locked runs use probe-ahead
  /// prefetching. `group == nullptr` means the slice is the whole batch
  /// (single-shard fast path).
  void process_group(Shard& shard, std::span<const Request> batch,
                     const std::vector<std::size_t>* group,
                     std::vector<StepEvent>* events, std::size_t base);

  ShardedCacheOptions options_;
  const std::vector<CostFunctionPtr>* costs_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  RebalanceHook rebalance_hook_;
};

}  // namespace ccc
