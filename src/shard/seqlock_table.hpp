#pragma once
/// \file seqlock_table.hpp
/// \brief The seqlock residency-table protocol, extracted from ShardedCache
///        and parameterized on an atomics policy so the *identical* protocol
///        code can run (a) in production over `std::atomic` and (b) inside
///        the exhaustive interleaving checker (src/analysis/interleave) over
///        checked atomics that model acquire/release/relaxed visibility.
///
/// The protocol skeleton is Boehm's seqlock recipe (DESIGN.md §10): an
/// open-addressing mirror of shard residency in atomic `(key, stamp)`
/// arrays and a `seq` word whose odd values mark structural writes in
/// flight. Freshness is **per-tenant**: a page's stamp records the sum
/// `epoch + tenant_epoch[owner]` at its last budget refresh, where
///
///  - `epoch` (global) advances only when an eviction actually moved the
///    shared survivor-debit `offset_` (victim budget ≠ 0) or on a rebuild —
///    the only events that change the re-freeze value of *every* tenant's
///    pages at once, and
///  - `tenant_epoch[t]` advances only when an eviction charged to tenant t
///    changed t's own re-freeze inputs (its next-marginal value or bump
///    moved, i.e. the marginal delta ≠ 0).
///
/// Both counters are monotone, so `stamp == epoch + tenant_epoch[owner]`
/// implies *neither* moved since the page's last refresh — re-freezing the
/// budget now recomputes `next_marginal − bump + offset` from bit-identical
/// operands and stores a bit-identical key, which is the exact criterion
/// under which the hit is a pure no-op in ALG-DISCRETE and may be served
/// without the shard mutex. The practical payoff is that zero-budget
/// evictions (the common generational case under linear costs) stale
/// *nothing*, and a positive-budget eviction in tenant t never stales
/// tenant u ≠ t unless the shared offset moved — the over-staling fix for
/// ROADMAP item 2.
///
/// Callers must pass the same tenant id for a given page on every call
/// (pages are tenant-owned — trace/types.hpp packs the tenant into the
/// PageId, and every frontend validates the pairing before probing).
///
/// `SeqlockConfig` exists for the model checker's mutation suite only: each
/// flag disables one load-bearing ingredient of the protocol (the acquire
/// fence, the seq revalidation, the odd-window, the epoch bumps, ...), and
/// tests/test_seqlock_model.cpp proves the checker rejects every such
/// mutant while the shipped configuration passes an exhaustive exploration.
/// Production code always instantiates `kShippedSeqlock`; every deviation
/// point is an `if constexpr`, so the shipped instantiation compiles to the
/// exact intended instruction sequence.
///
/// Thread-safety contract: `try_fresh_hit` may be called by any number of
/// threads with no lock. Every other member is a writer-side operation and
/// must be called under the owning shard's mutex (single writer at a time);
/// ShardedCache annotates its call sites with CCC_REQUIRES accordingly.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/check.hpp"
#include "util/flat_map.hpp"  // util::splitmix64

namespace ccc {

/// Production atomics policy: plain std::atomic plus the standalone fences.
struct StdAtomics {
  template <typename T>
  using Atomic = std::atomic<T>;
  static void fence_acquire() noexcept {
    // Strength chosen by the caller; this is just the raw fence.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  static void fence_release() noexcept {
    // Strength chosen by the caller; this is just the raw fence.
    std::atomic_thread_fence(std::memory_order_release);
  }
};

/// Protocol mutation switches for the model checker's seeded-bug suite.
/// All-true is the shipped protocol; each false removes one ingredient.
struct SeqlockConfig {
  // Reader side ------------------------------------------------------
  /// Bail out when the first seq load is odd (structural write open).
  bool check_odd_seq = true;
  /// Acquire fence between the probe loads and the seq revalidation.
  bool acquire_fence = true;
  /// Reload seq after the fence and require it unchanged.
  bool revalidate_seq = true;
  /// Probe keys with acquire loads (orders the stamp load after the
  /// writer's stamp store on the publish path).
  bool acquire_key_loads = true;
  // Writer side ------------------------------------------------------
  /// Wrap eviction erase / rebuild in an odd seq window + release fence.
  bool seq_window = true;
  /// Advance the global epoch when an eviction moved the shared offset
  /// (and on every rebuild) — stales every tenant's stamps.
  bool bump_epoch = true;
  /// Advance the victim tenant's epoch when the eviction changed that
  /// tenant's re-freeze inputs — stales only the victim tenant's stamps.
  bool bump_tenant_epoch = true;
  /// Include the tenant epoch in stamps and the freshness test. False
  /// degrades freshness to the global epoch alone, so tenant-local bumps
  /// go unnoticed (a seeded bug the checker must catch).
  bool stamp_tenant_epoch = true;
  /// On the free-space publish path, store the stamp before the key and
  /// release the key store.
  bool stamp_before_key = true;
};

inline constexpr SeqlockConfig kShippedSeqlock{};

/// The residency mirror + seqlock words for one shard.
///
/// `Policy` supplies the atomic type and fences (StdAtomics in
/// production, interleave::CheckedAtomics under the model checker).
/// `Config` selects protocol mutations (checker only).
template <typename Policy, SeqlockConfig Config = kShippedSeqlock>
class SeqlockResidencyTable {
 public:
  using AtomicU64 = typename Policy::template Atomic<std::uint64_t>;

  /// Empty marker for the key slots (never a valid PageId).
  static constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

  SeqlockResidencyTable() = default;
  SeqlockResidencyTable(const SeqlockResidencyTable&) = delete;
  SeqlockResidencyTable& operator=(const SeqlockResidencyTable&) = delete;

  /// Allocates `table_size` (power of two) slots, all empty, plus one
  /// tenant-epoch word per tenant. Called once before any concurrent
  /// reader exists; reallocation is forbidden (it would pull the arrays
  /// out from under lock-free probes).
  void allocate(std::size_t table_size, std::uint32_t num_tenants) {
    CCC_REQUIRE(table_size >= 2 && (table_size & (table_size - 1)) == 0,
                "seqlock table size must be a power of two");
    CCC_REQUIRE(num_tenants >= 1, "seqlock table needs at least one tenant");
    CCC_CHECK(key_ == nullptr, "seqlock table may only be allocated once");
    mask_ = table_size - 1;
    num_tenants_ = num_tenants;
    key_ = std::make_unique<AtomicU64[]>(table_size);
    stamp_ = std::make_unique<AtomicU64[]>(table_size);
    tenant_epoch_ = std::make_unique<AtomicU64[]>(num_tenants);
    for (std::size_t i = 0; i < table_size; ++i) {
      // Pre-publication init: no reader exists yet, so plain relaxed
      // stores suffice to establish the empty table.
      key_[i].store(kEmptySlot, std::memory_order_relaxed);
      stamp_[i].store(0, std::memory_order_relaxed);
    }
    for (std::uint32_t t = 0; t < num_tenants; ++t) {
      // Pre-publication init (same argument as the key/stamp loop above).
      tenant_epoch_[t].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool allocated() const noexcept { return key_ != nullptr; }
  [[nodiscard]] std::size_t mask() const noexcept { return mask_; }
  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return num_tenants_;
  }

  // ---------------------------------------------------------------- //
  // Reader side (lock-free; any thread)                               //
  // ---------------------------------------------------------------- //

  /// Returns true iff `page` was observed resident with a current stamp
  /// under a validated seqlock read — i.e. the locked hit path would have
  /// been a pure no-op and the hit may be served without the mutex. Any
  /// torn, in-progress or ambiguous observation returns false (the caller
  /// falls back to the mutex, which is always correct). `tenant` must be
  /// the page's owner (see the file comment's pairing contract).
  [[nodiscard]] bool try_fresh_hit(std::uint64_t page,
                                   std::uint32_t tenant) const {
    // Boehm seqlock reader: acquire the seq word so the probe loads below
    // cannot be satisfied before it; odd means a structural write is in
    // flight.
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if constexpr (Config.check_odd_seq) {
      if ((s1 & 1) != 0) return false;
    }
    // Relaxed is enough for both epoch words: the final seq revalidation
    // decides whether this snapshot was stable (epochs only move inside
    // odd windows, which the revalidation detects); a stale epoch can
    // only make the freshness test fail conservatively.
    std::uint64_t want = epoch_.load(std::memory_order_relaxed);
    if constexpr (Config.stamp_tenant_epoch) {
      // Relaxed: same window-stability argument as the global epoch load.
      want += tenant_epoch_[tenant].load(std::memory_order_relaxed);
    }
    std::size_t slot = home(page);
    bool fresh = false;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      // Acquire on the key orders the stamp load after the writer's
      // stamp store, which precedes its key release-store on the
      // publish path (writer stores stamp, then key/release).
      const std::uint64_t key =
          key_[slot].load(Config.acquire_key_loads
                              ? std::memory_order_acquire   // see above
                              : std::memory_order_relaxed); // checker-verified
                                                            // benign mutation
      if (key == kEmptySlot) break;  // not resident (as of this snapshot)
      if (key == page) {
        // Fresh ⇔ neither the global nor the owner's epoch moved since
        // this page's last budget refresh ⇔ re-freezing the budget now
        // recomputes from bit-identical operands ⇔ the locked hit path
        // would be a no-op. Relaxed is safe: the acquire on `key`
        // already ordered this load (see above).
        fresh = stamp_[slot].load(std::memory_order_relaxed) == want;
        break;
      }
      slot = (slot + 1) & mask_;
    }
    if constexpr (Config.acquire_fence) {
      // Pairs with the writer's release fence at the top of each odd
      // window: if any probe above read a store made inside a window,
      // this fence makes that window's odd seq store visible to the
      // revalidation load below, forcing the fallback.
      Policy::fence_acquire();
    }
    if constexpr (Config.revalidate_seq) {
      // Relaxed suffices after the fence; any writer activity during the
      // probe moved seq and fails the comparison.
      if (seq_.load(std::memory_order_relaxed) != s1) return false;
    }
    return fresh;
  }

  // ---------------------------------------------------------------- //
  // Writer side (shard mutex held; single writer)                     //
  // ---------------------------------------------------------------- //

  /// Mirror of a locked hit: refresh the page's stamp to the current
  /// epoch sum for its owner. Returns true iff the stamp was already
  /// current — i.e. the optimistic path would have served this hit (the
  /// caller's resume signal). A lone relaxed store: a racing reader sees
  /// either the old stamp (conservative fallback) or the new one
  /// (correct — the locked hit just re-froze the budget), never an
  /// inconsistency.
  bool restamp_hit(std::uint64_t page, std::uint32_t tenant) {
    const std::uint64_t want = stamp_for(tenant);
    std::size_t slot = home(page);
    // Writer-private probe: relaxed loads, we are the only writer.
    while (key_[slot].load(std::memory_order_relaxed) != page) {
      CCC_CHECK(key_[slot].load(std::memory_order_relaxed) != kEmptySlot,
                "seqlock table lost a resident page");
      slot = (slot + 1) & mask_;
    }
    // Relaxed pair: writer-private read; racing readers see old or new
    // stamp, both self-consistent (doc comment above).
    const bool was_fresh =
        stamp_[slot].load(std::memory_order_relaxed) == want;
    stamp_[slot].store(want, std::memory_order_relaxed);
    return was_fresh;
  }

  /// Mirror of a miss into free space: publish stamp *then* key with a
  /// release store, so a reader that acquires the new key also observes
  /// its stamp. No seq window — a racing reader can only miss the new
  /// entry (conservative), never observe an inconsistent state.
  void publish_insert(std::uint64_t page, std::uint32_t tenant) {
    const std::uint64_t want = stamp_for(tenant);
    std::size_t slot = home(page);
    // Writer-private probe: relaxed, we are the only mutator.
    while (key_[slot].load(std::memory_order_relaxed) != kEmptySlot)
      slot = (slot + 1) & mask_;
    if constexpr (Config.stamp_before_key) {
      // Relaxed: the key release-store below carries it.
      stamp_[slot].store(want, std::memory_order_relaxed);
      // Release: the publish point — carries the stamp store above.
      key_[slot].store(page, std::memory_order_release);
    } else {
      // Mutation: key first, stamp later (checker-verified benign —
      // see tests/test_seqlock_model.cpp).
      key_[slot].store(page, std::memory_order_release);
      stamp_[slot].store(want, std::memory_order_relaxed);
    }
  }

  /// Mirror of a miss with eviction: backward-shift erase of the victim,
  /// the epoch bumps the eviction earned, insert of the fetched page —
  /// all inside an odd seq window, because the shift moves *unrelated*
  /// entries between slots mid-probe and an epoch bump re-defines
  /// freshness for a whole tenant class.
  ///
  /// `offset_moved` — the eviction debited survivors by a nonzero victim
  /// budget, shifting the shared offset: every tenant's re-freeze value
  /// changed, so the *global* epoch advances. `victim_refreshed` — the
  /// eviction changed the victim tenant's next-marginal or bump: only
  /// that tenant's re-freeze values changed, so only its epoch advances.
  /// A zero-budget eviction with an unchanged marginal (the generational
  /// steady state under linear costs) bumps neither: every survivor's
  /// stamp stays fresh, which is exactly the over-staling fix.
  void evict_and_insert(std::uint64_t victim, std::uint64_t page,
                        std::uint32_t page_tenant,
                        std::uint32_t victim_tenant, bool offset_moved,
                        bool victim_refreshed) {
    open_window();
    erase_locked(victim);
    if constexpr (Config.bump_epoch) {
      if (offset_moved) {
        // Relaxed load: writer-private read of a writer-owned counter.
        const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
        // Relaxed: the window close below releases this store.
        epoch_.store(epoch + 1, std::memory_order_relaxed);
      }
    }
    if constexpr (Config.bump_tenant_epoch) {
      if (victim_refreshed) {
        // Relaxed load: writer-private read of a writer-owned counter.
        const std::uint64_t te =
            tenant_epoch_[victim_tenant].load(std::memory_order_relaxed);
        // Relaxed: the window close below releases this store.
        tenant_epoch_[victim_tenant].store(te + 1,
                                           std::memory_order_relaxed);
      }
    }
    // Insert the newly fetched page, stamped fresh under the post-bump
    // epoch sums. Relaxed stores: the odd window screens them.
    std::size_t slot = home(page);
    // Relaxed throughout: the odd window screens these from readers.
    while (key_[slot].load(std::memory_order_relaxed) != kEmptySlot)
      slot = (slot + 1) & mask_;
    stamp_[slot].store(stamp_for(page_tenant),
                       std::memory_order_relaxed);  // window-screened
    key_[slot].store(page, std::memory_order_relaxed);  // window-screened
    close_window();
  }

  /// Opens an odd seq window for a structural rebuild driven by the
  /// caller (rebalance: resize + rebuild must share one window).
  void open_window() {
    if constexpr (Config.seq_window) {
      const std::uint64_t s = seq_.load(std::memory_order_relaxed);
      // Relaxed store + release fence (not a release store): the fence
      // orders the odd seq before *every* subsequent window store, so a
      // reader that observed any of them learns the window was open.
      seq_.store(s + 1, std::memory_order_relaxed);
      Policy::fence_release();
    }
  }

  /// Closes the window opened by open_window().
  void close_window() {
    if constexpr (Config.seq_window) {
      const std::uint64_t s = seq_.load(std::memory_order_relaxed);
      // Release: publishes all window stores to readers that see s+1.
      seq_.store(s + 1, std::memory_order_release);
    }
  }

  /// Rebuilds the table from scratch with uniformly *stale* stamps, then
  /// advances the global epoch. Must run inside a caller-opened window (a
  /// rebalance resize may have debited survivors, so nothing may appear
  /// fresh afterwards). `pages` is any range whose elements expose the
  /// page id as `.first` (FlatMap entries, std::pair, ...).
  template <typename Range>
  void rebuild(const Range& pages) {
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    // Relaxed throughout: the open window screens readers.
    for (std::size_t i = 0; i <= mask_; ++i)
      key_[i].store(kEmptySlot, std::memory_order_relaxed);
    for (const auto& entry : pages) {
      const std::uint64_t page = entry.first;
      std::size_t slot = home(page);
      // Relaxed: still inside the caller's window (see loop comment).
      while (key_[slot].load(std::memory_order_relaxed) != kEmptySlot)
        slot = (slot + 1) & mask_;
      // Stamp the *bare* pre-bump global epoch, without any tenant term:
      // after the bump below the freshness sum for every tenant t is
      // (epoch+1) + tenant_epoch[t] > epoch, and both counters only
      // grow, so these stamps are stale forever until restamped — no
      // per-entry tenant lookup needed.
      stamp_[slot].store(epoch, std::memory_order_relaxed);  // window
      key_[slot].store(page, std::memory_order_relaxed);     // window
    }
    if constexpr (Config.bump_epoch) {
      // Relaxed: released by the caller's close_window().
      epoch_.store(epoch + 1, std::memory_order_relaxed);
    }
  }

 private:
  /// The current freshness sum for `tenant` (writer-side: we own every
  /// epoch store, so relaxed loads read our own last values).
  [[nodiscard]] std::uint64_t stamp_for(std::uint32_t tenant) const {
    // Relaxed: writer-private reads of writer-owned counters.
    std::uint64_t want = epoch_.load(std::memory_order_relaxed);
    if constexpr (Config.stamp_tenant_epoch) {
      // Relaxed: writer-private read (same argument as above).
      want += tenant_epoch_[tenant].load(std::memory_order_relaxed);
    }
    return want;
  }

  [[nodiscard]] std::size_t home(std::uint64_t page) const {
    return static_cast<std::size_t>(util::splitmix64(page)) & mask_;
  }

  /// Tombstone-free backward-shift erase (inside the caller's window).
  void erase_locked(std::uint64_t victim) {
    std::size_t hole = home(victim);
    // Relaxed: writer-private probe under the open window.
    while (key_[hole].load(std::memory_order_relaxed) != victim) {
      CCC_CHECK(key_[hole].load(std::memory_order_relaxed) != kEmptySlot,
                "seqlock table lost the victim page");
      hole = (hole + 1) & mask_;
    }
    std::size_t probe = hole;
    while (true) {
      probe = (probe + 1) & mask_;
      // Relaxed: writer-private probe under the open window.
      const std::uint64_t key =
          key_[probe].load(std::memory_order_relaxed);
      if (key == kEmptySlot) break;
      const std::size_t h = home(key);
      // Cyclic distance test — identical to util::FlatMap::erase_at.
      if (((probe - h) & mask_) >= ((probe - hole) & mask_)) {
        key_[hole].store(key, std::memory_order_relaxed);
        // Relaxed move of the (key, stamp) pair: window-screened.
        stamp_[hole].store(stamp_[probe].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        hole = probe;
      }
    }
    key_[hole].store(kEmptySlot, std::memory_order_relaxed);  // window
  }

  /// Sequence word: odd ⇔ structural write in flight. Cache-line-aligned
  /// away from the mutex/bookkeeping the shard keeps next to this table.
  alignas(64) AtomicU64 seq_{};
  /// Global epoch: offset moves + rebuilds so far. A page's stamp is
  /// fresh iff it equals `epoch_ + tenant_epoch_[owner]`.
  AtomicU64 epoch_{};
  std::unique_ptr<AtomicU64[]> key_;
  std::unique_ptr<AtomicU64[]> stamp_;
  /// Per-tenant epoch: re-freeze-changing evictions charged to each
  /// tenant (marginal delta ≠ 0). Indexed by tenant id.
  std::unique_ptr<AtomicU64[]> tenant_epoch_;
  std::size_t mask_ = 0;
  std::uint32_t num_tenants_ = 0;
};

}  // namespace ccc
