#include "shard/sharded_cache.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "core/convex_caching.hpp"
#include "util/check.hpp"

namespace ccc {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// SplitMix64 finalizer. PageIds carry the owning tenant in their high bits
/// (types.hpp), so an unmixed `page % S` would correlate shard choice with
/// the tenant-local index; full avalanche decorrelates both.
std::uint64_t mix_page(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::size_t> even_split(std::size_t total, std::size_t shards) {
  CCC_REQUIRE(shards > 0, "need at least one shard");
  CCC_REQUIRE(total >= shards, "need at least one page of capacity per shard");
  std::vector<std::size_t> split(shards, total / shards);
  for (std::size_t s = 0; s < total % shards; ++s) ++split[s];
  return split;
}

std::vector<std::size_t> miss_rate_split(
    std::size_t total, const std::vector<std::uint64_t>& misses,
    std::size_t min_per_shard) {
  const std::size_t shards = misses.size();
  CCC_REQUIRE(shards > 0, "need at least one shard");
  CCC_REQUIRE(min_per_shard >= 1, "shard capacities must stay positive");
  CCC_REQUIRE(total >= shards * min_per_shard,
              "total capacity below the per-shard floor");

  // Weight = observed misses + 1 (smoothing: an idle shard keeps a claim).
  double weight_sum = 0.0;
  for (const std::uint64_t m : misses)
    weight_sum += static_cast<double>(m) + 1.0;

  std::vector<std::size_t> split(shards, min_per_shard);
  std::size_t remaining = total - shards * min_per_shard;
  const std::size_t distributable = remaining;
  for (std::size_t s = 0; s < shards && remaining > 0; ++s) {
    const double w = (static_cast<double>(misses[s]) + 1.0) / weight_sum;
    const auto give = std::min(
        remaining,
        static_cast<std::size_t>(w * static_cast<double>(distributable)));
    split[s] += give;
    remaining -= give;
  }
  // Rounding leftovers go to the heaviest missers first.
  std::vector<std::size_t> order(shards);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&misses](std::size_t a, std::size_t b) {
                     return misses[a] > misses[b];
                   });
  for (std::size_t i = 0; remaining > 0; i = (i + 1) % shards) {
    ++split[order[i]];
    --remaining;
  }
  return split;
}

ShardedCache::ShardedCache(ShardedCacheOptions options, PolicyFactory factory,
                           const std::vector<CostFunctionPtr>* costs)
    : options_(options), costs_(costs) {
  CCC_REQUIRE(options_.num_shards > 0, "need at least one shard");
  CCC_REQUIRE(options_.num_tenants > 0, "need at least one tenant");
  CCC_REQUIRE(options_.capacity >= options_.num_shards,
              "need at least one page of capacity per shard");
  CCC_REQUIRE(options_.min_shard_capacity >= 1,
              "shard capacities must stay positive");
  if (factory == nullptr) factory = make_convex_factory();

  const std::vector<std::size_t> split =
      even_split(options_.capacity, options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->policy = factory();
    CCC_CHECK(shard->policy != nullptr, "policy factory returned null");
    SimOptions sim_options;
    sim_options.seed = options_.seed + s;
    sim_options.step_observer = options_.step_observer;
    shard->session = std::make_unique<SimulatorSession>(
        split[s], options_.num_tenants, *shard->policy, costs_, sim_options);
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedCache::shard_of(PageId page) const noexcept {
  return static_cast<std::size_t>(mix_page(page) % shards_.size());
}

StepEvent ShardedCache::access(const Request& request) {
  Shard& shard = *shards_[shard_of(request.page)];
  const std::lock_guard lock(shard.mutex);
  const auto start = SteadyClock::now();
  StepEvent event = shard.session->step(request);
  shard.wall_seconds += seconds_since(start);
  return event;
}

void ShardedCache::access_batch(std::span<const Request> batch) {
  if (shards_.size() == 1) {
    Shard& shard = *shards_[0];
    const std::lock_guard lock(shard.mutex);
    const auto start = SteadyClock::now();
    for (const Request& request : batch) (void)shard.session->step(request);
    shard.wall_seconds += seconds_since(start);
    return;
  }
  // Group by shard without reordering within a group: bucket the request
  // indices, then drain bucket by bucket under one lock each.
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    groups[shard_of(batch[i].page)].push_back(i);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (groups[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::lock_guard lock(shard.mutex);
    const auto start = SteadyClock::now();
    for (const std::size_t i : groups[s]) (void)shard.session->step(batch[i]);
    shard.wall_seconds += seconds_since(start);
  }
}

void ShardedCache::access_batch(std::span<const Request> batch,
                                std::vector<StepEvent>& events) {
  // Events land at their request's original index, so callers can always
  // match events[base + i] to batch[i] no matter how the batch was split
  // across shards.
  const std::size_t base = events.size();
  events.resize(base + batch.size());
  if (shards_.size() == 1) {
    Shard& shard = *shards_[0];
    const std::lock_guard lock(shard.mutex);
    const auto start = SteadyClock::now();
    for (std::size_t i = 0; i < batch.size(); ++i)
      events[base + i] = shard.session->step(batch[i]);
    shard.wall_seconds += seconds_since(start);
    return;
  }
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    groups[shard_of(batch[i].page)].push_back(i);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (groups[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::lock_guard lock(shard.mutex);
    const auto start = SteadyClock::now();
    for (const std::size_t i : groups[s])
      events[base + i] = shard.session->step(batch[i]);
    shard.wall_seconds += seconds_since(start);
  }
}

Metrics ShardedCache::aggregated_metrics() const {
  Metrics total(options_.num_tenants);
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    total.merge(shard->session->metrics());
  }
  return total;
}

PerfCounters ShardedCache::aggregated_perf() const {
  PerfCounters total;
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    PerfCounters perf = shard->session->perf_counters();
    // The session leaves wall_seconds to its driver; this frontend *is*
    // the driver and accumulated the in-lock processing time per shard.
    perf.wall_seconds = shard->wall_seconds;
    total.merge(perf);
  }
  return total;
}

double ShardedCache::global_miss_cost() const {
  CCC_REQUIRE(costs_ != nullptr,
              "global_miss_cost needs per-tenant cost functions");
  std::vector<std::uint64_t> misses(options_.num_tenants, 0);
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    const Metrics& m = shard->session->metrics();
    for (TenantId t = 0; t < options_.num_tenants; ++t)
      misses[t] += m.misses(t);
  }
  return total_cost(misses, *costs_);
}

std::vector<ShardStats> ShardedCache::shard_stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    const Metrics& m = shard->session->metrics();
    ShardStats s;
    s.capacity = shard->session->cache().capacity();
    s.resident = shard->session->cache().size();
    s.hits = m.total_hits();
    s.misses = m.total_misses();
    s.evictions = m.total_evictions();
    stats.push_back(s);
  }
  return stats;
}

std::vector<std::size_t> ShardedCache::capacities() const {
  std::vector<std::size_t> caps;
  caps.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    caps.push_back(shard->session->cache().capacity());
  }
  return caps;
}

void ShardedCache::set_rebalance_hook(RebalanceHook hook) {
  rebalance_hook_ = std::move(hook);
}

void ShardedCache::rebalance() {
  const std::vector<ShardStats> stats = shard_stats();
  std::vector<std::size_t> split;
  if (rebalance_hook_) {
    split = rebalance_hook_(stats);
  } else {
    std::vector<std::uint64_t> misses;
    misses.reserve(stats.size());
    for (const ShardStats& s : stats) misses.push_back(s.misses);
    split = miss_rate_split(options_.capacity, misses,
                            options_.min_shard_capacity);
  }
  CCC_REQUIRE(split.size() == shards_.size(),
              "rebalance hook returned the wrong number of shards");
  std::size_t sum = 0;
  for (const std::size_t c : split) {
    CCC_REQUIRE(c > 0, "rebalance hook starved a shard");
    sum += c;
  }
  CCC_REQUIRE(sum == options_.capacity,
              "rebalance hook changed the total capacity");
#ifdef CCC_OBS_ENABLED
  const std::vector<std::size_t> before =
      options_.step_observer != nullptr ? capacities()
                                        : std::vector<std::size_t>{};
  const auto start = SteadyClock::now();
#endif
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard lock(shards_[s]->mutex);
    shards_[s]->session->resize(split[s]);
  }
#ifdef CCC_OBS_ENABLED
  if (options_.step_observer != nullptr)
    options_.step_observer->on_rebalance(
        before, split,
        static_cast<std::uint64_t>(seconds_since(start) * 1e9));
#endif
}

const SimulatorSession& ShardedCache::shard_session(std::size_t shard) const {
  CCC_REQUIRE(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->session;
}

}  // namespace ccc
