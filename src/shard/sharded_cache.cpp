#include "shard/sharded_cache.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "core/convex_caching.hpp"
#include "trace/types.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace ccc {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// How far ahead access_batch probes the residency hash while draining a
/// shard group: far enough to cover the memory latency of one probe, near
/// enough that the prefetched line is still resident when reached.
constexpr std::size_t kPrefetchDistance = 8;

/// Locked runs inside a seqlock-mode batch hand back to the optimistic
/// path after this many consecutive already-fresh hits. Small enough to
/// resume quickly once the post-eviction restamping settles, large enough
/// that one lucky fresh hit inside an eviction storm doesn't cause
/// lock/unlock churn.
constexpr std::size_t kSeqlockResumeStreak = 4;

/// Smallest power of two ≥ `n` (and ≥ 16).
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::vector<std::size_t> even_split(std::size_t total, std::size_t shards) {
  CCC_REQUIRE(shards > 0, "need at least one shard");
  CCC_REQUIRE(total >= shards, "need at least one page of capacity per shard");
  std::vector<std::size_t> split(shards, total / shards);
  for (std::size_t s = 0; s < total % shards; ++s) ++split[s];
  return split;
}

std::vector<std::size_t> miss_rate_split(
    std::size_t total, const std::vector<std::uint64_t>& misses,
    std::size_t min_per_shard) {
  const std::size_t shards = misses.size();
  CCC_REQUIRE(shards > 0, "need at least one shard");
  CCC_REQUIRE(min_per_shard >= 1, "shard capacities must stay positive");
  CCC_REQUIRE(total >= shards * min_per_shard,
              "total capacity below the per-shard floor");

  // Weight = observed misses + 1 (smoothing: an idle shard keeps a claim).
  double weight_sum = 0.0;
  for (const std::uint64_t m : misses)
    weight_sum += static_cast<double>(m) + 1.0;

  std::vector<std::size_t> split(shards, min_per_shard);
  std::size_t remaining = total - shards * min_per_shard;
  const std::size_t distributable = remaining;
  for (std::size_t s = 0; s < shards && remaining > 0; ++s) {
    const double w = (static_cast<double>(misses[s]) + 1.0) / weight_sum;
    const auto give = std::min(
        remaining,
        static_cast<std::size_t>(w * static_cast<double>(distributable)));
    split[s] += give;
    remaining -= give;
  }
  // Rounding leftovers go to the heaviest missers first.
  std::vector<std::size_t> order(shards);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&misses](std::size_t a, std::size_t b) {
                     return misses[a] > misses[b];
                   });
  for (std::size_t i = 0; remaining > 0; i = (i + 1) % shards) {
    ++split[order[i]];
    --remaining;
  }
  return split;
}

ShardedCache::ShardedCache(ShardedCacheOptions options, PolicyFactory factory,
                           const std::vector<CostFunctionPtr>* costs)
    : options_(options), costs_(costs) {
  CCC_REQUIRE(options_.num_shards > 0, "need at least one shard");
  CCC_REQUIRE(options_.num_tenants > 0, "need at least one tenant");
  CCC_REQUIRE(options_.capacity >= options_.num_shards,
              "need at least one page of capacity per shard");
  CCC_REQUIRE(options_.min_shard_capacity >= 1,
              "shard capacities must stay positive");
  if (factory == nullptr) factory = make_convex_factory();

  const std::vector<std::size_t> split =
      even_split(options_.capacity, options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->policy = factory();
    CCC_CHECK(shard->policy != nullptr, "policy factory returned null");
    if (options_.hit_path == HitPath::kSeqlock) {
      // The optimistic path serves a "fresh" hit without consulting the
      // policy, which is sound only when that hit would have been a pure
      // state no-op: true for ALG-DISCRETE (a hit re-freezes the budget to
      // the value it already has unless an eviction intervened) but not in
      // general (LRU must move the page to the MRU position on every hit).
      const auto* convex =
          dynamic_cast<const ConvexCachingPolicy*>(shard->policy.get());
      CCC_REQUIRE(convex != nullptr,
                  "HitPath::kSeqlock requires ALG-DISCRETE shard policies "
                  "(hits must be read-only)");
      CCC_REQUIRE(convex->options().window_length == 0,
                  "HitPath::kSeqlock is incompatible with windowed "
                  "accounting (window rollovers re-base budgets on hits)");
      shard->convex = convex;
      // One table sized for the *total* capacity: rebalancing may hand
      // this shard (almost) everything, and reallocation would pull the
      // arrays out from under concurrent lock-free readers. Tenant count
      // sizes the per-tenant epoch array (per-tenant freshness).
      shard->table.allocate(pow2_at_least(2 * options_.capacity + 2),
                            options_.num_tenants);
      shard->lockfree_hits = std::make_unique<std::atomic<std::uint64_t>[]>(
          options_.num_tenants);
      for (std::uint32_t t = 0; t < options_.num_tenants; ++t)
        // Pre-publication init: no concurrent reader exists yet.
        shard->lockfree_hits[t].store(0, std::memory_order_relaxed);
    }
    SimOptions sim_options;
    sim_options.seed = options_.seed + s;
    sim_options.step_observer = options_.step_observer;
    {
      // No other thread can reach this shard yet; the lock exists purely
      // so the thread-safety analysis accepts dereferencing the guarded
      // policy pointee while wiring it into the session.
      const util::MutexLock lock(shard->mutex);
      shard->session = std::make_unique<SimulatorSession>(
          split[s], options_.num_tenants, *shard->policy, costs_, sim_options);
    }
    shards_.push_back(std::move(shard));
  }
}

std::size_t shard_of_page(PageId page, std::size_t num_shards) noexcept {
  // Multiply-shift range reduction over the mixed id: the shard is decided
  // by the *high* bits of splitmix64(page), leaving the low bits — which
  // the flat residency tables use for slot selection — unconstrained
  // within a shard. (A plain `mix % S` with S a power of two would pin the
  // low bits per shard and collapse every in-shard table onto 1/S of its
  // slots.) PageIds carry the owning tenant in their high bits
  // (types.hpp), so the pre-mix is what decorrelates shard choice from
  // tenant identity.
  const std::uint64_t hi = util::splitmix64(page) >> 32;
  return static_cast<std::size_t>(
      (hi * static_cast<std::uint64_t>(num_shards)) >> 32);
}

std::size_t ShardedCache::shard_of(PageId page) const noexcept {
  return shard_of_page(page, shards_.size());
}

bool ShardedCache::try_seqlock_hit(Shard& shard, const Request& request,
                                   StepEvent& event) const {
  // Reader side of the Boehm seqlock recipe — the protocol itself lives
  // in SeqlockResidencyTable::try_fresh_hit (seqlock_table.hpp), which is
  // also the exact code the interleaving model checker explores. Any
  // torn, in-progress or ambiguous observation falls back to the mutex —
  // the fallback is always correct, just slower.
  if (request.tenant >= options_.num_tenants) return false;  // locked throw
  if (!shard.table.try_fresh_hit(request.page, request.tenant)) return false;
  // Relaxed tally: each slot is written by exactly this kind of
  // increment; aggregation folds it in under the shard mutex, and the
  // count is not part of the protocol's correctness argument.
  shard.lockfree_hits[request.tenant].fetch_add(1,
                                                std::memory_order_relaxed);
  event = StepEvent{};
  event.request = request;
  event.hit = true;
  return true;
}

bool ShardedCache::apply_event_seqlock(Shard& shard, const StepEvent& event) {
  // Writer side (mutex held, so we are the only writer). Three cases:
  //  hit      — refresh the page's stamp (plain relaxed store; a racing
  //             reader sees old or new stamp, never an inconsistency).
  //  insert   — publish stamp *then* key with a release store.
  //  eviction — the only structural mutation (backward-shift erase moves
  //             unrelated entries): wrapped in an odd `seq` window so
  //             every concurrent reader retries via the locked path. The
  //             policy just ran this eviction synchronously inside
  //             session->step, so its freshness signals describe exactly
  //             this event: the table bumps the global epoch only if the
  //             shared survivor-debit offset moved, and the victim
  //             tenant's epoch only if that tenant's budgets were
  //             re-based (delta ≠ 0). Under linear costs at steady state
  //             both signals are quiet and *no* resident entry goes
  //             stale — the fix for seqlock over-staling under eviction
  //             pressure.
  // Memory-order details and the full argument: seqlock_table.hpp and
  // DESIGN.md §10.
  if (event.hit)
    return shard.table.restamp_hit(event.request.page, event.request.tenant);
  if (!event.victim.has_value()) {
    shard.table.publish_insert(event.request.page, event.request.tenant);
    return false;
  }
  // Simulator evictions always carry the victim's owner; fall back to the
  // PageId-packed tenant only for synthetic events in tests.
  const TenantId owner =
      event.victim_owner.value_or(page_owner(*event.victim));
  shard.table.evict_and_insert(*event.victim, event.request.page,
                               event.request.tenant, owner,
                               shard.convex->last_evict_moved_offset(),
                               shard.convex->last_evict_refreshed_tenant());
  return false;
}

StepEvent ShardedCache::access(const Request& request) {
  Shard& shard = *shards_[shard_of(request.page)];
  if (options_.hit_path == HitPath::kSeqlock) {
    StepEvent event;
    if (try_seqlock_hit(shard, request, event)) return event;
    const util::MutexLock lock(shard.mutex);
    const auto start = SteadyClock::now();
    event = shard.session->step(request);
    apply_event_seqlock(shard, event);
    shard.wall_seconds += seconds_since(start);
    return event;
  }
  const util::MutexLock lock(shard.mutex);
  const auto start = SteadyClock::now();
  StepEvent event = shard.session->step(request);
  shard.wall_seconds += seconds_since(start);
  return event;
}

void ShardedCache::process_group(Shard& shard, std::span<const Request> batch,
                                 const std::vector<std::size_t>* group,
                                 std::vector<StepEvent>* events,
                                 std::size_t base) {
  const std::size_t n = group != nullptr ? group->size() : batch.size();
  const auto idx = [group](std::size_t j) {
    return group != nullptr ? (*group)[j] : j;
  };
  std::size_t j = 0;
  if (options_.hit_path == HitPath::kSeqlock) {
    // Alternate lock-free and locked runs, always in submission order (a
    // request is never served before an earlier one — a mid-group
    // eviction can touch a later request's page, so reordering would
    // change the books). A locked run starts at the first request the
    // optimistic path cannot serve and ends once a streak of
    // already-fresh hits shows the table is serviceable again; on a
    // stale-heavy stream the streak never forms and the whole remainder
    // runs under one lock acquisition, same as the locked path.
    StepEvent event;
    while (j < n) {
      for (; j < n; ++j) {
        if (!try_seqlock_hit(shard, batch[idx(j)], event)) break;
        if (events != nullptr) (*events)[base + idx(j)] = event;
      }
      if (j == n) return;
      const util::MutexLock lock(shard.mutex);
      const auto start = SteadyClock::now();
      const CacheState& cache = shard.session->cache();
      std::size_t fresh_streak = 0;
      for (; j < n && fresh_streak < kSeqlockResumeStreak; ++j) {
        if (j + kPrefetchDistance < n)
          cache.prefetch(batch[idx(j + kPrefetchDistance)].page);
        StepEvent locked_event = shard.session->step(batch[idx(j)]);
        fresh_streak = apply_event_seqlock(shard, locked_event)
                           ? fresh_streak + 1
                           : 0;
        if (events != nullptr) (*events)[base + idx(j)] = locked_event;
      }
      shard.wall_seconds += seconds_since(start);
    }
    return;
  }
  const util::MutexLock lock(shard.mutex);
  const auto start = SteadyClock::now();
  const CacheState& cache = shard.session->cache();
  for (; j < n; ++j) {
    // Probe-ahead: pull the residency-table line of a request a few slots
    // ahead while the current one is processed.
    if (j + kPrefetchDistance < n)
      cache.prefetch(batch[idx(j + kPrefetchDistance)].page);
    StepEvent event = shard.session->step(batch[idx(j)]);
    if (events != nullptr) (*events)[base + idx(j)] = event;
  }
  shard.wall_seconds += seconds_since(start);
}

void ShardedCache::access_batch(std::span<const Request> batch) {
  if (shards_.size() == 1) {
    process_group(*shards_[0], batch, nullptr, nullptr, 0);
    return;
  }
  // Group by shard without reordering within a group: bucket the request
  // indices, then drain bucket by bucket under one lock each.
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    groups[shard_of(batch[i].page)].push_back(i);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (groups[s].empty()) continue;
    process_group(*shards_[s], batch, &groups[s], nullptr, 0);
  }
}

void ShardedCache::access_batch(std::span<const Request> batch,
                                std::vector<StepEvent>& events) {
  // Events land at their request's original index, so callers can always
  // match events[base + i] to batch[i] no matter how the batch was split
  // across shards.
  const std::size_t base = events.size();
  events.resize(base + batch.size());
  if (shards_.size() == 1) {
    process_group(*shards_[0], batch, nullptr, &events, base);
    return;
  }
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    groups[shard_of(batch[i].page)].push_back(i);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (groups[s].empty()) continue;
    process_group(*shards_[s], batch, &groups[s], &events, base);
  }
}

Metrics ShardedCache::aggregated_metrics() const {
  Metrics total(options_.num_tenants);
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    total.merge(shard->session->metrics());
    // Hits served lock-free bypassed the session's books; fold them in so
    // the aggregate equals a locked run's totals per tenant.
    if (shard->lockfree_hits != nullptr)
      for (std::uint32_t t = 0; t < options_.num_tenants; ++t)
        // Relaxed: a monotone tally; aggregation runs quiesced (or
        // tolerates a slightly stale count by contract).
        total.record_hits(
            t, shard->lockfree_hits[t].load(std::memory_order_relaxed));
  }
  return total;
}

PerfCounters ShardedCache::aggregated_perf() const {
  PerfCounters total;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    PerfCounters perf = shard->session->perf_counters();
    // The session leaves wall_seconds to its driver; this frontend *is*
    // the driver and accumulated the in-lock processing time per shard.
    // (Lock-free hits are not individually timed — the optimistic path
    // exists precisely to avoid per-request bookkeeping — so under
    // kSeqlock the wall time covers the locked residue only; throughput
    // benches time the full loop externally.)
    perf.wall_seconds = shard->wall_seconds;
    if (shard->lockfree_hits != nullptr) {
      std::uint64_t lockfree = 0;
      for (std::uint32_t t = 0; t < options_.num_tenants; ++t)
        // Relaxed: monotone tally, stale-tolerant aggregation.
        lockfree +=
            shard->lockfree_hits[t].load(std::memory_order_relaxed);
      perf.requests += lockfree;  // the session only counted locked steps
      perf.lockfree_hits += lockfree;
    }
    total.merge(perf);
  }
  return total;
}

double ShardedCache::global_miss_cost() const {
  CCC_REQUIRE(costs_ != nullptr,
              "global_miss_cost needs per-tenant cost functions");
  std::vector<std::uint64_t> misses(options_.num_tenants, 0);
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    const Metrics& m = shard->session->metrics();
    for (TenantId t = 0; t < options_.num_tenants; ++t)
      misses[t] += m.misses(t);
  }
  return total_cost(misses, *costs_);
}

std::vector<ShardStats> ShardedCache::shard_stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    const Metrics& m = shard->session->metrics();
    ShardStats s;
    s.capacity = shard->session->cache().capacity();
    s.resident = shard->session->cache().size();
    s.hits = m.total_hits();
    s.misses = m.total_misses();
    s.evictions = m.total_evictions();
    if (shard->lockfree_hits != nullptr)
      for (std::uint32_t t = 0; t < options_.num_tenants; ++t)
        // Relaxed: monotone tally, stale-tolerant aggregation.
        s.hits += shard->lockfree_hits[t].load(std::memory_order_relaxed);
    stats.push_back(s);
  }
  return stats;
}

std::vector<ShardDualAccount> ShardedCache::dual_accounts() const {
  std::vector<ShardDualAccount> accounts;
  accounts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    ShardDualAccount account;
    const auto* convex =
        dynamic_cast<const ConvexCachingPolicy*>(shard->policy.get());
    if (convex != nullptr) {
      account.valid = convex->dual_certificate_valid();
      account.mass = convex->dual_mass_by_tenant();
      account.evictions = convex->tenant_evictions();
    }
    accounts.push_back(std::move(account));
  }
  return accounts;
}

std::vector<std::size_t> ShardedCache::capacities() const {
  std::vector<std::size_t> caps;
  caps.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard->mutex);
    caps.push_back(shard->session->cache().capacity());
  }
  return caps;
}

void ShardedCache::set_rebalance_hook(RebalanceHook hook) {
  rebalance_hook_ = std::move(hook);
}

void ShardedCache::rebalance() {
  const std::vector<ShardStats> stats = shard_stats();
  std::vector<std::size_t> split;
  if (rebalance_hook_) {
    split = rebalance_hook_(stats);
  } else {
    std::vector<std::uint64_t> misses;
    misses.reserve(stats.size());
    for (const ShardStats& s : stats) misses.push_back(s.misses);
    split = miss_rate_split(options_.capacity, misses,
                            options_.min_shard_capacity);
  }
  CCC_REQUIRE(split.size() == shards_.size(),
              "rebalance hook returned the wrong number of shards");
  std::size_t sum = 0;
  for (const std::size_t c : split) {
    CCC_REQUIRE(c > 0, "rebalance hook starved a shard");
    sum += c;
  }
  CCC_REQUIRE(sum == options_.capacity,
              "rebalance hook changed the total capacity");
#ifdef CCC_OBS_ENABLED
  const std::vector<std::size_t> before =
      options_.step_observer != nullptr ? capacities()
                                        : std::vector<std::size_t>{};
  const auto start = SteadyClock::now();
#endif
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const util::MutexLock lock(shard.mutex);
    if (options_.hit_path == HitPath::kSeqlock) {
      // Resizing may evict (drain a shrinking shard) and in any case
      // re-bases what "fresh" means, so the resize and the table rebuild
      // (with its all-stale stamps + epoch bump) share one odd seq
      // window. Readers retry through the mutex meanwhile.
      shard.table.open_window();
      shard.session->resize(split[s]);
      shard.table.rebuild(shard.session->cache().pages());
      shard.table.close_window();
    } else {
      shard.session->resize(split[s]);
    }
  }
#ifdef CCC_OBS_ENABLED
  if (options_.step_observer != nullptr)
    options_.step_observer->on_rebalance(
        before, split,
        static_cast<std::uint64_t>(seconds_since(start) * 1e9));
#endif
}

// Analysis opt-out: hands out an unlocked reference to guarded state.
// Documented escape hatch for tests/diagnostics only — the header warns
// callers not to race a concurrent replay, and every in-tree use inspects
// a quiescent cache.
const SimulatorSession& ShardedCache::shard_session(std::size_t shard) const
    CCC_NO_THREAD_SAFETY_ANALYSIS {
  CCC_REQUIRE(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->session;
}

}  // namespace ccc
