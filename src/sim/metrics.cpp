#include "sim/metrics.hpp"

#include <numeric>

#include "util/check.hpp"

namespace ccc {

void PerfCounters::merge(const PerfCounters& other) noexcept {
  requests += other.requests;
  evictions += other.evictions;
  heap_pops += other.heap_pops;
  stale_skips += other.stale_skips;
  index_rebuilds += other.index_rebuilds;
  window_rollovers += other.window_rollovers;
  lockfree_hits += other.lockfree_hits;
  wall_seconds += other.wall_seconds;
}

double PerfCounters::ns_per_request() const noexcept {
  if (requests == 0) return 0.0;
  return wall_seconds * 1e9 / static_cast<double>(requests);
}

double PerfCounters::seconds_per_million() const noexcept {
  if (requests == 0) return 0.0;
  return wall_seconds * 1e6 / static_cast<double>(requests);
}

double PerfCounters::stale_skips_per_eviction() const noexcept {
  if (evictions == 0) return 0.0;
  return static_cast<double>(stale_skips) / static_cast<double>(evictions);
}

Metrics::Metrics(std::uint32_t num_tenants)
    : hits_(num_tenants, 0), misses_(num_tenants, 0),
      evictions_(num_tenants, 0) {
  CCC_REQUIRE(num_tenants > 0, "metrics need at least one tenant");
}

void Metrics::record_hit(TenantId tenant) {
  CCC_REQUIRE(tenant < hits_.size(), "tenant id out of range");
  ++hits_[tenant];
}

void Metrics::record_hits(TenantId tenant, std::uint64_t count) {
  CCC_REQUIRE(tenant < hits_.size(), "tenant id out of range");
  hits_[tenant] += count;
}

void Metrics::record_miss(TenantId tenant) {
  CCC_REQUIRE(tenant < misses_.size(), "tenant id out of range");
  ++misses_[tenant];
}

void Metrics::record_eviction(TenantId tenant) {
  CCC_REQUIRE(tenant < evictions_.size(), "tenant id out of range");
  ++evictions_[tenant];
}

void Metrics::merge(const Metrics& other) {
  CCC_REQUIRE(other.hits_.size() == hits_.size(),
              "merging metrics with different tenant counts");
  for (std::size_t t = 0; t < hits_.size(); ++t) {
    hits_[t] += other.hits_[t];
    misses_[t] += other.misses_[t];
    evictions_[t] += other.evictions_[t];
  }
}

std::uint64_t Metrics::hits(TenantId tenant) const {
  CCC_REQUIRE(tenant < hits_.size(), "tenant id out of range");
  return hits_[tenant];
}

std::uint64_t Metrics::misses(TenantId tenant) const {
  CCC_REQUIRE(tenant < misses_.size(), "tenant id out of range");
  return misses_[tenant];
}

std::uint64_t Metrics::evictions(TenantId tenant) const {
  CCC_REQUIRE(tenant < evictions_.size(), "tenant id out of range");
  return evictions_[tenant];
}

std::uint64_t Metrics::total_hits() const noexcept {
  return std::accumulate(hits_.begin(), hits_.end(), std::uint64_t{0});
}

std::uint64_t Metrics::total_misses() const noexcept {
  return std::accumulate(misses_.begin(), misses_.end(), std::uint64_t{0});
}

std::uint64_t Metrics::total_evictions() const noexcept {
  return std::accumulate(evictions_.begin(), evictions_.end(),
                         std::uint64_t{0});
}

double total_cost(const std::vector<std::uint64_t>& counts,
                  const std::vector<CostFunctionPtr>& costs) {
  CCC_REQUIRE(costs.size() >= counts.size(),
              "each tenant with counts needs a cost function");
  double sum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i)
    sum += costs[i]->value(static_cast<double>(counts[i]));
  return sum;
}

std::vector<CostFunctionPtr> uniform_costs(const CostFunction& prototype,
                                           std::uint32_t num_tenants) {
  std::vector<CostFunctionPtr> costs;
  costs.reserve(num_tenants);
  for (std::uint32_t i = 0; i < num_tenants; ++i)
    costs.push_back(prototype.clone());
  return costs;
}

}  // namespace ccc
