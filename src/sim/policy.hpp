#pragma once
/// \file policy.hpp
/// \brief The replacement-policy interface driven by the simulator.
///
/// The simulator owns the cache state and the request loop; a policy only
/// decides *which resident page to evict* when the cache is full and a
/// non-resident page is requested, and observes hits/insertions/evictions
/// to maintain its internal metadata. Offline policies (Belady, the batch
/// balancer) additionally receive the full trace via preview().

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "cost/cost_function.hpp"
#include "sim/cache_state.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/types.hpp"

namespace ccc {

/// Everything a policy may consult, fixed for one simulation run.
struct PolicyContext {
  std::size_t capacity = 0;
  std::uint32_t num_tenants = 0;
  /// Per-tenant cost functions; may be null for cost-oblivious baselines.
  const std::vector<CostFunctionPtr>* costs = nullptr;
  /// Read-only view of the live cache (owned by the simulator).
  const CacheState* cache = nullptr;
  /// Seed for randomized policies.
  std::uint64_t seed = 0;
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Called once before the run; policies must drop all per-run state.
  virtual void reset(const PolicyContext& ctx) = 0;

  /// Offline hook: the full trace, delivered before the first request.
  /// Online policies ignore it.
  virtual void preview(const Trace& trace) { (void)trace; }

  /// The requested page was resident.
  virtual void on_hit(const Request& request, TimeStep time) {
    (void)request;
    (void)time;
  }

  /// Cache full and `request.page` absent: return the resident page to
  /// evict. Must return a currently resident page.
  [[nodiscard]] virtual PageId choose_victim(const Request& request,
                                             TimeStep time) = 0;

  /// Miss with free space still available: policies that enforce hard
  /// internal limits (e.g. static per-tenant partitions) may still demand
  /// an eviction by returning a resident page; the default — every
  /// work-conserving policy — declines.
  [[nodiscard]] virtual std::optional<PageId> quota_victim(
      const Request& request, TimeStep time) {
    (void)request;
    (void)time;
    return std::nullopt;
  }

  /// The chosen victim has been removed from the cache.
  virtual void on_evict(PageId victim, TenantId owner, TimeStep time) {
    (void)victim;
    (void)owner;
    (void)time;
  }

  /// `request.page` has been inserted (after a miss).
  virtual void on_insert(const Request& request, TimeStep time) {
    (void)request;
    (void)time;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Index-work counters accumulated since reset(). Policies with internal
  /// heaps (ConvexCaching, Landlord, …) report pops/stale skips/rebuilds;
  /// the default reports zeros. The simulator overlays requests, evictions
  /// and wall-clock time on top of whatever the policy returns.
  [[nodiscard]] virtual PerfCounters perf_counters() const { return {}; }
};

/// Builds fresh policy instances — one per pool (multipool) or per shard
/// (sharded frontend). Every instance must be independent: factories
/// capture configuration, never a policy object.
using PolicyFactory = std::function<std::unique_ptr<ReplacementPolicy>()>;

}  // namespace ccc
