#pragma once
/// \file simulator.hpp
/// \brief The request-processing engine of §1.2: every requested page must
///        be resident or fetched; a full cache forces an eviction chosen by
///        the policy. Produces per-tenant metrics and (optionally) the full
///        event schedule consumed by the primal–dual machinery and the
///        convex-program evaluator.

#include <optional>
#include <vector>

#include "sim/cache_state.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace ccc {

/// What happened at one time step.
struct StepEvent {
  Request request{};
  bool hit = false;
  /// Set when an eviction was required to make room.
  std::optional<PageId> victim;
  std::optional<TenantId> victim_owner;
};

struct SimOptions {
  /// Record a StepEvent per request (needed by the invariant checker and
  /// the ICP evaluator; costs memory on long traces).
  bool record_events = false;
  std::uint64_t seed = 1;
};

struct SimResult {
  Metrics metrics;
  std::vector<StepEvent> events;  ///< empty unless record_events
  /// Victim-index work + wall-clock of the request loop (filled by
  /// run_trace; zeros for hand-driven SimulatorSession use).
  PerfCounters perf;
};

/// Step-wise simulation session. Use this directly when the request stream
/// is *adaptive* (the Theorem 1.4 adversary inspects the cache between
/// requests); use run_trace() for a fixed trace.
class SimulatorSession {
 public:
  /// `costs` may be null for cost-oblivious policies; when provided it must
  /// contain one function per tenant.
  SimulatorSession(std::size_t capacity, std::uint32_t num_tenants,
                   ReplacementPolicy& policy,
                   const std::vector<CostFunctionPtr>* costs,
                   SimOptions options = {});

  /// Processes one request and returns what happened.
  StepEvent step(const Request& request);

  /// Forcibly removes a resident page outside the normal request path
  /// (e.g. a multipool tenant migration); the policy observes it as an
  /// eviction. Throws if the page is not resident.
  void invalidate(PageId page);

  [[nodiscard]] const CacheState& cache() const noexcept { return cache_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TimeStep now() const noexcept { return time_; }

  /// Policy index counters overlaid with this session's request/eviction
  /// totals. Wall-clock stays zero — the caller owns the request loop.
  [[nodiscard]] PerfCounters perf_counters() const;

 private:
  CacheState cache_;
  Metrics metrics_;
  ReplacementPolicy& policy_;
  TimeStep time_ = 0;
};

/// Runs `policy` over `trace` with a cache of size `capacity`.
[[nodiscard]] SimResult run_trace(const Trace& trace, std::size_t capacity,
                                  ReplacementPolicy& policy,
                                  const std::vector<CostFunctionPtr>* costs,
                                  SimOptions options = {});

}  // namespace ccc
