#pragma once
/// \file simulator.hpp
/// \brief The request-processing engine of §1.2: every requested page must
///        be resident or fetched; a full cache forces an eviction chosen by
///        the policy. Produces per-tenant metrics and (optionally) the full
///        event schedule consumed by the primal–dual machinery and the
///        convex-program evaluator.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/cache_state.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace ccc {

/// What happened at one time step.
struct StepEvent {
  Request request{};
  bool hit = false;
  /// Set when an eviction was required to make room.
  std::optional<PageId> victim;
  std::optional<TenantId> victim_owner;
};

/// Runtime-verification hook observed by the simulator (the `src/audit`
/// subsystem implements it). Hook invocations are compiled behind the
/// `CCC_AUDIT` CMake option — on in Debug, off in Release — so an audited
/// build shadow-checks the algorithm's invariants while it runs and a
/// release build pays nothing. Attaching an auditor to a session built
/// without `CCC_AUDIT` throws, so audits can never be silently dropped.
class PolicyAuditor {
 public:
  virtual ~PolicyAuditor() = default;

  /// The session was (re)initialized; `ctx` is what the policy saw.
  virtual void on_reset(const PolicyContext& ctx) = 0;

  /// `choose_victim`/`quota_victim` returned `victim`, which is still
  /// resident — budgets can be inspected before the eviction is applied.
  virtual void on_victim_chosen(const Request& request, PageId victim,
                                const CacheState& cache,
                                ReplacementPolicy& policy, TimeStep time) = 0;

  /// One request has been fully processed.
  virtual void on_step(const StepEvent& event, const CacheState& cache,
                       ReplacementPolicy& policy, TimeStep time) = 0;

  /// The request loop is over (run_trace calls this; hand-driven sessions
  /// call SimulatorSession::end_run()).
  virtual void on_run_end(const CacheState& cache,
                          ReplacementPolicy& policy) = 0;
};

/// Observability hook observed by the simulator (the `src/obs` subsystem
/// implements it — see `obs::SimObserver`). Like `PolicyAuditor`, the call
/// sites are compiled behind the `CCC_OBS` CMake option, so a build with
/// `CCC_OBS=OFF` carries no hook call sites on the request hot path at all,
/// and attaching an observer to such a build throws instead of silently
/// recording nothing.
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  /// Invoked on every eviction step and on every latency-sampled step
  /// (see latency_sample_period()); plain hit steps in between are
  /// skipped so observation stays off the fastest path. `latency_ns` is
  /// the wall-clock time of this step when it was sampled for timing, 0
  /// otherwise. `before`/`after` are the *policy's* counters at the
  /// previous invocation and now (plus `requests` = session time), so
  /// deltas bracket the whole gap: summing them gives exact totals for
  /// requests, heap pops, stale skips, rebuilds and rollovers without the
  /// observer holding per-session state — which is what makes one
  /// thread-safe observer shareable across shards. Because every eviction
  /// step is observed and heap_pops/stale_skips only move during
  /// evictions, the delta on an eviction step is that eviction's exact
  /// index work. `evictions` and `wall_seconds` are NOT populated here —
  /// deriving them per step costs O(tenants); use the StepEvent's
  /// `victim` field and the session's own perf_counters() instead.
  virtual void on_step(const StepEvent& event, std::uint64_t latency_ns,
                       const PerfCounters& before,
                       const PerfCounters& after) = 0;

  /// Sharded frontend control path: the capacity split changed from
  /// `before` to `after` (one entry per shard) in `duration_ns`.
  virtual void on_rebalance(std::span<const std::size_t> before,
                            std::span<const std::size_t> after,
                            std::uint64_t duration_ns) {
    (void)before;
    (void)after;
    (void)duration_ns;
  }

  /// Time (two steady_clock reads) only every Nth step; 1 = every step.
  /// The session caches this at attach time — the clock is the dominant
  /// observation cost, counters are recorded on every step regardless.
  [[nodiscard]] virtual std::uint64_t latency_sample_period() const noexcept {
    return 1;
  }
};

struct SimOptions {
  /// Record a StepEvent per request (needed by the invariant checker and
  /// the ICP evaluator; costs memory on long traces).
  bool record_events = false;
  std::uint64_t seed = 1;
  /// Optional runtime-verification hook; requires a `CCC_AUDIT=ON` build
  /// (the session constructor throws otherwise).
  PolicyAuditor* auditor = nullptr;
  /// Optional observability hook; requires a `CCC_OBS=ON` build (the
  /// session constructor throws otherwise).
  StepObserver* step_observer = nullptr;
};

struct SimResult {
  Metrics metrics;
  std::vector<StepEvent> events;  ///< empty unless record_events
  /// Victim-index work + wall-clock of the request loop (filled by
  /// run_trace; zeros for hand-driven SimulatorSession use).
  PerfCounters perf;
};

/// Step-wise simulation session. Use this directly when the request stream
/// is *adaptive* (the Theorem 1.4 adversary inspects the cache between
/// requests); use run_trace() for a fixed trace.
class SimulatorSession {
 public:
  /// `costs` may be null for cost-oblivious policies; when provided it must
  /// contain one function per tenant.
  SimulatorSession(std::size_t capacity, std::uint32_t num_tenants,
                   ReplacementPolicy& policy,
                   const std::vector<CostFunctionPtr>* costs,
                   SimOptions options = {});

  /// Processes one request and returns what happened.
  StepEvent step(const Request& request);

  /// Signals the attached auditor (if any) that the request loop is over,
  /// triggering its end-of-run checks. run_trace() calls this; hand-driven
  /// sessions call it once after their last step. No-op without an auditor.
  void end_run();

  /// Forcibly removes a resident page outside the normal request path
  /// (e.g. a multipool tenant migration); the policy observes it as an
  /// eviction. Throws if the page is not resident.
  void invalidate(PageId page);

  /// Changes the cache capacity mid-run (shard rebalancing). Growing is
  /// free; shrinking drains the excess immediately by asking the policy for
  /// victims with a sentinel `Request{0, 0}` — sound for every policy whose
  /// choose_victim ignores the incoming request (all built-ins except ARC
  /// and the static partitioner, which only use it as a routing hint).
  /// Evictions performed here are recorded in the metrics like any other.
  void resize(std::size_t new_capacity);

  [[nodiscard]] const CacheState& cache() const noexcept { return cache_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] TimeStep now() const noexcept { return time_; }

  /// Policy index counters overlaid with this session's request/eviction
  /// totals. Wall-clock stays zero — the caller owns the request loop.
  [[nodiscard]] PerfCounters perf_counters() const;

 private:
  /// The unobserved request path — the pre-observability hot loop, byte for
  /// byte. step() forwards here directly unless a CCC_OBS build has an
  /// observer attached.
  StepEvent step_impl(const Request& request);
  /// The observed wrapper: invokes the observer on eviction steps and
  /// every `observer_period_`-th (wall-clock-timed) step, passing the
  /// policy counters accumulated since the previous invocation.
  StepEvent step_observed(const Request& request);

  CacheState cache_;
  Metrics metrics_;
  ReplacementPolicy& policy_;
  PolicyAuditor* auditor_ = nullptr;
  StepObserver* observer_ = nullptr;
  std::uint64_t observer_period_ = 1;    ///< cached latency_sample_period()
  std::uint64_t observer_countdown_ = 1; ///< steps until the next timed one
  PerfCounters observer_last_;           ///< counters at the last on_step
  TimeStep time_ = 0;
};

/// Runs `policy` over `trace` with a cache of size `capacity`.
[[nodiscard]] SimResult run_trace(const Trace& trace, std::size_t capacity,
                                  ReplacementPolicy& policy,
                                  const std::vector<CostFunctionPtr>* costs,
                                  SimOptions options = {});

}  // namespace ccc
