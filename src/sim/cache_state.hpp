#pragma once
/// \file cache_state.hpp
/// \brief The shared cache of §1.2: at most `k` resident pages, each owned
///        by a tenant. Pure bookkeeping — replacement decisions live in
///        ReplacementPolicy implementations.

#include "trace/types.hpp"
#include "util/flat_map.hpp"

namespace ccc {

class CacheState {
 public:
  explicit CacheState(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return resident_.size(); }
  [[nodiscard]] bool full() const noexcept { return size() >= capacity_; }
  [[nodiscard]] bool contains(PageId page) const {
    return resident_.contains(page);
  }

  /// Owner of a resident page; throws if not resident.
  [[nodiscard]] TenantId owner(PageId page) const;

  /// Inserts a page. Throws if already resident or if the cache is full
  /// (the simulator must evict first — this enforces the §1.2 constraint).
  void insert(PageId page, TenantId tenant);

  /// Evicts a page; throws if not resident.
  void erase(PageId page);

  /// Changes the capacity (shard rebalancing). The resident set is left
  /// untouched, so after a shrink `size()` may temporarily exceed the new
  /// capacity; the owner must drain via erase() before the next insert()
  /// (SimulatorSession::resize does exactly that).
  void set_capacity(std::size_t capacity);

  /// Hint that `page` is about to be probed (batch probe-ahead). Touches
  /// only the hash-table key line; a no-op on unknown compilers.
  void prefetch(PageId page) const { resident_.prefetch(page); }

  /// Resident pages and their owners (iteration order unspecified).
  [[nodiscard]] const util::FlatMap<TenantId>& pages() const noexcept {
    return resident_;
  }

  void clear() noexcept { resident_.clear(); }

 private:
  std::size_t capacity_;
  util::FlatMap<TenantId> resident_;
};

}  // namespace ccc
