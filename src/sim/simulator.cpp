#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace ccc {

SimulatorSession::SimulatorSession(std::size_t capacity,
                                   std::uint32_t num_tenants,
                                   ReplacementPolicy& policy,
                                   const std::vector<CostFunctionPtr>* costs,
                                   SimOptions options)
    : cache_(capacity), metrics_(num_tenants), policy_(policy),
      auditor_(options.auditor), observer_(options.step_observer) {
  if (costs != nullptr)
    CCC_REQUIRE(costs->size() >= num_tenants,
                "need one cost function per tenant");
#ifndef CCC_AUDIT_ENABLED
  CCC_REQUIRE(auditor_ == nullptr,
              "SimOptions.auditor needs a build with -DCCC_AUDIT=ON "
              "(audit hooks are compiled out of this binary)");
#endif
#ifdef CCC_OBS_ENABLED
  if (observer_ != nullptr) {
    observer_period_ = std::max<std::uint64_t>(
        1, observer_->latency_sample_period());
    observer_countdown_ = 1;  // time the very first step
  }
#else
  CCC_REQUIRE(observer_ == nullptr,
              "SimOptions.step_observer needs a build with -DCCC_OBS=ON "
              "(observability hooks are compiled out of this binary)");
#endif
  PolicyContext ctx;
  ctx.capacity = capacity;
  ctx.num_tenants = num_tenants;
  ctx.costs = costs;
  ctx.cache = &cache_;
  ctx.seed = options.seed;
  policy_.reset(ctx);
#ifdef CCC_AUDIT_ENABLED
  if (auditor_ != nullptr) auditor_->on_reset(ctx);
#endif
}

StepEvent SimulatorSession::step(const Request& request) {
#ifdef CCC_OBS_ENABLED
  if (observer_ != nullptr) return step_observed(request);
#endif
  return step_impl(request);
}

StepEvent SimulatorSession::step_observed(const Request& request) {
#ifdef CCC_OBS_ENABLED
  // The observer is invoked only on eviction steps and latency-sampled
  // steps; a hit-path step pays one countdown decrement and a branch.
  // `observer_last_` carries the policy counters from the previous
  // invocation, so deltas bracket the whole gap and counter totals stay
  // exact. Per-eviction index work stays exact too: heap_pops and
  // stale_skips only move on eviction steps, every one of which is
  // observed. (The *policy's* counters, not the session-level
  // perf_counters() — that one derives its evictions field by summing
  // per-tenant metrics, which is O(tenants) and ruinous per step.)
  std::uint64_t latency_ns = 0;
  StepEvent event;
  const bool sampled = (--observer_countdown_ == 0);
  if (sampled) {
    observer_countdown_ = observer_period_;
    const auto start = std::chrono::steady_clock::now();
    event = step_impl(request);
    const auto stop = std::chrono::steady_clock::now();
    latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
  } else {
    event = step_impl(request);
  }
  if (sampled || event.victim.has_value()) {
    PerfCounters after = policy_.perf_counters();
    after.requests = time_;
    observer_->on_step(event, latency_ns, observer_last_, after);
    observer_last_ = after;
  }
  return event;
#else
  return step_impl(request);  // unreachable: attach throws without CCC_OBS
#endif
}

StepEvent SimulatorSession::step_impl(const Request& request) {
  CCC_REQUIRE(request.tenant < metrics_.num_tenants(),
              "request tenant out of range");
  StepEvent event;
  event.request = request;

  if (cache_.contains(request.page)) {
    event.hit = true;
    metrics_.record_hit(request.tenant);
    policy_.on_hit(request, time_);
  } else {
    metrics_.record_miss(request.tenant);
    std::optional<PageId> victim;
    if (cache_.full())
      victim = policy_.choose_victim(request, time_);
    else
      victim = policy_.quota_victim(request, time_);
    if (victim.has_value()) {
      CCC_CHECK(cache_.contains(*victim),
                "policy chose a non-resident victim");
#ifdef CCC_AUDIT_ENABLED
      if (auditor_ != nullptr)
        auditor_->on_victim_chosen(request, *victim, cache_, policy_, time_);
#endif
      const TenantId victim_owner = cache_.owner(*victim);
      cache_.erase(*victim);
      metrics_.record_eviction(victim_owner);
      policy_.on_evict(*victim, victim_owner, time_);
      event.victim = victim;
      event.victim_owner = victim_owner;
    }
    cache_.insert(request.page, request.tenant);
    policy_.on_insert(request, time_);
  }
#ifdef CCC_AUDIT_ENABLED
  if (auditor_ != nullptr) auditor_->on_step(event, cache_, policy_, time_);
#endif
  ++time_;
  return event;
}

void SimulatorSession::end_run() {
#ifdef CCC_AUDIT_ENABLED
  if (auditor_ != nullptr) auditor_->on_run_end(cache_, policy_);
#endif
}

PerfCounters SimulatorSession::perf_counters() const {
  PerfCounters perf = policy_.perf_counters();
  perf.requests = time_;
  perf.evictions = metrics_.total_evictions();
  return perf;
}

void SimulatorSession::resize(std::size_t new_capacity) {
  cache_.set_capacity(new_capacity);
  while (cache_.size() > new_capacity) {
    const PageId victim = policy_.choose_victim(Request{0, 0}, time_);
    CCC_CHECK(cache_.contains(victim), "policy chose a non-resident victim");
    const TenantId owner = cache_.owner(victim);
    cache_.erase(victim);
    metrics_.record_eviction(owner);
    policy_.on_evict(victim, owner, time_);
  }
}

void SimulatorSession::invalidate(PageId page) {
  const TenantId owner = cache_.owner(page);
  cache_.erase(page);
  metrics_.record_eviction(owner);
  policy_.on_evict(page, owner, time_);
}

SimResult run_trace(const Trace& trace, std::size_t capacity,
                    ReplacementPolicy& policy,
                    const std::vector<CostFunctionPtr>* costs,
                    SimOptions options) {
  SimulatorSession session(capacity, trace.num_tenants(), policy, costs,
                           options);
  policy.preview(trace);
  SimResult result{Metrics(trace.num_tenants()), {}, {}};
  if (options.record_events) result.events.reserve(trace.size());
  const auto start = std::chrono::steady_clock::now();
  for (const Request& request : trace) {
    StepEvent event = session.step(request);
    if (options.record_events) result.events.push_back(std::move(event));
  }
  const auto stop = std::chrono::steady_clock::now();
  session.end_run();
  result.metrics = session.metrics();
  result.perf = session.perf_counters();
  result.perf.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace ccc
