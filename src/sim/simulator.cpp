#include "sim/simulator.hpp"

#include <chrono>

#include "util/check.hpp"

namespace ccc {

SimulatorSession::SimulatorSession(std::size_t capacity,
                                   std::uint32_t num_tenants,
                                   ReplacementPolicy& policy,
                                   const std::vector<CostFunctionPtr>* costs,
                                   SimOptions options)
    : cache_(capacity), metrics_(num_tenants), policy_(policy),
      auditor_(options.auditor) {
  if (costs != nullptr)
    CCC_REQUIRE(costs->size() >= num_tenants,
                "need one cost function per tenant");
#ifndef CCC_AUDIT_ENABLED
  CCC_REQUIRE(auditor_ == nullptr,
              "SimOptions.auditor needs a build with -DCCC_AUDIT=ON "
              "(audit hooks are compiled out of this binary)");
#endif
  PolicyContext ctx;
  ctx.capacity = capacity;
  ctx.num_tenants = num_tenants;
  ctx.costs = costs;
  ctx.cache = &cache_;
  ctx.seed = options.seed;
  policy_.reset(ctx);
#ifdef CCC_AUDIT_ENABLED
  if (auditor_ != nullptr) auditor_->on_reset(ctx);
#endif
}

StepEvent SimulatorSession::step(const Request& request) {
  CCC_REQUIRE(request.tenant < metrics_.num_tenants(),
              "request tenant out of range");
  StepEvent event;
  event.request = request;

  if (cache_.contains(request.page)) {
    event.hit = true;
    metrics_.record_hit(request.tenant);
    policy_.on_hit(request, time_);
  } else {
    metrics_.record_miss(request.tenant);
    std::optional<PageId> victim;
    if (cache_.full())
      victim = policy_.choose_victim(request, time_);
    else
      victim = policy_.quota_victim(request, time_);
    if (victim.has_value()) {
      CCC_CHECK(cache_.contains(*victim),
                "policy chose a non-resident victim");
#ifdef CCC_AUDIT_ENABLED
      if (auditor_ != nullptr)
        auditor_->on_victim_chosen(request, *victim, cache_, policy_, time_);
#endif
      const TenantId victim_owner = cache_.owner(*victim);
      cache_.erase(*victim);
      metrics_.record_eviction(victim_owner);
      policy_.on_evict(*victim, victim_owner, time_);
      event.victim = victim;
      event.victim_owner = victim_owner;
    }
    cache_.insert(request.page, request.tenant);
    policy_.on_insert(request, time_);
  }
#ifdef CCC_AUDIT_ENABLED
  if (auditor_ != nullptr) auditor_->on_step(event, cache_, policy_, time_);
#endif
  ++time_;
  return event;
}

void SimulatorSession::end_run() {
#ifdef CCC_AUDIT_ENABLED
  if (auditor_ != nullptr) auditor_->on_run_end(cache_, policy_);
#endif
}

PerfCounters SimulatorSession::perf_counters() const {
  PerfCounters perf = policy_.perf_counters();
  perf.requests = time_;
  perf.evictions = metrics_.total_evictions();
  return perf;
}

void SimulatorSession::resize(std::size_t new_capacity) {
  cache_.set_capacity(new_capacity);
  while (cache_.size() > new_capacity) {
    const PageId victim = policy_.choose_victim(Request{0, 0}, time_);
    CCC_CHECK(cache_.contains(victim), "policy chose a non-resident victim");
    const TenantId owner = cache_.owner(victim);
    cache_.erase(victim);
    metrics_.record_eviction(owner);
    policy_.on_evict(victim, owner, time_);
  }
}

void SimulatorSession::invalidate(PageId page) {
  const TenantId owner = cache_.owner(page);
  cache_.erase(page);
  metrics_.record_eviction(owner);
  policy_.on_evict(page, owner, time_);
}

SimResult run_trace(const Trace& trace, std::size_t capacity,
                    ReplacementPolicy& policy,
                    const std::vector<CostFunctionPtr>* costs,
                    SimOptions options) {
  SimulatorSession session(capacity, trace.num_tenants(), policy, costs,
                           options);
  policy.preview(trace);
  SimResult result{Metrics(trace.num_tenants()), {}, {}};
  if (options.record_events) result.events.reserve(trace.size());
  const auto start = std::chrono::steady_clock::now();
  for (const Request& request : trace) {
    StepEvent event = session.step(request);
    if (options.record_events) result.events.push_back(std::move(event));
  }
  const auto stop = std::chrono::steady_clock::now();
  session.end_run();
  result.metrics = session.metrics();
  result.perf = session.perf_counters();
  result.perf.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace ccc
