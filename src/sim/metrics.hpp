#pragma once
/// \file metrics.hpp
/// \brief Per-tenant accounting of hits, misses (fetches) and evictions,
///        and the two cost accountings discussed in §2.1.
///
/// The paper charges *evictions* and closes the books with a cache flush so
/// that evictions equal misses per tenant. We track both: `misses` (page
/// fetches of a tenant's pages — the quantity a_i(σ) in Theorem 1.1) and
/// `evictions` (the ICP objective's x-variables). On a flushed trace they
/// coincide; on an unflushed trace they differ by the ≤ k pages resident at
/// the end.

#include <vector>

#include "cost/cost_function.hpp"
#include "trace/types.hpp"

namespace ccc {

/// Lightweight performance counters for one simulation run: how much work
/// the policy's victim index did, and how fast the run was. Policies that
/// maintain heaps report pops and lazy-invalidation skips; the simulator
/// fills in requests, evictions and wall-clock time. All fields are plain
/// counts so recording them costs one increment on the hot path.
struct PerfCounters {
  std::uint64_t requests = 0;        ///< requests processed
  std::uint64_t evictions = 0;       ///< victims chosen (== index queries)
  std::uint64_t heap_pops = 0;       ///< entries popped from index heaps
  std::uint64_t stale_skips = 0;     ///< popped entries that were stale
  std::uint64_t index_rebuilds = 0;  ///< full index rebuilds (window/compact)
  std::uint64_t window_rollovers = 0;  ///< accounting-window boundary crossings
  std::uint64_t lockfree_hits = 0;   ///< hits served by the optimistic path
  double wall_seconds = 0.0;         ///< wall-clock time of the request loop

  /// Adds another run's counters into this one — *every* field, including
  /// `wall_seconds` (dropping it is exactly the aggregation bug this method
  /// exists to prevent). Summed wall-clock means "total processing time
  /// across the merged runs": for runs executed back to back it equals the
  /// elapsed time; for runs executed in parallel it is the combined
  /// CPU-side time, an upper bound on the elapsed wall-clock (which the
  /// parallel driver measures around its own section and overwrites).
  void merge(const PerfCounters& other) noexcept;

  /// Nanoseconds of wall-clock per request (0 when nothing ran).
  [[nodiscard]] double ns_per_request() const noexcept;
  /// Wall-clock seconds per one million requests (0 when nothing ran).
  [[nodiscard]] double seconds_per_million() const noexcept;
  /// Average stale entries skipped per eviction — the price of laziness.
  [[nodiscard]] double stale_skips_per_eviction() const noexcept;
};

class Metrics {
 public:
  explicit Metrics(std::uint32_t num_tenants);

  void record_hit(TenantId tenant);
  /// Adds `count` hits at once (folding in a shard's lock-free hit tally).
  void record_hits(TenantId tenant, std::uint64_t count);
  void record_miss(TenantId tenant);
  void record_eviction(TenantId tenant);

  /// Adds another run's per-tenant counts into this one (cross-shard
  /// aggregation). Throws if the tenant counts differ.
  void merge(const Metrics& other);

  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return static_cast<std::uint32_t>(hits_.size());
  }
  [[nodiscard]] std::uint64_t hits(TenantId tenant) const;
  [[nodiscard]] std::uint64_t misses(TenantId tenant) const;
  [[nodiscard]] std::uint64_t evictions(TenantId tenant) const;

  [[nodiscard]] std::uint64_t total_hits() const noexcept;
  [[nodiscard]] std::uint64_t total_misses() const noexcept;
  [[nodiscard]] std::uint64_t total_evictions() const noexcept;

  [[nodiscard]] const std::vector<std::uint64_t>& miss_vector() const noexcept {
    return misses_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& eviction_vector()
      const noexcept {
    return evictions_;
  }

 private:
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::vector<std::uint64_t> evictions_;
};

/// Σ_i f_i(x_i) — the paper's objective applied to a per-tenant count
/// vector. `costs` may be longer than `counts` is wide; extra tenants
/// (e.g. the zero-cost flush tenant) must carry explicit cost functions.
[[nodiscard]] double total_cost(const std::vector<std::uint64_t>& counts,
                                const std::vector<CostFunctionPtr>& costs);

/// Builds n identical cost functions (one clone per tenant).
[[nodiscard]] std::vector<CostFunctionPtr> uniform_costs(
    const CostFunction& prototype, std::uint32_t num_tenants);

}  // namespace ccc
