#include "sim/cache_state.hpp"

#include "util/check.hpp"

namespace ccc {

CacheState::CacheState(std::size_t capacity) : capacity_(capacity) {
  CCC_REQUIRE(capacity > 0, "cache capacity must be positive");
  resident_.reserve(capacity);
}

TenantId CacheState::owner(PageId page) const {
  const auto it = resident_.find(page);
  CCC_REQUIRE(it != resident_.end(), "page is not resident");
  return it->second;
}

void CacheState::insert(PageId page, TenantId tenant) {
  CCC_REQUIRE(!full(), "inserting into a full cache — evict first");
  CCC_REQUIRE(!resident_.contains(page), "page is already resident");
  resident_.insert_or_assign(page, tenant);
}

void CacheState::erase(PageId page) {
  const auto erased = resident_.erase(page);
  CCC_REQUIRE(erased == 1, "evicting a page that is not resident");
}

void CacheState::set_capacity(std::size_t capacity) {
  CCC_REQUIRE(capacity > 0, "cache capacity must be positive");
  capacity_ = capacity;
}

}  // namespace ccc
