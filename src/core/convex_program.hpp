#pragma once
/// \file convex_program.hpp
/// \brief The integer convex program (ICP) of Fig. 1 and its relaxation
///        (CP), built from a request sequence.
///
/// Variables x(p,j) ∈ {0,1} (relaxed to [0,1]) say whether page p is
/// evicted inside its j-th inter-request interval. Constraints, one per
/// time t: Σ_{p ∈ B(t)\{p_t}} x(p, j(p,t)) ≥ |B(t)| − k — all but k of the
/// distinct pages seen so far must be out of the cache. The objective is
/// Σ_i f_i(Σ_{p∈P_i} Σ_j x(p,j)).
///
/// The paper never *solves* this program (the algorithm only uses its
/// Lagrangian to guide evictions); here it exists so tests and experiments
/// can (a) certify that every simulated schedule induces a feasible ICP
/// point whose objective equals the schedule's eviction cost, and (b)
/// evaluate fractional points of the relaxation. Fig. 4's (ICP-h)/(CP-h)
/// is the same object with `k` replaced by `h`.

#include <unordered_map>
#include <vector>

#include "cost/cost_function.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ccc {

/// Static interval structure of a trace (independent of any algorithm).
class ConvexProgram {
 public:
  /// Builds the interval/constraint structure for `trace` with cache size
  /// `cache_size` (k for Fig. 1, h for Fig. 4).
  ConvexProgram(const Trace& trace, std::size_t cache_size);

  /// Total number of x(p,j) variables (= number of requests).
  [[nodiscard]] std::size_t num_variables() const noexcept {
    return variable_of_.size();
  }
  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_size_; }

  /// Index of variable x(p, j), j 1-based; throws for unknown pairs.
  [[nodiscard]] std::size_t variable(PageId page, std::uint32_t j) const;

  /// Variable active at time t for page p — x(p, j(p,t)); requires p ∈ B(t).
  [[nodiscard]] std::size_t variable_at(PageId page, TimeStep t) const;

  /// Feasibility of an assignment (values in [0,1]) with slack `tolerance`.
  /// Checks every time-t constraint of Fig. 1.
  [[nodiscard]] bool feasible(const std::vector<double>& x,
                              double tolerance = 1e-9) const;

  /// Minimum constraint slack (negative ⇒ infeasible by that amount).
  [[nodiscard]] double min_slack(const std::vector<double>& x) const;

  /// Objective Σ_i f_i(Σ x over tenant i's variables).
  [[nodiscard]] double objective(
      const std::vector<double>& x,
      const std::vector<CostFunctionPtr>& costs) const;

  /// Per-tenant variable mass Σ_{p∈P_i} Σ_j x(p,j) (fractional misses).
  [[nodiscard]] std::vector<double> tenant_mass(
      const std::vector<double>& x) const;

  /// Converts a simulated schedule into the induced 0/1 assignment:
  /// x(p,j) = 1 iff p was evicted during its j-th interval.
  [[nodiscard]] std::vector<double> assignment_from_events(
      const std::vector<StepEvent>& events) const;

 private:
  struct VarKey {
    PageId page;
    std::uint32_t j;
    friend bool operator==(const VarKey&, const VarKey&) = default;
  };
  struct VarKeyHash {
    std::size_t operator()(const VarKey& k) const noexcept {
      return std::hash<PageId>()(k.page) * 1000003u ^ k.j;
    }
  };

  const Trace& trace_;
  std::size_t cache_size_;
  std::unordered_map<VarKey, std::size_t, VarKeyHash> variable_of_;
  std::vector<TenantId> tenant_of_variable_;
  /// For each time t: the list of active variables of B(t)\{p_t} and the
  /// right-hand side |B(t)| − k (only times with rhs > 0 are stored).
  struct Constraint {
    TimeStep time;
    std::vector<std::size_t> variables;
    double rhs;
  };
  std::vector<Constraint> constraints_;
};

}  // namespace ccc
