#pragma once
/// \file invariants.hpp
/// \brief Machine-checkable form of the §2.3 algorithm invariants — the
///        content of Lemma 2.1, executed instead of hand-proved.
///
/// Given the transcript of an ALG-CONT run, verifies:
///   (1a) primal feasibility — at every time t, at most k pages resident
///        and the requested page resident after its step;
///   (1b) x(p,j) ∈ {0,1} (structural, by construction);
///   (1c) y, z ≥ 0;
///   (2a) z(p,j) > 0 only if x(p,j) = 1;
///   (2b) for every evicted interval, evaluated at its set time t̂:
///        f'_{i(p)}(m(i(p), t̂)) − Σ_interval y_t + z(p,j) = 0;
///   (3a) for every interval, at the end of the run:
///        f'_{i(p)}(m(i(p), T)) − Σ_interval y_t + z(p,j) ≥ 0.

#include <string>
#include <vector>

#include "core/primal_dual.hpp"

namespace ccc {

/// Ignoring a report would silently discard detected invariant violations,
/// hence [[nodiscard]] on the type itself.
struct [[nodiscard]] InvariantReport {
  bool primal_feasible = true;         // (1a)
  bool duals_nonnegative = true;       // (1c)
  bool slackness_z = true;             // (2a)
  double max_slackness_violation = 0.0;  // (2b): max |lhs|
  double min_gradient_slack = 0.0;     // (3a): min lhs (>= -tol required)
  std::vector<std::string> failures;   // human-readable diagnostics

  [[nodiscard]] bool ok(double tolerance = 1e-7) const;
};

/// Verifies the invariants of `run` against the trace it was produced from.
[[nodiscard]] InvariantReport check_invariants(
    const PrimalDualRun& run, const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs);

}  // namespace ccc
