#include "core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ccc {

double curvature_alpha(const std::vector<CostFunctionPtr>& costs,
                       double x_max) {
  CCC_REQUIRE(!costs.empty(), "need at least one cost function");
  double alpha = 0.0;
  for (const auto& f : costs) alpha = std::max(alpha, f->alpha(x_max));
  return alpha;
}

double theorem11_bound(const std::vector<CostFunctionPtr>& costs,
                       const std::vector<std::uint64_t>& opt_misses,
                       std::size_t k, double alpha) {
  CCC_REQUIRE(costs.size() >= opt_misses.size(),
              "need one cost function per tenant");
  double bound = 0.0;
  for (std::size_t i = 0; i < opt_misses.size(); ++i)
    bound += costs[i]->value(alpha * static_cast<double>(k) *
                             static_cast<double>(opt_misses[i]));
  return bound;
}

double corollary12_factor(double beta, std::size_t k) {
  CCC_REQUIRE(beta >= 1.0, "Corollary 1.2 needs beta >= 1");
  return std::pow(beta, beta) * std::pow(static_cast<double>(k), beta);
}

double theorem13_bound(const std::vector<CostFunctionPtr>& costs,
                       const std::vector<std::uint64_t>& opt_misses,
                       std::size_t k, std::size_t h, double alpha) {
  CCC_REQUIRE(h >= 1 && h <= k, "Theorem 1.3 needs 1 <= h <= k");
  const double blowup = alpha * static_cast<double>(k) /
                        static_cast<double>(k - h + 1);
  double bound = 0.0;
  for (std::size_t i = 0; i < opt_misses.size(); ++i)
    bound += costs[i]->value(blowup * static_cast<double>(opt_misses[i]));
  return bound;
}

double theorem14_lower_factor(std::uint32_t n, double beta) {
  CCC_REQUIRE(n >= 2, "the lower-bound instance needs at least two tenants");
  CCC_REQUIRE(beta >= 1.0, "Theorem 1.4 needs beta >= 1");
  return std::pow(static_cast<double>(n) / 4.0, beta);
}

double claim23_residual(const CostFunction& f, const std::vector<double>& xs,
                        double alpha) {
  double prefix = 0.0;
  double rhs = 0.0;
  for (const double x : xs) {
    CCC_REQUIRE(x >= 0.0, "Claim 2.3 needs non-negative increments");
    prefix += x;
    rhs += x * f.derivative(prefix);
  }
  const double lhs = f.derivative(prefix) * prefix;
  return alpha * rhs - lhs;
}

}  // namespace ccc
