#pragma once
/// \file primal_dual.hpp
/// \brief ALG-CONT (paper Fig. 2), simulated exactly.
///
/// The paper's continuous algorithm raises the dual variable y_t until the
/// Lagrangian residual of some cached page hits zero, raising z(p,j) of
/// every evicted-interval page at the same rate. All continuous increases
/// collapse to discrete amounts (§2.5): in one request step y_t rises by
/// exactly the minimum residual
///     residual(p) = f'_{i(p)}(m(i(p)) + 1) − Σ_{τ ∈ interval(p)} y_τ
/// over cached pages, and that page is evicted. This simulator tracks the
/// primal variables x(p,j), the duals y_t and z(p,j), the per-interval
/// y-mass, and the tenant miss counts — the complete certificate needed to
/// machine-check the §2.3 invariants (Lemma 2.1) and to feed Lemma 2.2.
///
/// The eviction sequence provably coincides with ALG-DISCRETE's: a page's
/// budget B(p) in Fig. 3 *is* its residual here (y_t rises by B(victim) per
/// eviction; the debit/bump updates mirror the residual dynamics). A
/// property test asserts this equality step by step.

#include <optional>
#include <vector>

#include "cost/cost_function.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ccc {

/// One inter-request interval (p, j): from the j-th request of p (time
/// `start`) until its (j+1)-st request (`end`, or trace end if absent).
struct IntervalRecord {
  PageId page = 0;
  TenantId tenant = 0;
  std::uint32_t index = 0;            ///< j, 1-based as in the paper
  TimeStep start = 0;                 ///< t(p,j)
  std::optional<TimeStep> end;        ///< t(p,j+1); nullopt = open at T
  bool evicted = false;               ///< x(p,j)
  std::optional<TimeStep> evict_time; ///< s(p,j), set when evicted
  double y_in_interval = 0.0;         ///< Σ_{t=t(p,j)+1}^{t(p,j+1)−1} y_t
  double z = 0.0;                     ///< z(p,j)
  /// m(i(p), t̂) — the tenant's eviction count immediately *after* this
  /// interval's eviction (the argument of f' in invariant 2b).
  std::uint64_t m_at_set = 0;
};

/// Complete primal–dual transcript of one ALG-CONT run.
struct PrimalDualRun {
  std::vector<IntervalRecord> intervals;
  std::vector<double> y;               ///< y_t per request step
  std::vector<std::uint64_t> final_m;  ///< m(i,T) per tenant (evictions)
  std::vector<StepEvent> events;       ///< hit/miss/victim per step
  Metrics metrics;                     ///< standard per-tenant accounting

  explicit PrimalDualRun(std::uint32_t num_tenants) : metrics(num_tenants) {}

  [[nodiscard]] double y_total() const;
};

/// Runs ALG-CONT over `trace` with cache size `capacity`. `costs` must hold
/// one function per tenant; the guarantee needs them convex, but the
/// simulation itself does not (§2.5).
[[nodiscard]] PrimalDualRun run_alg_cont(
    const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs);

}  // namespace ccc
