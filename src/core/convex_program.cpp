#include "core/convex_program.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ccc {

ConvexProgram::ConvexProgram(const Trace& trace, std::size_t cache_size)
    : trace_(trace), cache_size_(cache_size) {
  CCC_REQUIRE(cache_size > 0, "cache size must be positive");

  // Pass 1: create one variable per request (page p's j-th request opens
  // interval (p,j)) and track each page's current interval.
  std::unordered_map<PageId, std::uint32_t> request_count;
  std::unordered_map<PageId, std::size_t> current_variable;
  // Pass 2 is fused: constraints reference the *current* variable of every
  // page in B(t) except p_t.
  std::vector<PageId> seen_order;  // B(t) in first-seen order

  for (TimeStep t = 0; t < trace.size(); ++t) {
    const Request& req = trace[t];
    const std::uint32_t j = ++request_count[req.page];
    if (j == 1) seen_order.push_back(req.page);
    const std::size_t var = tenant_of_variable_.size();
    variable_of_.emplace(VarKey{req.page, j}, var);
    tenant_of_variable_.push_back(req.tenant);
    current_variable[req.page] = var;

    const double rhs =
        static_cast<double>(seen_order.size()) - static_cast<double>(cache_size);
    if (rhs > 0.0) {
      Constraint c;
      c.time = t;
      c.rhs = rhs;
      c.variables.reserve(seen_order.size() - 1);
      for (const PageId page : seen_order)
        if (page != req.page) c.variables.push_back(current_variable.at(page));
      constraints_.push_back(std::move(c));
    }
  }
}

std::size_t ConvexProgram::variable(PageId page, std::uint32_t j) const {
  const auto it = variable_of_.find(VarKey{page, j});
  CCC_REQUIRE(it != variable_of_.end(), "unknown (page, j) pair");
  return it->second;
}

std::size_t ConvexProgram::variable_at(PageId page, TimeStep t) const {
  CCC_REQUIRE(t < trace_.size(), "time out of range");
  // j(p,t): the interval following p's last request at or before t.
  std::uint32_t j = 0;
  for (TimeStep s = 0; s <= t; ++s)
    if (trace_[s].page == page) ++j;
  CCC_REQUIRE(j > 0, "page not yet requested at time t");
  return variable(page, j);
}

bool ConvexProgram::feasible(const std::vector<double>& x,
                             double tolerance) const {
  return min_slack(x) >= -tolerance;
}

double ConvexProgram::min_slack(const std::vector<double>& x) const {
  CCC_REQUIRE(x.size() == num_variables(), "assignment arity mismatch");
  for (const double v : x)
    CCC_REQUIRE(v >= -1e-12 && v <= 1.0 + 1e-12,
                "assignment values must lie in [0,1]");
  double min_slack = std::numeric_limits<double>::infinity();
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const std::size_t var : c.variables) lhs += x[var];
    min_slack = std::min(min_slack, lhs - c.rhs);
  }
  return constraints_.empty() ? 0.0 : min_slack;
}

std::vector<double> ConvexProgram::tenant_mass(
    const std::vector<double>& x) const {
  CCC_REQUIRE(x.size() == num_variables(), "assignment arity mismatch");
  std::vector<double> mass(trace_.num_tenants(), 0.0);
  for (std::size_t v = 0; v < x.size(); ++v)
    mass[tenant_of_variable_[v]] += x[v];
  return mass;
}

double ConvexProgram::objective(const std::vector<double>& x,
                                const std::vector<CostFunctionPtr>& costs)
    const {
  const std::vector<double> mass = tenant_mass(x);
  CCC_REQUIRE(costs.size() >= mass.size(),
              "need one cost function per tenant");
  double total = 0.0;
  for (std::size_t i = 0; i < mass.size(); ++i)
    total += costs[i]->value(mass[i]);
  return total;
}

std::vector<double> ConvexProgram::assignment_from_events(
    const std::vector<StepEvent>& events) const {
  CCC_REQUIRE(events.size() == trace_.size(),
              "event schedule must cover the whole trace");
  std::vector<double> x(num_variables(), 0.0);
  std::unordered_map<PageId, std::uint32_t> request_count;
  std::unordered_map<PageId, std::size_t> current_variable;
  for (TimeStep t = 0; t < events.size(); ++t) {
    const Request& req = events[t].request;
    CCC_REQUIRE(req.page == trace_[t].page, "events do not match the trace");
    current_variable[req.page] = variable(req.page, ++request_count[req.page]);
    if (events[t].victim.has_value()) {
      const auto it = current_variable.find(*events[t].victim);
      CCC_REQUIRE(it != current_variable.end(),
                  "victim was never requested before its eviction");
      x[it->second] = 1.0;
    }
  }
  return x;
}

}  // namespace ccc
