#include "core/invariants.hpp"

#include <cmath>
#include <unordered_set>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

bool InvariantReport::ok(double tolerance) const {
  return primal_feasible && duals_nonnegative && slackness_z &&
         max_slackness_violation <= tolerance &&
         min_gradient_slack >= -tolerance;
}

InvariantReport check_invariants(const PrimalDualRun& run, const Trace& trace,
                                 std::size_t capacity,
                                 const std::vector<CostFunctionPtr>& costs) {
  CCC_REQUIRE(run.events.size() == trace.size(),
              "transcript length must match the trace");
  InvariantReport report;

  // (1a) Replay the schedule: residency never exceeds k and the requested
  // page is resident at the end of its step. This is exactly the ICP
  // constraint Σ_{p∈B(t)\{p_t}} x(p, j(p,t)) ≥ |B(t)| − k restated in terms
  // of cache occupancy.
  std::unordered_set<PageId> cache;
  for (TimeStep t = 0; t < run.events.size(); ++t) {
    const StepEvent& event = run.events[t];
    if (event.request.page != trace[t].page) {
      report.primal_feasible = false;
      report.failures.push_back("event/trace mismatch at t=" +
                                std::to_string(t));
      break;
    }
    if (event.victim.has_value()) {
      if (!cache.erase(*event.victim)) {
        report.primal_feasible = false;
        report.failures.push_back("evicted a non-resident page at t=" +
                                  std::to_string(t));
      }
    }
    cache.insert(event.request.page);
    if (cache.size() > capacity) {
      report.primal_feasible = false;
      report.failures.push_back("cache overfull at t=" + std::to_string(t));
    }
  }

  // (1c) Dual feasibility.
  for (TimeStep t = 0; t < run.y.size(); ++t)
    if (run.y[t] < 0.0) {
      report.duals_nonnegative = false;
      report.failures.push_back("y_" + std::to_string(t) + " = " +
                                format_compact(run.y[t]) + " < 0");
    }

  for (const IntervalRecord& rec : run.intervals) {
    if (rec.z < 0.0) {
      report.duals_nonnegative = false;
      report.failures.push_back("z < 0 on interval of page " +
                                std::to_string(rec.page));
    }
    // (2a) z only on evicted intervals.
    if (rec.z > 0.0 && !rec.evicted) {
      report.slackness_z = false;
      report.failures.push_back("z > 0 with x = 0 on page " +
                                std::to_string(rec.page));
    }
    const CostFunction& f = *costs[rec.tenant];
    // (2b) Tight residual at set time, preserved to the end of the run.
    if (rec.evicted) {
      const double lhs = f.derivative(static_cast<double>(rec.m_at_set)) -
                         rec.y_in_interval + rec.z;
      report.max_slackness_violation =
          std::max(report.max_slackness_violation, std::fabs(lhs));
    }
    // (3a) Gradient condition with the *final* miss count (the step where
    // convexity enters: f' is non-decreasing, so replacing m_at_set with
    // m(i,T) can only increase the residual).
    const double lhs_final =
        f.derivative(static_cast<double>(run.final_m[rec.tenant])) -
        rec.y_in_interval + rec.z;
    report.min_gradient_slack =
        std::min(report.min_gradient_slack, lhs_final);
  }
  return report;
}

}  // namespace ccc
