#include "core/fractional.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace ccc {

namespace {

/// Per-interval state of a page currently "known" (in B(t)).
struct PageState {
  TenantId tenant = 0;
  double dual_mass = 0.0;  ///< Y(q): y accumulated in the current interval
  double x = 0.0;          ///< fraction outside the cache
  double weight = 1.0;     ///< w_q frozen at interval start (or adapted)
};

}  // namespace

FractionalResult run_fractional_caching(
    const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs, FractionalOptions options) {
  CCC_REQUIRE(capacity > 0, "cache capacity must be positive");
  CCC_REQUIRE(costs.size() >= trace.num_tenants(),
              "need one cost function per tenant");

  FractionalResult result;
  result.tenant_mass.assign(trace.num_tenants(), 0.0);

  std::unordered_map<PageId, PageState> pages;
  const double k = static_cast<double>(capacity);
  const double c = std::log(1.0 + k);

  const auto weight_of = [&](TenantId tenant) {
    const double base =
        options.adaptive_weights
            ? costs[tenant]->derivative(result.tenant_mass[tenant] + 1.0)
            : costs[tenant]->derivative(1.0);
    return std::max(base, 1e-9);
  };

  const auto profile = [&](const PageState& q, double extra_dual) {
    return std::min(1.0, (std::exp(c * (q.dual_mass + extra_dual) / q.weight) -
                          1.0) /
                             k);
  };

  for (const Request& req : trace) {
    // The requested page is fetched in full; the fetched fraction counts as
    // evicted-then-fetched mass for its tenant (the miss analogue) and pays
    // movement cost at the current weight.
    auto it = pages.find(req.page);
    if (it == pages.end()) {
      PageState fresh;
      fresh.tenant = req.tenant;
      fresh.weight = weight_of(req.tenant);
      it = pages.emplace(req.page, fresh).first;
      // Cold fetch: a full unit of miss mass.
      result.tenant_mass[req.tenant] += 1.0;
      result.movement_cost += it->second.weight;
    } else {
      const double outside = it->second.x;
      if (outside > 0.0) {
        result.tenant_mass[req.tenant] += outside;
        result.movement_cost += it->second.weight * outside;
      }
      // New interval: reset the profile.
      it->second.dual_mass = 0.0;
      it->second.x = 0.0;
      it->second.weight = weight_of(req.tenant);
    }

    // Packing constraint: Σ_{q≠p_t} x(q) ≥ |B(t)| − k.
    const double rhs = static_cast<double>(pages.size()) - k;
    if (rhs <= 0.0) continue;

    const auto total_outside = [&](double extra_dual) {
      double sum = 0.0;
      for (const auto& [page, q] : pages) {
        if (page == req.page) continue;
        sum += profile(q, extra_dual);
      }
      return sum;
    };

    if (total_outside(0.0) >= rhs - options.tolerance) continue;

    // Raise y_t until the constraint is tight: the profile is continuous
    // and strictly increasing until saturation, so binary search converges.
    double lo = 0.0, hi = 1.0;
    while (total_outside(hi) < rhs - options.tolerance) {
      hi *= 2.0;
      CCC_CHECK(hi < 1e18, "fractional dual increase failed to saturate");
    }
    for (int iter = 0; iter < 200 && hi - lo > options.tolerance * hi;
         ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (total_outside(mid) >= rhs)
        hi = mid;
      else
        lo = mid;
    }
    const double y = hi;
    result.dual_total += y;

    // Commit: pay movement cost for the increase of each x(q).
    for (auto& [page, q] : pages) {
      if (page == req.page) continue;
      const double before = q.x;
      q.dual_mass += y;
      q.x = profile(q, 0.0);
      // Miss mass is charged when the page is re-fetched; here only the
      // movement cost of pushing mass out accrues.
      if (q.x > before) result.movement_cost += q.weight * (q.x - before);
    }
    result.max_violation =
        std::max(result.max_violation, rhs - total_outside(0.0));
  }

  for (TenantId i = 0; i < trace.num_tenants(); ++i)
    result.objective += costs[i]->value(result.tenant_mass[i]);
  return result;
}

}  // namespace ccc
