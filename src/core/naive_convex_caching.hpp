#pragma once
/// \file naive_convex_caching.hpp
/// \brief Literal, line-by-line transcription of ALG-DISCRETE (Fig. 3),
///        O(k) per eviction. It exists as the oracle for property tests:
///        `ConvexCachingPolicy` (the O(log k) production version) must make
///        identical decisions on identical inputs. Keep this file boring —
///        its value is that it visibly matches the paper's pseudocode.

#include <vector>

#include "core/convex_caching.hpp"
#include "sim/policy.hpp"
#include "util/flat_map.hpp"

namespace ccc {

class NaiveConvexCachingPolicy final : public ReplacementPolicy {
 public:
  explicit NaiveConvexCachingPolicy(ConvexCachingOptions options = {});

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override {
    return "ConvexCaching[naive]";
  }

  [[nodiscard]] double budget(PageId page) const;

 private:
  [[nodiscard]] double derivative_at(TenantId tenant, double next_miss) const;

  ConvexCachingOptions options_;
  const std::vector<CostFunctionPtr>* costs_ = nullptr;
  /// Resident pages in SoA form: `slot_of_` maps a page to its dense slot,
  /// and the three parallel arrays hold the per-page fields. The Fig. 3
  /// debit ("B(p') ← B(p') − B(p)") and bump loops become branch-free
  /// linear sweeps over `slot_budget_` / `slot_tenant_` that the compiler
  /// can vectorize; element-wise arithmetic is unchanged, so decisions
  /// stay bit-identical to the node-map transcription.
  util::FlatMap<std::uint32_t> slot_of_;
  std::vector<PageId> slot_page_;
  std::vector<double> slot_budget_;      ///< B(p) for resident pages
  std::vector<TenantId> slot_tenant_;
  std::vector<std::uint64_t> evictions_; ///< m(i, t)
};

}  // namespace ccc
