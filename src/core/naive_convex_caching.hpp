#pragma once
/// \file naive_convex_caching.hpp
/// \brief Literal, line-by-line transcription of ALG-DISCRETE (Fig. 3),
///        O(k) per eviction. It exists as the oracle for property tests:
///        `ConvexCachingPolicy` (the O(log k) production version) must make
///        identical decisions on identical inputs. Keep this file boring —
///        its value is that it visibly matches the paper's pseudocode.

#include <unordered_map>
#include <vector>

#include "core/convex_caching.hpp"
#include "sim/policy.hpp"

namespace ccc {

class NaiveConvexCachingPolicy final : public ReplacementPolicy {
 public:
  explicit NaiveConvexCachingPolicy(ConvexCachingOptions options = {});

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override {
    return "ConvexCaching[naive]";
  }

  [[nodiscard]] double budget(PageId page) const;

 private:
  [[nodiscard]] double derivative_at(TenantId tenant, double next_miss) const;

  ConvexCachingOptions options_;
  const std::vector<CostFunctionPtr>* costs_ = nullptr;
  std::unordered_map<PageId, double> budget_;  ///< B(p) for resident pages
  std::unordered_map<PageId, TenantId> tenant_of_;
  std::vector<std::uint64_t> evictions_;       ///< m(i, t)
};

}  // namespace ccc
