#include "core/primal_dual.hpp"

#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace ccc {

double PrimalDualRun::y_total() const {
  return std::accumulate(y.begin(), y.end(), 0.0);
}

namespace {

/// Internal per-open-interval bookkeeping keyed by page.
struct OpenInterval {
  std::size_t record;      ///< index into PrimalDualRun::intervals
  double ycum_at_start;    ///< ΣY at the end of the interval's start step
  double ycum_at_evict = 0.0;  ///< ΣY at the end of the evicting step
};

}  // namespace

PrimalDualRun run_alg_cont(const Trace& trace, std::size_t capacity,
                           const std::vector<CostFunctionPtr>& costs) {
  CCC_REQUIRE(capacity > 0, "cache capacity must be positive");
  CCC_REQUIRE(costs.size() >= trace.num_tenants(),
              "need one cost function per tenant");

  PrimalDualRun run(trace.num_tenants());
  run.y.assign(trace.size(), 0.0);
  run.final_m.assign(trace.num_tenants(), 0);
  run.events.reserve(trace.size());

  std::unordered_set<PageId> cache;
  std::unordered_map<PageId, OpenInterval> open;
  std::unordered_map<PageId, std::uint32_t> request_count;
  double ycum = 0.0;

  const auto close_interval = [&](PageId page, TimeStep end_time) {
    const auto it = open.find(page);
    CCC_CHECK(it != open.end(), "closing an interval that is not open");
    IntervalRecord& rec = run.intervals[it->second.record];
    rec.end = end_time;
    rec.y_in_interval = ycum - it->second.ycum_at_start;
    if (rec.evicted) rec.z = ycum - it->second.ycum_at_evict;
    open.erase(it);
  };

  const auto open_interval = [&](PageId page, TenantId tenant, TimeStep t) {
    IntervalRecord rec;
    rec.page = page;
    rec.tenant = tenant;
    rec.index = ++request_count[page];
    rec.start = t;
    run.intervals.push_back(rec);
    open.emplace(page,
                 OpenInterval{run.intervals.size() - 1, /*ycum_at_start=*/0.0});
    // ycum_at_start is patched after any y increase of this step completes.
  };

  for (TimeStep t = 0; t < trace.size(); ++t) {
    const Request& req = trace[t];
    StepEvent event;
    event.request = req;

    // The previous interval of p_t (if any) ends now; its z accrual and
    // y-mass stop *before* this step's y increase (the constraint at time t
    // excludes p_t).
    if (open.contains(req.page)) close_interval(req.page, t);

    if (cache.contains(req.page)) {
      event.hit = true;
      run.metrics.record_hit(req.tenant);
      open_interval(req.page, req.tenant, t);
      open.at(req.page).ycum_at_start = ycum;
    } else {
      run.metrics.record_miss(req.tenant);
      if (cache.size() >= capacity) {
        // Increase y_t until the first cached page's residual reaches zero.
        bool found = false;
        double min_residual = 0.0;
        PageId victim = 0;
        for (const PageId page : cache) {
          const OpenInterval& oi = open.at(page);
          const IntervalRecord& rec = run.intervals[oi.record];
          const double next_marginal = costs[rec.tenant]->derivative(
              static_cast<double>(run.final_m[rec.tenant]) + 1.0);
          const double residual =
              next_marginal - (ycum - oi.ycum_at_start);
          if (!found || residual < min_residual ||
              (residual == min_residual && page < victim)) {
            found = true;
            min_residual = residual;
            victim = page;
          }
        }
        CCC_CHECK(found, "eviction needed but the cache is empty");
        run.y[t] = min_residual;
        ycum += min_residual;

        OpenInterval& oi = open.at(victim);
        IntervalRecord& rec = run.intervals[oi.record];
        rec.evicted = true;
        rec.evict_time = t;
        oi.ycum_at_evict = ycum;
        const TenantId owner = rec.tenant;
        rec.m_at_set = ++run.final_m[owner];
        run.metrics.record_eviction(owner);
        cache.erase(victim);
        event.victim = victim;
        event.victim_owner = owner;
      }
      cache.insert(req.page);
      open_interval(req.page, req.tenant, t);
      open.at(req.page).ycum_at_start = ycum;
    }
    run.events.push_back(event);
  }

  // Close every interval still open at T (both resident pages, with x=0,
  // and evicted-never-rerequested pages, whose z runs to the end).
  std::vector<PageId> still_open;
  still_open.reserve(open.size());
  for (const auto& [page, oi] : open) {
    (void)oi;
    still_open.push_back(page);
  }
  for (const PageId page : still_open) {
    const auto it = open.find(page);
    IntervalRecord& rec = run.intervals[it->second.record];
    rec.end = std::nullopt;
    rec.y_in_interval = ycum - it->second.ycum_at_start;
    if (rec.evicted) rec.z = ycum - it->second.ycum_at_evict;
    open.erase(it);
  }
  return run;
}

}  // namespace ccc
