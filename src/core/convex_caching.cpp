#include "core/convex_caching.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

namespace {

/// Marginal cost of the (m+1)-st miss of a tenant with cost function f.
double marginal_at(const CostFunction& f, std::uint64_t m,
                   DerivativeMode mode) {
  const double x = static_cast<double>(m);
  if (mode == DerivativeMode::kAnalytic) return f.derivative(x + 1.0);
  return f.value(x + 1.0) - f.value(x);
}

}  // namespace

PolicyFactory make_convex_factory(ConvexCachingOptions options) {
  return [options] { return std::make_unique<ConvexCachingPolicy>(options); };
}

ConvexCachingPolicy::ConvexCachingPolicy(ConvexCachingOptions options)
    : options_(options) {}

void ConvexCachingPolicy::reset(const PolicyContext& ctx) {
  CCC_REQUIRE(ctx.costs != nullptr,
              "ConvexCachingPolicy needs per-tenant cost functions");
  CCC_REQUIRE(ctx.costs->size() >= ctx.num_tenants,
              "need one cost function per tenant");
  costs_ = ctx.costs;
  offset_ = 0.0;
  tenant_bump_.assign(ctx.num_tenants, 0.0);
  evictions_.assign(ctx.num_tenants, 0);
  dual_mass_.assign(ctx.num_tenants, 0.0);
  heaps_.assign(
      options_.index == VictimIndex::kTenantScan ? ctx.num_tenants : 0,
      MinHeap{});
  // Drop the old postings *before* rewinding their arena (their storage
  // dangles the moment the arena resets), then recycle the blocks.
  global_ = empty_heap();
  index_arena_.reset();
  pages_.clear();
  pages_.reserve(ctx.capacity);
  tenant_pages_.clear();
  registry_arena_.reset();
  track_tenant_pages_ = false;
  marginal_scratch_.assign(ctx.num_tenants, 0.0);
  last_evict_moved_offset_ = false;
  last_evict_refreshed_tenant_ = false;
  current_window_ = 0;
  counters_ = PerfCounters{};
}

void ConvexCachingPolicy::rebuild_index() {
  ++counters_.index_rebuilds;
  if (options_.index == VictimIndex::kTenantScan) {
    for (auto& heap : heaps_) heap = MinHeap{};
    for (const auto& [page, state] : pages_)
      heaps_[state.tenant].push(HeapEntry{state.key, page});
    return;
  }
  // Compaction boundary = arena epoch boundary: destroy the old postings,
  // rewind the arena, and build the replacement out of the recycled blocks.
  // After the first few cycles the block set plateaus at the heap's
  // high-water footprint and this path never touches the global heap
  // allocator again.
  global_ = empty_heap();
  index_arena_.reset();
  IndexVector entries(index_alloc());
  entries.reserve(pages_.size());
  for (const auto& [page, state] : pages_)
    entries.push_back(IndexEntry{state.key + tenant_bump_[state.tenant],
                                 state.key, page, state.tenant});
  global_ = GlobalHeap(std::greater<IndexEntry>{}, std::move(entries));
}

void ConvexCachingPolicy::maybe_roll_window(TimeStep time) {
  if (options_.window_length == 0) return;
  const std::size_t window = time / options_.window_length;
  if (window == current_window_) return;
  current_window_ = window;
  ++counters_.window_rollovers;
  // New accounting window: every tenant's miss count restarts at zero, so
  // every marginal — and therefore every budget — re-bases.
  std::fill(evictions_.begin(), evictions_.end(), 0);
  std::fill(tenant_bump_.begin(), tenant_bump_.end(), 0.0);
  offset_ = 0.0;
  // Re-base every resident budget. The per-tenant marginals (virtual
  // calls) are hoisted into a dense table so the page pass is a flat,
  // branchless select over the residency table's SoA slot arrays —
  // autovectorizable, unlike a proxy-iterator loop with an indirect call
  // per resident page.
  for (TenantId t = 0; t < marginal_scratch_.size(); ++t)
    marginal_scratch_[t] = next_marginal(t);
  const double* marginal = marginal_scratch_.data();
  const std::uint64_t* keys = pages_.key_data();
  PageState* vals = pages_.value_data();
  const std::size_t slots =
      marginal_scratch_.empty() ? 0 : pages_.slot_count();
  for (std::size_t i = 0; i < slots; ++i) {
    // Dead slots select index 0 and write their own key back, keeping the
    // loop body branch-free (a dead slot's tenant field may be stale).
    const bool live = keys[i] != util::FlatMap<PageState>::kEmptyKey;
    const std::size_t t = live ? vals[i].tenant : 0;
    vals[i].key = live ? marginal[t] : vals[i].key;
  }
  rebuild_index();
}

double ConvexCachingPolicy::next_marginal(TenantId tenant) const {
  return marginal_at(*(*costs_)[tenant], evictions_[tenant],
                     options_.derivative);
}

void ConvexCachingPolicy::push_global(PageId page, TenantId tenant,
                                      double key) {
  global_.push(IndexEntry{key + tenant_bump_[tenant], key, page, tenant});
}

void ConvexCachingPolicy::maybe_compact() {
  if (global_.size() < kCompactionMinimum) return;
  if (global_.size() <= kCompactionFactor * pages_.size()) return;
  rebuild_index();
}

void ConvexCachingPolicy::set_budget(PageId page, TenantId tenant) {
  // Freeze the budget against the current offsets; the old index entry (if
  // any) becomes stale and is skipped lazily.
  const double key = next_marginal(tenant) - tenant_bump_[tenant] + offset_;
  pages_[page] = PageState{key, tenant};
  if (options_.index == VictimIndex::kTenantScan) {
    heaps_[tenant].push(HeapEntry{key, page});
    return;
  }
  push_global(page, tenant, key);
  if (track_tenant_pages_) tenant_pages_[tenant].insert_or_assign(page, 1);
  maybe_compact();
}

void ConvexCachingPolicy::on_hit(const Request& request, TimeStep time) {
  maybe_roll_window(time);
  // Fig. 3, first bullet: refresh B(p_t) on every access.
  set_budget(request.page, request.tenant);
}

bool ConvexCachingPolicy::clean_top(TenantId tenant, HeapEntry& top) {
  MinHeap& heap = heaps_[tenant];
  while (!heap.empty()) {
    const HeapEntry candidate = heap.top();
    const auto it = pages_.find(candidate.page);
    if (it != pages_.end() && it->second.tenant == tenant &&
        it->second.key == candidate.key) {
      top = candidate;
      return true;
    }
    heap.pop();  // stale: page evicted or budget re-set since
    ++counters_.heap_pops;
    ++counters_.stale_skips;
  }
  return false;
}

PageId ConvexCachingPolicy::choose_victim_scan() {
  // The global debit offset shifts every effective budget equally, so only
  // the per-tenant bumps differentiate tenants: victim = argmin over
  // tenants of (clean heap top key + tenant bump), ties broken by page id.
  bool found = false;
  double best_eff = 0.0;
  PageId best_page = 0;
  for (TenantId tenant = 0; tenant < heaps_.size(); ++tenant) {
    HeapEntry top;
    if (!clean_top(tenant, top)) continue;
    const double eff = effective(top.key, tenant);
    if (!found || eff < best_eff ||
        (eff == best_eff && top.page < best_page)) {
      found = true;
      best_eff = eff;
      best_page = top.page;
    }
  }
  CCC_CHECK(found, "ConvexCaching asked for a victim with an empty cache");
  return best_page;
}

PageId ConvexCachingPolicy::choose_victim_global() {
  // Lazy-invalidation invariant: every resident page has at least one
  // posting whose score is ≤ its current (key + bump) — postings go stale
  // only by under-estimating (bumps of convex tenants only grow; shrinking
  // bumps are repaired eagerly by repost_tenant). Popping in (score, page)
  // order therefore surfaces the true minimum — with the paper's
  // lowest-page-id tie-break — as the first posting that validates.
  while (!global_.empty()) {
    const IndexEntry top = global_.top();
    const auto it = pages_.find(top.page);
    if (it == pages_.end() || it->second.tenant != top.tenant ||
        it->second.key != top.key) {
      // Page evicted, or its budget was refreshed since: a newer posting
      // covers it (or nothing needs to).
      global_.pop();
      ++counters_.heap_pops;
      ++counters_.stale_skips;
      continue;
    }
    const double score = top.key + tenant_bump_[top.tenant];
    if (score != top.score) {
      // The tenant was bumped since this posting: re-post at the current
      // score and keep looking. Within one call bumps are constant, so
      // each posting is re-pushed at most once — the loop terminates.
      global_.pop();
      ++counters_.heap_pops;
      ++counters_.stale_skips;
      push_global(top.page, top.tenant, top.key);
      continue;
    }
    return top.page;
  }
  CCC_CHECK(false, "ConvexCaching asked for a victim with an empty cache");
  return 0;  // unreachable
}

PageId ConvexCachingPolicy::choose_victim(const Request& /*request*/,
                                          TimeStep time) {
  maybe_roll_window(time);
  ++counters_.evictions;
  return options_.index == VictimIndex::kTenantScan ? choose_victim_scan()
                                                    : choose_victim_global();
}

void ConvexCachingPolicy::repost_tenant(TenantId owner) {
  if (!track_tenant_pages_) {
    // First non-convex bump decrease of the run: materialize the registry
    // (arena-backed sets — never default-construct a PageSet, that would
    // silently fall back to the heap allocator).
    tenant_pages_.clear();
    tenant_pages_.reserve(tenant_bump_.size());
    for (std::size_t t = 0; t < tenant_bump_.size(); ++t)
      tenant_pages_.emplace_back(
          util::ArenaAllocator<std::uint8_t>(&registry_arena_));
    for (const auto& [page, state] : pages_)
      tenant_pages_[state.tenant].insert_or_assign(page, 1);
    track_tenant_pages_ = true;
  }
  // PageSet iterators yield reference proxies; bind by value.
  for (const auto [page, mark] : tenant_pages_[owner]) {
    (void)mark;
    push_global(page, owner, pages_.at(page).key);
  }
  maybe_compact();
}

void ConvexCachingPolicy::on_evict(PageId victim, TenantId owner,
                                   TimeStep /*time*/) {
  const auto it = pages_.find(victim);
  CCC_CHECK(it != pages_.end(), "ConvexCaching evicting an untracked page");
  const double victim_budget = effective(it->second.key, owner);
  // The dual variable y_t of ALG-CONT rises by exactly B(victim) at this
  // eviction (DESIGN.md §13); bank it against the victim's owner so the
  // cost tracker can assemble its online lower bound without re-walking
  // any state. One add — hits never reach this path.
  dual_mass_[owner] += victim_budget;
  pages_.erase(it);
  if (track_tenant_pages_) tenant_pages_[owner].erase(victim);

  // Fig. 3: debit every surviving page by B(p) — one offset update. A
  // zero victim budget leaves the offset bit-identical, so survivors'
  // keys still re-freeze to the same value: report it as a no-move so the
  // seqlock mirror keeps every other tenant's stamps fresh.
  last_evict_moved_offset_ = false;
  if (options_.debit_survivors) {
    offset_ += victim_budget;
    last_evict_moved_offset_ = victim_budget != 0.0;
  }

  // The victim's tenant just incurred a miss: m(owner) grows, and the
  // marginal of its *next* miss moves from f'(m+1) to f'(m+2).
  const std::uint64_t m_before = evictions_[owner]++;
  const CostFunction& f = *(*costs_)[owner];
  const double delta = marginal_at(f, m_before + 1, options_.derivative) -
                       marginal_at(f, m_before, options_.derivative);
  // The owner's re-freeze inputs moved iff its next-marginal value did:
  // with a zero delta both the marginal and the bump (when enabled) are
  // bit-identical to before, so the owner's keys still re-freeze exactly
  // (linear costs hit this on every eviction). With a nonzero delta the
  // algebraic cancellation (marginal+δ) − (bump+δ) is not FP-bit-exact,
  // so the owner's stamps must go stale.
  last_evict_refreshed_tenant_ = delta != 0.0;
  if (options_.bump_victim_tenant) {
    tenant_bump_[owner] += delta;
    // Convex costs only grow the bump, which the global index absorbs
    // lazily; a shrinking bump (§2.5 non-convex costs) makes existing
    // postings over-estimate, so re-post the tenant's pages eagerly.
    if (delta < 0.0 && options_.index == VictimIndex::kGlobalHeap)
      repost_tenant(owner);
  }
}

void ConvexCachingPolicy::on_insert(const Request& request, TimeStep time) {
  maybe_roll_window(time);
  // Fig. 3: B(p_t) ← f'(m+1). Inserted after the offset/bump updates of the
  // same step, so the new page is exempt from this step's debit — exactly
  // the "p' ∉ {p, p_t}" exclusion.
  set_budget(request.page, request.tenant);
}

double ConvexCachingPolicy::budget(PageId page) const {
  const auto it = pages_.find(page);
  CCC_REQUIRE(it != pages_.end(), "budget() of a non-resident page");
  return effective(it->second.key, it->second.tenant);
}

std::string ConvexCachingPolicy::name() const {
  std::string n = "ConvexCaching";
  if (options_.derivative == DerivativeMode::kDiscreteMarginal)
    n += "[discrete]";
  if (options_.index == VictimIndex::kTenantScan) n += "[scan-index]";
  if (!options_.debit_survivors) n += "[no-debit]";
  if (!options_.bump_victim_tenant) n += "[no-bump]";
  if (options_.window_length > 0)
    n += "[w=" + std::to_string(options_.window_length) + "]";
  return n;
}

}  // namespace ccc
