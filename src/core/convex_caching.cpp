#include "core/convex_caching.hpp"

#include "util/check.hpp"

namespace ccc {

namespace {

/// Marginal cost of the (m+1)-st miss of a tenant with cost function f.
double marginal_at(const CostFunction& f, std::uint64_t m,
                   DerivativeMode mode) {
  const double x = static_cast<double>(m);
  if (mode == DerivativeMode::kAnalytic) return f.derivative(x + 1.0);
  return f.value(x + 1.0) - f.value(x);
}

}  // namespace

ConvexCachingPolicy::ConvexCachingPolicy(ConvexCachingOptions options)
    : options_(options) {}

void ConvexCachingPolicy::reset(const PolicyContext& ctx) {
  CCC_REQUIRE(ctx.costs != nullptr,
              "ConvexCachingPolicy needs per-tenant cost functions");
  CCC_REQUIRE(ctx.costs->size() >= ctx.num_tenants,
              "need one cost function per tenant");
  costs_ = ctx.costs;
  offset_ = 0.0;
  tenant_bump_.assign(ctx.num_tenants, 0.0);
  evictions_.assign(ctx.num_tenants, 0);
  heaps_.assign(ctx.num_tenants, MinHeap{});
  key_of_.clear();
  tenant_of_.clear();
  current_window_ = 0;
}

void ConvexCachingPolicy::maybe_roll_window(TimeStep time) {
  if (options_.window_length == 0) return;
  const std::size_t window = time / options_.window_length;
  if (window == current_window_) return;
  current_window_ = window;
  // New accounting window: every tenant's miss count restarts at zero, so
  // every marginal — and therefore every budget — re-bases.
  std::fill(evictions_.begin(), evictions_.end(), 0);
  std::fill(tenant_bump_.begin(), tenant_bump_.end(), 0.0);
  offset_ = 0.0;
  for (auto& heap : heaps_) heap = MinHeap{};
  for (const auto& [page, tenant] : tenant_of_) {
    const double key = next_marginal(tenant);
    key_of_[page] = key;
    heaps_[tenant].push(HeapEntry{key, page});
  }
}

double ConvexCachingPolicy::next_marginal(TenantId tenant) const {
  return marginal_at(*(*costs_)[tenant], evictions_[tenant],
                     options_.derivative);
}

void ConvexCachingPolicy::set_budget(PageId page, TenantId tenant) {
  // Freeze the budget against the current offsets; the old heap entry (if
  // any) becomes stale and is skipped lazily.
  const double key = next_marginal(tenant) - tenant_bump_[tenant] + offset_;
  key_of_[page] = key;
  tenant_of_[page] = tenant;
  heaps_[tenant].push(HeapEntry{key, page});
}

void ConvexCachingPolicy::on_hit(const Request& request, TimeStep time) {
  maybe_roll_window(time);
  // Fig. 3, first bullet: refresh B(p_t) on every access.
  set_budget(request.page, request.tenant);
}

bool ConvexCachingPolicy::clean_top(TenantId tenant, HeapEntry& top) {
  MinHeap& heap = heaps_[tenant];
  while (!heap.empty()) {
    const HeapEntry candidate = heap.top();
    const auto it = key_of_.find(candidate.page);
    if (it != key_of_.end() && tenant_of_.at(candidate.page) == tenant &&
        it->second == candidate.key) {
      top = candidate;
      return true;
    }
    heap.pop();  // stale: page evicted or budget re-set since
  }
  return false;
}

PageId ConvexCachingPolicy::choose_victim(const Request& /*request*/,
                                          TimeStep time) {
  maybe_roll_window(time);
  // Fig. 3: the page with the smallest budget. The global debit offset
  // shifts every effective budget equally, so only the per-tenant bumps
  // differentiate tenants: victim = argmin over tenants of
  // (clean heap top key + tenant bump), ties broken by page id.
  bool found = false;
  double best_eff = 0.0;
  PageId best_page = 0;
  for (TenantId tenant = 0; tenant < heaps_.size(); ++tenant) {
    HeapEntry top;
    if (!clean_top(tenant, top)) continue;
    const double eff = effective(top.key, tenant);
    if (!found || eff < best_eff ||
        (eff == best_eff && top.page < best_page)) {
      found = true;
      best_eff = eff;
      best_page = top.page;
    }
  }
  CCC_CHECK(found, "ConvexCaching asked for a victim with an empty cache");
  return best_page;
}

void ConvexCachingPolicy::on_evict(PageId victim, TenantId owner,
                                   TimeStep /*time*/) {
  const auto it = key_of_.find(victim);
  CCC_CHECK(it != key_of_.end(), "ConvexCaching evicting an untracked page");
  const double victim_budget = effective(it->second, owner);
  key_of_.erase(it);
  tenant_of_.erase(victim);

  // Fig. 3: debit every surviving page by B(p) — one offset update.
  if (options_.debit_survivors) offset_ += victim_budget;

  // The victim's tenant just incurred a miss: m(owner) grows, and the
  // marginal of its *next* miss moves from f'(m+1) to f'(m+2).
  const std::uint64_t m_before = evictions_[owner]++;
  if (options_.bump_victim_tenant) {
    const CostFunction& f = *(*costs_)[owner];
    const double delta = marginal_at(f, m_before + 1, options_.derivative) -
                         marginal_at(f, m_before, options_.derivative);
    tenant_bump_[owner] += delta;
  }
}

void ConvexCachingPolicy::on_insert(const Request& request, TimeStep time) {
  maybe_roll_window(time);
  // Fig. 3: B(p_t) ← f'(m+1). Inserted after the offset/bump updates of the
  // same step, so the new page is exempt from this step's debit — exactly
  // the "p' ∉ {p, p_t}" exclusion.
  set_budget(request.page, request.tenant);
}

double ConvexCachingPolicy::budget(PageId page) const {
  const auto it = key_of_.find(page);
  CCC_REQUIRE(it != key_of_.end(), "budget() of a non-resident page");
  return effective(it->second, tenant_of_.at(page));
}

std::string ConvexCachingPolicy::name() const {
  std::string n = "ConvexCaching";
  if (options_.derivative == DerivativeMode::kDiscreteMarginal)
    n += "[discrete]";
  if (!options_.debit_survivors) n += "[no-debit]";
  if (!options_.bump_victim_tenant) n += "[no-bump]";
  if (options_.window_length > 0)
    n += "[w=" + std::to_string(options_.window_length) + "]";
  return n;
}

}  // namespace ccc
