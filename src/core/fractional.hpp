#pragma once
/// \file fractional.hpp
/// \brief Online *fractional* caching in the spirit of Bansal–Buchbinder–
///        Naor [3] — the LP machinery the paper's convex program builds on
///        (§1.3: "our convex program builds on a different linear program
///        which was given by [3] for the weighted caching problem").
///
/// State: for every page's current inter-request interval, a fraction
/// x(p) ∈ [0,1] of the page held *outside* the cache. On each request the
/// requested page is fully fetched (x = 0) and, if the packing constraint
/// Σ_{q ∈ B(t)\{p_t}} x(q) ≥ |B(t)| − k is violated, a dual variable y_t
/// rises; each page's fraction follows the classic exponential profile
///     x(q) = min(1, (e^{c·Y(q)/w_q} − 1) / k),   c = ln(1 + k),
/// where Y(q) is the dual mass accumulated in q's interval and w_q its
/// weight. For linear costs (w_q = w_i fixed) this is the O(log k)-
/// competitive fractional weighted-caching algorithm of [3]; with
/// w_q = f'_i(m_i + 1) re-evaluated as tenant miss mass accumulates, it is
/// the natural fractional analogue of ALG-CONT (a heuristic — the paper
/// does not analyze it; experiment E9 measures it).
///
/// The simulator reports per-tenant *evicted mass* (fractional misses) and
/// the movement cost Σ w·Δx, the standard fractional objective.

#include <vector>

#include "cost/cost_function.hpp"
#include "trace/trace.hpp"

namespace ccc {

struct FractionalResult {
  /// Per-tenant total evicted fractional mass (analogue of miss counts).
  std::vector<double> tenant_mass;
  /// Σ_i f_i(tenant_mass_i) — the paper's objective on fractional mass.
  double objective = 0.0;
  /// Movement cost Σ over updates of w_q·Δx(q) (the [3] objective).
  double movement_cost = 0.0;
  /// Total dual mass Σ_t y_t raised.
  double dual_total = 0.0;
  /// Max constraint violation observed after updates (should be ~0).
  double max_violation = 0.0;
};

struct FractionalOptions {
  /// Re-derive weights from the tenants' marginal costs as mass accrues
  /// (the convex generalization). When false, weights are f_i'(1), fixed —
  /// exactly the [3] weighted-caching setting for linear costs.
  bool adaptive_weights = true;
  /// Binary-search tolerance on the packing constraint.
  double tolerance = 1e-9;
};

/// Runs the fractional algorithm over `trace` with cache size `capacity`.
[[nodiscard]] FractionalResult run_fractional_caching(
    const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs, FractionalOptions options = {});

}  // namespace ccc
