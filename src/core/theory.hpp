#pragma once
/// \file theory.hpp
/// \brief The paper's guarantee formulas, as executable functions: the
///        experiments print these next to measured values so each table
///        reads "bound vs. measured".

#include <vector>

#include "cost/cost_function.hpp"

namespace ccc {

/// α = sup_{x,i} x·f_i'(x)/f_i(x) over all tenants (Theorem 1.1); the
/// supremum over x is delegated to each function's closed form / estimator.
/// The relevant range is x ≤ x_max (at most the total misses possible).
[[nodiscard]] double curvature_alpha(const std::vector<CostFunctionPtr>& costs,
                                     double x_max);

/// Theorem 1.1 right-hand side: Σ_i f_i(α·k·b_i) for an offline miss
/// vector b. Pass alpha explicitly to reuse a precomputed value.
[[nodiscard]] double theorem11_bound(const std::vector<CostFunctionPtr>& costs,
                                     const std::vector<std::uint64_t>& opt_misses,
                                     std::size_t k, double alpha);

/// Corollary 1.2 multiplicative factor for f(x) = x^β: β^β·k^β.
[[nodiscard]] double corollary12_factor(double beta, std::size_t k);

/// Theorem 1.3 right-hand side: Σ_i f_i(α·k/(k−h+1)·b_i) against an offline
/// optimum with cache h ≤ k.
[[nodiscard]] double theorem13_bound(const std::vector<CostFunctionPtr>& costs,
                                     const std::vector<std::uint64_t>& opt_misses,
                                     std::size_t k, std::size_t h,
                                     double alpha);

/// Theorem 1.4's lower-bound factor from the §4 construction with n
/// single-page tenants and k = n−1: every deterministic online algorithm
/// pays at least (n/4)^β × OPT.
[[nodiscard]] double theorem14_lower_factor(std::uint32_t n, double beta);

/// Claim 2.3 residual: RHS − LHS of inequality (4), i.e.
///   α·Σ_j x_j·f'(Σ_{i≤j} x_i) − f'(Σ x)·Σ x
/// with α = f'(S)·S/f(S) evaluated at the full sum S (the claim's maximizer
/// is bounded by the supremum, so using the full-range α keeps the check
/// conservative when `alpha` is passed from the function's closed form).
/// Non-negative for convex f — verified by property tests.
[[nodiscard]] double claim23_residual(const CostFunction& f,
                                      const std::vector<double>& xs,
                                      double alpha);

}  // namespace ccc
