#include "core/naive_convex_caching.hpp"

#include "util/check.hpp"

namespace ccc {

NaiveConvexCachingPolicy::NaiveConvexCachingPolicy(
    ConvexCachingOptions options)
    : options_(options) {}

void NaiveConvexCachingPolicy::reset(const PolicyContext& ctx) {
  CCC_REQUIRE(ctx.costs != nullptr,
              "NaiveConvexCachingPolicy needs per-tenant cost functions");
  costs_ = ctx.costs;
  budget_.clear();
  tenant_of_.clear();
  evictions_.assign(ctx.num_tenants, 0);
}

double NaiveConvexCachingPolicy::derivative_at(TenantId tenant,
                                               double next_miss) const {
  const CostFunction& f = *(*costs_)[tenant];
  if (options_.derivative == DerivativeMode::kAnalytic)
    return f.derivative(next_miss);
  return f.value(next_miss) - f.value(next_miss - 1.0);
}

void NaiveConvexCachingPolicy::on_hit(const Request& request,
                                      TimeStep /*time*/) {
  // "bring in page p_t in cache and update B(p_t) ← f'(m(i(p_t),t−1)+1)"
  budget_[request.page] = derivative_at(
      request.tenant, static_cast<double>(evictions_[request.tenant]) + 1.0);
}

PageId NaiveConvexCachingPolicy::choose_victim(const Request& /*request*/,
                                               TimeStep /*time*/) {
  // "Let p be the page in the cache with smallest B(p)."
  CCC_CHECK(!budget_.empty(),
            "NaiveConvexCaching asked for a victim with an empty cache");
  bool found = false;
  double best = 0.0;
  PageId best_page = 0;
  for (const auto& [page, b] : budget_) {
    if (!found || b < best || (b == best && page < best_page)) {
      found = true;
      best = b;
      best_page = page;
    }
  }
  return best_page;
}

void NaiveConvexCachingPolicy::on_evict(PageId victim, TenantId owner,
                                        TimeStep /*time*/) {
  const auto it = budget_.find(victim);
  CCC_CHECK(it != budget_.end(),
            "NaiveConvexCaching evicting an untracked page");
  const double victim_budget = it->second;
  budget_.erase(it);
  tenant_of_.erase(victim);

  // "For each p' ∉ {p, p_t} in the cache, B(p') ← B(p') − B(p)."
  // (p_t is not yet resident here; it is inserted afterwards.)
  if (options_.debit_survivors)
    for (auto& [page, b] : budget_) {
      (void)page;
      b -= victim_budget;
    }

  const std::uint64_t m_before = evictions_[owner]++;
  // "For each page p' in the cache such that i(p') = i(p):
  //    B(p') ← B(p') + f'(m+2) − f'(m+1)."
  if (options_.bump_victim_tenant) {
    const double delta =
        derivative_at(owner, static_cast<double>(m_before) + 2.0) -
        derivative_at(owner, static_cast<double>(m_before) + 1.0);
    for (auto& [page, b] : budget_)
      if (tenant_of_.at(page) == owner) b += delta;
  }
}

void NaiveConvexCachingPolicy::on_insert(const Request& request,
                                         TimeStep /*time*/) {
  // "Set B(p_t) ← f'(m(i(p_t),t−1)+1)" — with m already reflecting this
  // step's eviction, which together with the same-tenant bump equals the
  // figure's update order (see DESIGN.md §5).
  tenant_of_[request.page] = request.tenant;
  budget_[request.page] = derivative_at(
      request.tenant, static_cast<double>(evictions_[request.tenant]) + 1.0);
}

double NaiveConvexCachingPolicy::budget(PageId page) const {
  const auto it = budget_.find(page);
  CCC_REQUIRE(it != budget_.end(), "budget() of a non-resident page");
  return it->second;
}

}  // namespace ccc
