#include "core/naive_convex_caching.hpp"

#include "util/check.hpp"

namespace ccc {

NaiveConvexCachingPolicy::NaiveConvexCachingPolicy(
    ConvexCachingOptions options)
    : options_(options) {}

void NaiveConvexCachingPolicy::reset(const PolicyContext& ctx) {
  CCC_REQUIRE(ctx.costs != nullptr,
              "NaiveConvexCachingPolicy needs per-tenant cost functions");
  costs_ = ctx.costs;
  slot_of_.clear();
  slot_of_.reserve(ctx.capacity);
  slot_page_.clear();
  slot_budget_.clear();
  slot_tenant_.clear();
  slot_page_.reserve(ctx.capacity);
  slot_budget_.reserve(ctx.capacity);
  slot_tenant_.reserve(ctx.capacity);
  evictions_.assign(ctx.num_tenants, 0);
}

double NaiveConvexCachingPolicy::derivative_at(TenantId tenant,
                                               double next_miss) const {
  const CostFunction& f = *(*costs_)[tenant];
  if (options_.derivative == DerivativeMode::kAnalytic)
    return f.derivative(next_miss);
  return f.value(next_miss) - f.value(next_miss - 1.0);
}

void NaiveConvexCachingPolicy::on_hit(const Request& request,
                                      TimeStep /*time*/) {
  // "bring in page p_t in cache and update B(p_t) ← f'(m(i(p_t),t−1)+1)"
  const auto it = slot_of_.find(request.page);
  CCC_CHECK(it != slot_of_.end(), "NaiveConvexCaching hit on untracked page");
  slot_budget_[it->second] = derivative_at(
      request.tenant, static_cast<double>(evictions_[request.tenant]) + 1.0);
}

PageId NaiveConvexCachingPolicy::choose_victim(const Request& /*request*/,
                                               TimeStep /*time*/) {
  // "Let p be the page in the cache with smallest B(p)."
  // Linear argmin over the dense array; the (budget, page-id) tie-break is
  // a total order, so the result is independent of slot order.
  CCC_CHECK(!slot_budget_.empty(),
            "NaiveConvexCaching asked for a victim with an empty cache");
  double best = slot_budget_[0];
  PageId best_page = slot_page_[0];
  for (std::size_t slot = 1; slot < slot_budget_.size(); ++slot) {
    const double b = slot_budget_[slot];
    const PageId page = slot_page_[slot];
    if (b < best || (b == best && page < best_page)) {
      best = b;
      best_page = page;
    }
  }
  return best_page;
}

void NaiveConvexCachingPolicy::on_evict(PageId victim, TenantId owner,
                                        TimeStep /*time*/) {
  const auto it = slot_of_.find(victim);
  CCC_CHECK(it != slot_of_.end(),
            "NaiveConvexCaching evicting an untracked page");
  const std::uint32_t slot = it->second;
  const double victim_budget = slot_budget_[slot];

  // Swap-remove the victim's slot; repoint the moved page's index entry.
  const std::uint32_t last = static_cast<std::uint32_t>(slot_page_.size() - 1);
  if (slot != last) {
    slot_page_[slot] = slot_page_[last];
    slot_budget_[slot] = slot_budget_[last];
    slot_tenant_[slot] = slot_tenant_[last];
    slot_of_.at(slot_page_[slot]) = slot;
  }
  slot_page_.pop_back();
  slot_budget_.pop_back();
  slot_tenant_.pop_back();
  slot_of_.erase(victim);

  // "For each p' ∉ {p, p_t} in the cache, B(p') ← B(p') − B(p)."
  // (p_t is not yet resident here; it is inserted afterwards.)
  if (options_.debit_survivors)
    for (double& b : slot_budget_) b -= victim_budget;

  const std::uint64_t m_before = evictions_[owner]++;
  // "For each page p' in the cache such that i(p') = i(p):
  //    B(p') ← B(p') + f'(m+2) − f'(m+1)."
  if (options_.bump_victim_tenant) {
    const double delta =
        derivative_at(owner, static_cast<double>(m_before) + 2.0) -
        derivative_at(owner, static_cast<double>(m_before) + 1.0);
    for (std::size_t s = 0; s < slot_budget_.size(); ++s)
      if (slot_tenant_[s] == owner) slot_budget_[s] += delta;
  }
}

void NaiveConvexCachingPolicy::on_insert(const Request& request,
                                         TimeStep /*time*/) {
  // "Set B(p_t) ← f'(m(i(p_t),t−1)+1)" — with m already reflecting this
  // step's eviction, which together with the same-tenant bump equals the
  // figure's update order (see DESIGN.md §5).
  slot_of_.insert_or_assign(request.page,
                            static_cast<std::uint32_t>(slot_page_.size()));
  slot_page_.push_back(request.page);
  slot_tenant_.push_back(request.tenant);
  slot_budget_.push_back(derivative_at(
      request.tenant, static_cast<double>(evictions_[request.tenant]) + 1.0));
}

double NaiveConvexCachingPolicy::budget(PageId page) const {
  const auto it = slot_of_.find(page);
  CCC_REQUIRE(it != slot_of_.end(), "budget() of a non-resident page");
  return slot_budget_[it->second];
}

}  // namespace ccc
