#pragma once
/// \file convex_caching.hpp
/// \brief ALG-DISCRETE (paper Fig. 3) — the paper's online algorithm.
///
/// Every resident page carries a budget `B(p)`. On a hit or insertion the
/// touched page's budget is refreshed to `f'_{i(p)}(m(i(p)) + 1)` — the
/// marginal cost of its tenant's *next* miss. When an eviction is needed
/// the minimum-budget page `p` goes; every other resident page is debited
/// `B(p)`, and the pages of the victim's tenant are additionally bumped by
/// `f'(m+2) − f'(m+1)` because that tenant's miss count just grew.
///
/// This is the discrete implementation of the primal–dual ALG-CONT
/// (Fig. 2): the dual variable `y_t` rises by exactly `B(p)` at each
/// eviction, and the budget of a page equals its Lagrangian residual. A
/// property test asserts the eviction sequences coincide.
///
/// This class is the production implementation. The "debit everyone" step
/// is folded into a global offset (it cannot change the argmin) and the
/// per-tenant bump into a per-tenant offset, so per-page keys are immutable
/// between touches. Victim selection is served by one of two indexes:
///
///  - `VictimIndex::kGlobalHeap` (default): a single cross-tenant lazy
///    min-heap over (key + tenant bump, page id). Per-tenant bumps
///    invalidate that tenant's entries *lazily* — a popped entry whose
///    stored score no longer matches `key + tenant_bump_[i]` is re-pushed
///    at its current score — so every operation is amortized O(log k)
///    regardless of the number of tenants. This is the Landlord-style
///    credit-index layout (Young's on-line file caching) applied to the
///    paper's budgets.
///  - `VictimIndex::kTenantScan`: one lazy min-heap per tenant, scanned in
///    full on each eviction — O(n_tenants) per miss. Kept as the second
///    differential-testing implementation and as the benchmark baseline
///    showing what the global index buys at high tenant counts.
///
/// Both indexes compute budgets with the identical floating-point
/// expressions, so on integer-valued cost families their victim sequences
/// match each other — and the literal Fig. 3 transcription
/// (NaiveConvexCachingPolicy) — bit for bit.
///
/// §2.5: with `DerivativeMode::kDiscreteMarginal` the analytic derivative
/// is replaced by `f(m+1) − f(m)`, which supports arbitrary — non-convex,
/// even discontinuous — cost functions (no guarantee, but a working
/// algorithm; experiment E5). Non-convex costs can *shrink* a tenant's
/// bump; the global index then eagerly re-posts that tenant's pages (lazy
/// invalidation is only sound for monotone growth), tracked by a page
/// registry that is materialized on first need so convex runs pay nothing.

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/policy.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"

namespace ccc {

/// How the marginal cost of the next miss is evaluated.
enum class DerivativeMode {
  kAnalytic,          ///< f'(m+1), as written in Fig. 3
  kDiscreteMarginal,  ///< f(m+1) − f(m), the §2.5 generalization
};

/// Which data structure answers "page with the smallest budget".
enum class VictimIndex {
  kGlobalHeap,  ///< cross-tenant lazy min-heap — amortized O(log k)
  kTenantScan,  ///< per-tenant heaps + full scan — O(n_tenants) per evict
};

/// Ablation switches for experiment E5. Production defaults: all on.
struct ConvexCachingOptions {
  DerivativeMode derivative = DerivativeMode::kAnalytic;
  VictimIndex index = VictimIndex::kGlobalHeap;
  /// Fig. 3 step "B(p') ← B(p') − B(p)". Off ⇒ budgets never decay and the
  /// policy degenerates toward evict-lowest-marginal-tenant.
  bool debit_survivors = true;
  /// Fig. 3 step bumping the victim tenant's pages. Off ⇒ stale marginals.
  bool bump_victim_tenant = true;
  /// When > 0, tenant miss counts reset every `window_length` requests and
  /// all budgets re-base — the per-window SLA deployment mode of the SQLVM
  /// companion paper [14], where f_i is charged on misses per accounting
  /// window rather than over the whole run. 0 = the paper's whole-run model.
  std::size_t window_length = 0;
};

/// Factory producing independent ConvexCachingPolicy instances with the
/// given configuration — the public per-shard/per-pool instantiation path
/// (the sharded frontend spawns one ALG-DISCRETE per shard through this,
/// with no access to policy internals).
[[nodiscard]] PolicyFactory make_convex_factory(
    ConvexCachingOptions options = {});

class ConvexCachingPolicy final : public ReplacementPolicy {
 public:
  /// Dead postings tolerated per live page before the global heap compacts.
  static constexpr std::size_t kCompactionFactor = 4;
  /// Heaps smaller than this never compact (rebuild overhead dominates).
  static constexpr std::size_t kCompactionMinimum = 64;

  explicit ConvexCachingPolicy(ConvexCachingOptions options = {});

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] PerfCounters perf_counters() const override {
    return counters_;
  }

  /// Effective budget of a resident page (test/diagnostic hook).
  [[nodiscard]] double budget(PageId page) const;

  /// Evictions charged to each tenant so far — m(i,t) in the paper.
  [[nodiscard]] const std::vector<std::uint64_t>& tenant_evictions()
      const noexcept {
    return evictions_;
  }

  /// Cumulative dual mass Σ B(victim) attributed to each tenant (summed
  /// over that tenant's evictions). ALG-CONT raises y_t by exactly the
  /// victim's budget at each eviction, so this vector is the running dual
  /// objective of the Fig. 2 primal–dual pair, split by victim owner — the
  /// raw material of the obs::CostTracker online lower bound on OPT
  /// (DESIGN.md §13). Maintained unconditionally: one double add on the
  /// eviction path, nothing on hits.
  [[nodiscard]] const std::vector<double>& dual_mass_by_tenant()
      const noexcept {
    return dual_mass_;
  }

  /// True when the accumulated dual mass is a feasible-dual certificate:
  /// the paper's whole-run model (no accounting windows — rollovers re-base
  /// budgets and orphan earlier y-mass) with the analytic Fig. 3 marginals
  /// and both debit/bump steps enabled (the ablations break the
  /// budget-equals-residual correspondence).
  [[nodiscard]] bool dual_certificate_valid() const noexcept {
    return options_.window_length == 0 &&
           options_.derivative == DerivativeMode::kAnalytic &&
           options_.debit_survivors && options_.bump_victim_tenant;
  }

  /// Live entry count of the global index (diagnostic; 0 in scan mode).
  [[nodiscard]] std::size_t index_size() const noexcept {
    return global_.size();
  }

  /// The run configuration (audit layer + diagnostics).
  [[nodiscard]] const ConvexCachingOptions& options() const noexcept {
    return options_;
  }

  // -- per-tenant freshness signals (seqlock residency mirror) --------------
  //
  // ShardedCache's lock-free hit path serves a hit without the mutex only
  // when re-freezing the page's budget would store a bit-identical key
  // (seqlock_table.hpp). The two signals below report, for the most recent
  // on_evict, which freshness classes that eviction actually invalidated:

  /// The last eviction shifted the shared survivor-debit offset (victim
  /// budget ≠ 0 with debiting on) — every tenant's re-freeze value moved.
  [[nodiscard]] bool last_evict_moved_offset() const noexcept {
    return last_evict_moved_offset_;
  }
  /// The last eviction moved the victim tenant's next-marginal value
  /// (delta ≠ 0) — only that tenant's re-freeze values moved. Zero-budget,
  /// zero-delta evictions (generational steady state under linear costs)
  /// report false on both signals and stale nothing.
  [[nodiscard]] bool last_evict_refreshed_tenant() const noexcept {
    return last_evict_refreshed_tenant_;
  }

 private:
  /// The `src/audit` shadow-checker reads the index internals (postings,
  /// offsets, bumps) to verify them against naive recomputation; the test
  /// peer additionally *corrupts* them to prove each audit fires.
  friend class ConvexCachingAuditor;
  friend struct AuditTestPeer;
  /// Marginal cost of tenant i's next miss given its current eviction count.
  [[nodiscard]] double next_marginal(TenantId tenant) const;

  /// Effective budget from a stored key:
  ///   eff = key + tenant_bump_[i] − offset_
  /// where key was frozen as (B_set − tenant_bump_at_set + offset_at_set).
  [[nodiscard]] double effective(double key, TenantId tenant) const {
    return key + tenant_bump_[tenant] - offset_;
  }

  void set_budget(PageId page, TenantId tenant);

  // -- per-tenant index (VictimIndex::kTenantScan) --------------------------

  struct HeapEntry {
    double key;
    PageId page;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.page > b.page;
    }
  };
  using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                      std::greater<HeapEntry>>;

  /// Pops stale entries; returns false if the tenant has no resident page.
  [[nodiscard]] bool clean_top(TenantId tenant, HeapEntry& top);

  [[nodiscard]] PageId choose_victim_scan();

  // -- global index (VictimIndex::kGlobalHeap) ------------------------------

  /// One posting in the cross-tenant index. `score` is the cross-tenant
  /// comparison value `key + tenant_bump_[tenant]` frozen at push time
  /// (the global `offset_` shifts every page equally and is left out);
  /// `key` identifies which budget-setting this posting refers to, so a
  /// page whose budget was refreshed since invalidates all its older
  /// postings.
  struct IndexEntry {
    double score;
    double key;
    PageId page;
    TenantId tenant;
    friend bool operator>(const IndexEntry& a, const IndexEntry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.page > b.page;
    }
  };
  /// Postings live in a bump-pointer arena: pushes and compaction rebuilds
  /// recycle the arena's retained blocks instead of hitting the heap, so
  /// the steady-state eviction path performs zero allocations (the e6
  /// `--alloc-stats` CI gate asserts exactly this).
  using IndexAlloc = util::ArenaAllocator<IndexEntry>;
  using IndexVector = std::vector<IndexEntry, IndexAlloc>;
  using GlobalHeap =
      std::priority_queue<IndexEntry, IndexVector, std::greater<IndexEntry>>;

  [[nodiscard]] IndexAlloc index_alloc() noexcept {
    return IndexAlloc(&index_arena_);
  }
  /// An empty arena-backed heap (never default-construct GlobalHeap — that
  /// would silently fall back to the global heap allocator).
  [[nodiscard]] GlobalHeap empty_heap() {
    return GlobalHeap(std::greater<IndexEntry>{}, IndexVector(index_alloc()));
  }

  void push_global(PageId page, TenantId tenant, double key);

  [[nodiscard]] PageId choose_victim_global();

  /// Rebuilds the global heap from the resident set when dead postings
  /// outnumber live pages by `kCompactionFactor` (hit-heavy streams refresh
  /// budgets far more often than evictions drain postings).
  void maybe_compact();

  /// Rebuilds every index structure from the resident set `pages_`.
  void rebuild_index();

  /// Non-convex repair: tenant `owner`'s bump just *decreased*, so its
  /// existing postings over-estimate; re-posts every resident page of that
  /// tenant at the current score. Materializes `tenant_pages_` on first use.
  void repost_tenant(TenantId owner);

  /// Windowed mode: on crossing a window boundary, resets miss counts and
  /// re-bases every resident budget (O(k), once per window).
  void maybe_roll_window(TimeStep time);

  ConvexCachingOptions options_;
  const std::vector<CostFunctionPtr>* costs_ = nullptr;

  /// Frozen key + owner of a resident page (one hash lookup on hot paths).
  struct PageState {
    double key;
    TenantId tenant;
  };

  /// Arena-backed open-addressing set used as the per-tenant page registry
  /// (insert/erase are rehash-amortized into the arena, so the non-convex
  /// repost path also stays allocation-free at steady state).
  using PageSet =
      util::FlatMap<std::uint8_t, util::ArenaAllocator<std::uint8_t>>;

  double offset_ = 0.0;                  ///< cumulative global debit
  std::vector<double> tenant_bump_;      ///< cumulative per-tenant bumps
  std::vector<std::uint64_t> evictions_; ///< m(i, t)
  std::vector<double> dual_mass_;        ///< Σ B(victim) per victim owner
  std::vector<MinHeap> heaps_;           ///< scan mode: one heap per tenant
  // Declaration order matters: the arenas must outlive (so: precede) every
  // container whose allocator points into them.
  util::Arena index_arena_;     ///< backs the global heap's postings
  util::Arena registry_arena_;  ///< backs the tenant_pages_ sets
  /// Heap mode: one heap, all tenants (arena-backed — see IndexVector).
  GlobalHeap global_{std::greater<IndexEntry>{},
                     IndexVector(IndexAlloc(&index_arena_))};
  util::FlatMap<PageState> pages_;       ///< resident pages (flat, SoA)
  /// Resident pages per tenant; only maintained once a bump has decreased
  /// (possible only for non-convex costs), empty and untouched otherwise.
  std::vector<PageSet> tenant_pages_;
  bool track_tenant_pages_ = false;
  /// Scratch for the windowed re-base (hoisted per-tenant marginals).
  std::vector<double> marginal_scratch_;
  bool last_evict_moved_offset_ = false;
  bool last_evict_refreshed_tenant_ = false;
  std::size_t current_window_ = 0;
  PerfCounters counters_;
};

}  // namespace ccc
