#pragma once
/// \file convex_caching.hpp
/// \brief ALG-DISCRETE (paper Fig. 3) — the paper's online algorithm.
///
/// Every resident page carries a budget `B(p)`. On a hit or insertion the
/// touched page's budget is refreshed to `f'_{i(p)}(m(i(p)) + 1)` — the
/// marginal cost of its tenant's *next* miss. When an eviction is needed
/// the minimum-budget page `p` goes; every other resident page is debited
/// `B(p)`, and the pages of the victim's tenant are additionally bumped by
/// `f'(m+2) − f'(m+1)` because that tenant's miss count just grew.
///
/// This is the discrete implementation of the primal–dual ALG-CONT
/// (Fig. 2): the dual variable `y_t` rises by exactly `B(p)` at each
/// eviction, and the budget of a page equals its Lagrangian residual. A
/// property test asserts the eviction sequences coincide.
///
/// This class is the production implementation: the "debit everyone" step
/// is folded into a global offset (it cannot change the argmin) and the
/// per-tenant bump into a per-tenant offset, so each operation is
/// O(log k) amortized via per-tenant lazy min-heaps instead of the O(k)
/// literal transcription (see NaiveConvexCachingPolicy, used as the test
/// oracle).
///
/// §2.5: with `DerivativeMode::kDiscreteMarginal` the analytic derivative
/// is replaced by `f(m+1) − f(m)`, which supports arbitrary — non-convex,
/// even discontinuous — cost functions (no guarantee, but a working
/// algorithm; experiment E5).

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"

namespace ccc {

/// How the marginal cost of the next miss is evaluated.
enum class DerivativeMode {
  kAnalytic,          ///< f'(m+1), as written in Fig. 3
  kDiscreteMarginal,  ///< f(m+1) − f(m), the §2.5 generalization
};

/// Ablation switches for experiment E5. Production defaults: all on.
struct ConvexCachingOptions {
  DerivativeMode derivative = DerivativeMode::kAnalytic;
  /// Fig. 3 step "B(p') ← B(p') − B(p)". Off ⇒ budgets never decay and the
  /// policy degenerates toward evict-lowest-marginal-tenant.
  bool debit_survivors = true;
  /// Fig. 3 step bumping the victim tenant's pages. Off ⇒ stale marginals.
  bool bump_victim_tenant = true;
  /// When > 0, tenant miss counts reset every `window_length` requests and
  /// all budgets re-base — the per-window SLA deployment mode of the SQLVM
  /// companion paper [14], where f_i is charged on misses per accounting
  /// window rather than over the whole run. 0 = the paper's whole-run model.
  std::size_t window_length = 0;
};

class ConvexCachingPolicy final : public ReplacementPolicy {
 public:
  explicit ConvexCachingPolicy(ConvexCachingOptions options = {});

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override;

  /// Effective budget of a resident page (test/diagnostic hook).
  [[nodiscard]] double budget(PageId page) const;

  /// Evictions charged to each tenant so far — m(i,t) in the paper.
  [[nodiscard]] const std::vector<std::uint64_t>& tenant_evictions()
      const noexcept {
    return evictions_;
  }

 private:
  /// Marginal cost of tenant i's next miss given its current eviction count.
  [[nodiscard]] double next_marginal(TenantId tenant) const;

  /// Effective budget from a stored key:
  ///   eff = key + tenant_bump_[i] − offset_
  /// where key was frozen as (B_set − tenant_bump_at_set + offset_at_set).
  [[nodiscard]] double effective(double key, TenantId tenant) const {
    return key + tenant_bump_[tenant] - offset_;
  }

  void set_budget(PageId page, TenantId tenant);

  struct HeapEntry {
    double key;
    PageId page;
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.key != b.key) return a.key > b.key;
      return a.page > b.page;
    }
  };
  using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                      std::greater<HeapEntry>>;

  /// Pops stale entries; returns false if the tenant has no resident page.
  [[nodiscard]] bool clean_top(TenantId tenant, HeapEntry& top);

  /// Windowed mode: on crossing a window boundary, resets miss counts and
  /// re-bases every resident budget (O(k), once per window).
  void maybe_roll_window(TimeStep time);

  ConvexCachingOptions options_;
  const std::vector<CostFunctionPtr>* costs_ = nullptr;

  double offset_ = 0.0;                  ///< cumulative global debit
  std::vector<double> tenant_bump_;      ///< cumulative per-tenant bumps
  std::vector<std::uint64_t> evictions_; ///< m(i, t)
  std::vector<MinHeap> heaps_;           ///< one lazy min-heap per tenant
  std::unordered_map<PageId, double> key_of_;  ///< current key per page
  std::unordered_map<PageId, TenantId> tenant_of_;
  std::size_t current_window_ = 0;
};

}  // namespace ccc
