#pragma once
/// \file multi_pool.hpp
/// \brief The paper's §5 future-work direction, implemented: multiple
///        memory pools (one per physical server), each tenant pinned to a
///        single pool, with a switching cost for migrating a tenant
///        between pools.
///
/// Each pool runs its own replacement policy over its own cache. A
/// migration drops the tenant's resident pages (they must be re-fetched in
/// the new pool — the realistic penalty) *and* charges an explicit
/// switching cost. A greedy rebalancer periodically moves the tenant with
/// the highest recent marginal cost pressure to the pool with the lowest,
/// when the estimated gain clears the switching cost.

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace ccc {

struct MultiPoolOptions {
  std::vector<std::size_t> pool_capacities;  ///< one entry per pool
  double switching_cost = 0.0;   ///< charged per migration
  /// Rebalance cadence in requests; 0 disables automatic rebalancing.
  std::size_t rebalance_period = 0;
  std::uint64_t seed = 1;
};

struct MultiPoolReport {
  std::vector<std::uint64_t> misses;      ///< per tenant (all pools)
  std::vector<std::uint64_t> hits;        ///< per tenant
  std::vector<std::size_t> assignment;    ///< tenant -> pool (final)
  std::size_t migrations = 0;
  double switching_cost_paid = 0.0;
  double miss_cost = 0.0;                 ///< Σ f_i(misses_i)
  double total_cost = 0.0;                ///< miss_cost + switching
};

class MultiPoolManager {
 public:
  /// `initial_assignment[i]` is tenant i's starting pool. `costs` holds one
  /// function per tenant and is used both for reporting and by cost-aware
  /// pool policies.
  MultiPoolManager(MultiPoolOptions options, PolicyFactory policy_factory,
                   std::vector<std::size_t> initial_assignment,
                   const std::vector<CostFunctionPtr>& costs);

  /// Routes the request to the owning tenant's pool.
  void access(TenantId tenant, PageId page);

  /// Explicit migration; drops the tenant's resident pages in the old pool
  /// and charges the switching cost. No-op if already there.
  void migrate(TenantId tenant, std::size_t pool);

  void replay(const Trace& trace);

  [[nodiscard]] MultiPoolReport report() const;
  [[nodiscard]] std::size_t pool_of(TenantId tenant) const;
  [[nodiscard]] std::size_t num_pools() const noexcept {
    return pools_.size();
  }

 private:
  /// One physical pool: a policy + a fresh simulator session. Rebuilding a
  /// session on migration would lose state, so pools are persistent and
  /// migrations are implemented by flushing the tenant's pages via the
  /// policy-visible eviction path.
  struct Pool {
    std::unique_ptr<ReplacementPolicy> policy;
    std::unique_ptr<SimulatorSession> session;
  };

  void maybe_rebalance();

  MultiPoolOptions options_;
  std::vector<Pool> pools_;
  std::vector<std::size_t> assignment_;
  const std::vector<CostFunctionPtr>& costs_;
  /// Per-tenant miss counts aggregated across pools (sessions are
  /// per-pool, so a migrating tenant's history must be carried along).
  std::vector<std::uint64_t> misses_;
  std::vector<std::uint64_t> hits_;
  /// Misses per tenant since the last rebalance (pressure signal).
  std::vector<std::uint64_t> recent_misses_;
  /// When each tenant last migrated — a freshly moved tenant is left alone
  /// for two rebalance periods so its working set can settle (prevents
  /// ping-ponging between pools).
  std::vector<std::size_t> last_migration_;
  std::size_t migrations_ = 0;
  double switching_cost_paid_ = 0.0;
  std::size_t clock_ = 0;
};

}  // namespace ccc
