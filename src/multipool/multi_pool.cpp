#include "multipool/multi_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

MultiPoolManager::MultiPoolManager(MultiPoolOptions options,
                                   PolicyFactory policy_factory,
                                   std::vector<std::size_t> initial_assignment,
                                   const std::vector<CostFunctionPtr>& costs)
    : options_(std::move(options)),
      assignment_(std::move(initial_assignment)),
      costs_(costs) {
  CCC_REQUIRE(!options_.pool_capacities.empty(),
              "need at least one pool");
  CCC_REQUIRE(!assignment_.empty(), "need at least one tenant");
  CCC_REQUIRE(costs_.size() >= assignment_.size(),
              "need one cost function per tenant");
  CCC_REQUIRE(policy_factory != nullptr, "need a policy factory");
  for (const std::size_t pool : assignment_)
    CCC_REQUIRE(pool < options_.pool_capacities.size(),
                "initial assignment references a missing pool");

  const auto num_tenants = static_cast<std::uint32_t>(assignment_.size());
  pools_.reserve(options_.pool_capacities.size());
  for (std::size_t p = 0; p < options_.pool_capacities.size(); ++p) {
    Pool pool;
    pool.policy = policy_factory();
    CCC_REQUIRE(pool.policy != nullptr, "policy factory returned null");
    SimOptions sim_options;
    sim_options.seed = options_.seed + p;
    pool.session = std::make_unique<SimulatorSession>(
        options_.pool_capacities[p], num_tenants, *pool.policy, &costs_,
        sim_options);
    pools_.push_back(std::move(pool));
  }
  misses_.assign(num_tenants, 0);
  hits_.assign(num_tenants, 0);
  recent_misses_.assign(num_tenants, 0);
  last_migration_.assign(num_tenants, 0);
}

std::size_t MultiPoolManager::pool_of(TenantId tenant) const {
  CCC_REQUIRE(tenant < assignment_.size(), "tenant id out of range");
  return assignment_[tenant];
}

void MultiPoolManager::access(TenantId tenant, PageId page) {
  const std::size_t pool = pool_of(tenant);
  const StepEvent event = pools_[pool].session->step(Request{tenant, page});
  if (event.hit) {
    ++hits_[tenant];
  } else {
    ++misses_[tenant];
    ++recent_misses_[tenant];
  }
  ++clock_;
  if (options_.rebalance_period > 0 &&
      clock_ % options_.rebalance_period == 0)
    maybe_rebalance();
}

void MultiPoolManager::migrate(TenantId tenant, std::size_t pool) {
  CCC_REQUIRE(pool < pools_.size(), "pool index out of range");
  const std::size_t from = pool_of(tenant);
  if (from == pool) return;
  // Drop the tenant's resident pages in the old pool; they will fault back
  // in at the destination on first access.
  std::vector<PageId> to_drop;
  for (const auto& [page, owner] : pools_[from].session->cache().pages())
    if (owner == tenant) to_drop.push_back(page);
  for (const PageId page : to_drop) pools_[from].session->invalidate(page);
  assignment_[tenant] = pool;
  last_migration_[tenant] = clock_;
  ++migrations_;
  switching_cost_paid_ += options_.switching_cost;
}

void MultiPoolManager::maybe_rebalance() {
  // Pressure of tenant i: recent misses × marginal cost of the next miss.
  // Move the highest-pressure tenant to the pool with the lowest total
  // pressure, if (a) it is not already there and (b) its estimated gain
  // over the next period exceeds the switching cost.
  std::vector<double> pool_pressure(pools_.size(), 0.0);
  double best_pressure = -1.0;
  TenantId candidate = 0;
  bool have_candidate = false;
  for (TenantId i = 0; i < assignment_.size(); ++i) {
    const double marginal =
        costs_[i]->marginal(misses_[i]);
    const double pressure =
        static_cast<double>(recent_misses_[i]) * marginal;
    pool_pressure[assignment_[i]] += pressure;
    // Cooldown: a tenant that just moved sits out two periods.
    const bool settled =
        last_migration_[i] == 0 ||
        clock_ - last_migration_[i] >= 2 * options_.rebalance_period;
    if (settled && pressure > best_pressure) {
      best_pressure = pressure;
      candidate = i;
      have_candidate = true;
    }
  }
  if (!have_candidate) {
    std::fill(recent_misses_.begin(), recent_misses_.end(), 0);
    return;
  }
  const auto coolest = static_cast<std::size_t>(
      std::min_element(pool_pressure.begin(), pool_pressure.end()) -
      pool_pressure.begin());
  if (coolest != assignment_[candidate] && best_pressure > 0.0) {
    // Gain estimate: the tenant keeps its pressure but stops competing with
    // its current pool's other tenants; discount by the share of pressure
    // it already dominates.
    const double others =
        pool_pressure[assignment_[candidate]] - best_pressure;
    const double gain = std::min(best_pressure, others);
    if (gain > options_.switching_cost) migrate(candidate, coolest);
  }
  std::fill(recent_misses_.begin(), recent_misses_.end(), 0);
}

void MultiPoolManager::replay(const Trace& trace) {
  CCC_REQUIRE(trace.num_tenants() <= assignment_.size(),
              "trace has more tenants than the manager was built for");
  for (const Request& request : trace) access(request.tenant, request.page);
}

MultiPoolReport MultiPoolManager::report() const {
  MultiPoolReport out;
  out.misses = misses_;
  out.hits = hits_;
  out.assignment = assignment_;
  out.migrations = migrations_;
  out.switching_cost_paid = switching_cost_paid_;
  for (std::size_t i = 0; i < misses_.size(); ++i)
    out.miss_cost += costs_[i]->value(static_cast<double>(misses_[i]));
  out.total_cost = out.miss_cost + out.switching_cost_paid;
  return out;
}

}  // namespace ccc
