#pragma once
/// \file piecewise_linear.hpp
/// \brief Piecewise-linear convex cost — the paper's motivating SLA shape.
///
/// §1.1: "a user can tolerate up to around M misses ... any number of misses
/// greater than that will result in substantial degradation ... captured
/// through, e.g., piecewise-linear, convex cost functions." The companion
/// SQLVM paper [14] models provider refunds the same way. Knots are
/// (x_0=0, y_0=0), (x_1, y_1), ... with non-decreasing slopes (convexity).
///
/// Note the curvature constant: if the function is exactly 0 on an initial
/// segment and then rises, α = sup x·f'(x)/f(x) is infinite (the ratio blows
/// up just past the knee). `alpha()` reports +inf in that case — the
/// Theorem 1.1 guarantee is vacuous, but the algorithm (per §2.5) still
/// applies and E4/E5 measure how well it does empirically.

#include <vector>

#include "cost/cost_function.hpp"

namespace ccc {

class PiecewiseLinearCost final : public CostFunction {
 public:
  struct Knot {
    double x;
    double y;
  };

  /// Knots must start at (0,0), have strictly increasing x, non-decreasing y,
  /// and convex (non-decreasing) slopes. Beyond the last knot the final
  /// slope extends to infinity; `final_slope` overrides it when >= 0.
  explicit PiecewiseLinearCost(std::vector<Knot> knots,
                               double final_slope = -1.0);

  /// Convenience SLA constructor: free until `tolerated_misses`, then a
  /// linear penalty of `penalty_per_miss` per additional miss.
  [[nodiscard]] static PiecewiseLinearCost sla(double tolerated_misses,
                                               double penalty_per_miss);

  [[nodiscard]] double value(double x) const override;
  /// Right derivative (well-defined everywhere, matches f' between knots).
  [[nodiscard]] double derivative(double x) const override;
  /// Exact supremum over (0, x_max]; +inf for flat-then-rising shapes.
  [[nodiscard]] double alpha(double x_max) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return true; }

  [[nodiscard]] const std::vector<Knot>& knots() const noexcept {
    return knots_;
  }

 private:
  /// Index of the segment containing x (segment s spans [knot_s, knot_{s+1}),
  /// the last segment extends to +inf).
  [[nodiscard]] std::size_t segment_of(double x) const noexcept;

  std::vector<Knot> knots_;
  std::vector<double> slopes_;  // slopes_[s] applies on [knots_[s].x, next)
};

}  // namespace ccc
