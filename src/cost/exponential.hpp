#pragma once
/// \file exponential.hpp
/// \brief f(x) = a·(e^{b·x} − 1): a convex cost whose curvature constant
///        grows with the range — a stress case where the Theorem 1.1 bound
///        degrades gracefully (α = α(x_max) ≈ b·x_max for large ranges).

#include "cost/cost_function.hpp"

namespace ccc {

class ExponentialCost final : public CostFunction {
 public:
  /// Requires a > 0 and b > 0.
  ExponentialCost(double a, double b);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  /// Exact: x·f'(x)/f(x) = b·x·e^{bx}/(e^{bx}−1) is increasing, so the
  /// supremum on (0, x_max] is its value at x_max.
  [[nodiscard]] double alpha(double x_max) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return true; }

 private:
  double a_;
  double b_;
};

}  // namespace ccc
