#pragma once
/// \file cost_function.hpp
/// \brief The per-tenant miss-cost model `f_i` from the paper (§1.2).
///
/// Each tenant `i` pays `f_i(x)` when it incurs `x` misses. For the
/// guarantees of Theorems 1.1/1.3 the paper assumes `f` is differentiable,
/// convex, increasing, non-negative with `f(0) = 0`; the *algorithm* itself
/// (§2.5) works with arbitrary, even discontinuous, cost functions through
/// the discrete marginal `f(m+1) − f(m)`. This interface exposes both the
/// analytic derivative (used by ALG-CONT / ALG-DISCRETE as written in
/// Figs. 2–3) and the discrete marginal (used by the §2.5 generalization).
///
/// The curvature constant of Theorem 1.1 is
///   `α = sup_x x·f'(x) / f(x)`          (paper Eq. (1) and Claim 2.3);
/// concrete subclasses provide it in closed form where known and a numeric
/// supremum estimator is available as a fallback.

#include <cstdint>
#include <memory>
#include <string>

namespace ccc {

/// Abstract per-tenant miss-cost function `f : R+ -> R+`.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// f(x). Domain is x >= 0; implementations throw std::invalid_argument
  /// for negative x.
  [[nodiscard]] virtual double value(double x) const = 0;

  /// f'(x). The default implementation is a central finite difference; the
  /// concrete functions in this library all override it with the exact
  /// derivative.
  [[nodiscard]] virtual double derivative(double x) const;

  /// Discrete marginal cost of the (m+1)-st miss: f(m+1) − f(m). This is
  /// the §2.5 replacement for the derivative and never requires
  /// differentiability (or even continuity).
  [[nodiscard]] double marginal(std::uint64_t misses) const;

  /// Fenchel conjugate f*(λ) = sup_{b≥0} [λ·b − f(b)], the term that turns
  /// the primal–dual y-mass into a certified lower bound on OPT (weak
  /// duality plus Fenchel–Young, DESIGN.md §13). May be +∞ (e.g. a linear
  /// function with λ above its slope). The default computes a *sound upper
  /// bound* numerically for convex f — the concave objective is bracketed
  /// by its tangent, so the returned value is ≥ the true supremum and the
  /// lower bound D − Σ f*(λ) stays a lower bound; closed-form overrides
  /// (monomials) are exact. Only meaningful when is_convex().
  [[nodiscard]] virtual double conjugate(double lambda) const;

  /// The curvature constant α = sup_{0<x<=x_max} x·f'(x)/f(x). The default
  /// estimates the supremum numerically on a geometric grid; closed-form
  /// overrides exist for monomials (α = β), linear functions (α = 1), etc.
  [[nodiscard]] virtual double alpha(double x_max) const;

  /// Human-readable description, e.g. "x^2" or "pwl[(0,0),(100,0),(200,50)]".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Deep copy.
  [[nodiscard]] virtual std::unique_ptr<CostFunction> clone() const = 0;

  /// True when the function is convex on [0, ∞). Used by the theory module
  /// to decide whether the Theorem 1.1 guarantee applies. Concrete classes
  /// answer exactly; arbitrary callables answer conservatively.
  [[nodiscard]] virtual bool is_convex() const = 0;
};

using CostFunctionPtr = std::unique_ptr<CostFunction>;

/// Numeric supremum of x·f'(x)/f(x) over (0, x_max] on a geometric grid.
/// Exposed for testing the closed-form overrides against the estimator.
[[nodiscard]] double estimate_alpha(const CostFunction& f, double x_max,
                                    std::size_t grid_points = 4096);

/// Wraps an arbitrary callable as a cost function (§2.5: the algorithm does
/// not need convexity or even continuity). `derivative` falls back to the
/// finite-difference default unless an explicit derivative is supplied.
class CallableCost final : public CostFunction {
 public:
  using Fn = double (*)(double);

  /// `value_fn` must be non-null; `derivative_fn` may be null (numeric
  /// fallback). `convex` is the caller's promise used only for reporting.
  CallableCost(Fn value_fn, Fn derivative_fn, bool convex, std::string label);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] std::string describe() const override { return label_; }
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return convex_; }

 private:
  Fn value_fn_;
  Fn derivative_fn_;
  bool convex_;
  std::string label_;
};

}  // namespace ccc
