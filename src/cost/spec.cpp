#include "cost/spec.hpp"

#include <stdexcept>

#include "cost/combinators.hpp"
#include "cost/exponential.hpp"
#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "cost/polynomial.hpp"
#include "util/string_util.hpp"

namespace ccc {

namespace {

[[noreturn]] void fail(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad cost spec '" + std::string(spec) +
                              "': " + why);
}

}  // namespace

CostFunctionPtr parse_cost_spec(std::string_view spec) {
  const std::string_view trimmed = trim(spec);
  const auto colon = trimmed.find(':');
  const std::string kind(colon == std::string_view::npos
                             ? trimmed
                             : trimmed.substr(0, colon));
  const std::string args(colon == std::string_view::npos
                             ? ""
                             : trimmed.substr(colon + 1));
  const auto pieces = args.empty() ? std::vector<std::string>{}
                                   : split(args, ',');

  if (kind == "linear") {
    if (pieces.size() != 1) fail(spec, "linear expects one weight");
    return std::make_unique<MonomialCost>(1.0, parse_double(pieces[0]));
  }
  if (kind == "mono") {
    if (pieces.empty() || pieces.size() > 2)
      fail(spec, "mono expects beta[,scale]");
    const double beta = parse_double(pieces[0]);
    const double scale = pieces.size() == 2 ? parse_double(pieces[1]) : 1.0;
    return std::make_unique<MonomialCost>(beta, scale);
  }
  if (kind == "poly") {
    if (pieces.empty()) fail(spec, "poly expects at least one coefficient");
    std::vector<double> coefficients{0.0};
    for (const auto& piece : pieces)
      coefficients.push_back(parse_double(piece));
    return std::make_unique<PolynomialCost>(std::move(coefficients));
  }
  if (kind == "sla") {
    if (pieces.size() != 2) fail(spec, "sla expects tolerated,penalty");
    return std::make_unique<PiecewiseLinearCost>(PiecewiseLinearCost::sla(
        parse_double(pieces[0]), parse_double(pieces[1])));
  }
  if (kind == "pwl") {
    std::vector<PiecewiseLinearCost::Knot> knots{{0.0, 0.0}};
    for (const auto& piece : pieces) {
      const auto parts = split(piece, '/');
      if (parts.size() != 2) fail(spec, "pwl knots are written x/y");
      knots.push_back({parse_double(parts[0]), parse_double(parts[1])});
    }
    return std::make_unique<PiecewiseLinearCost>(std::move(knots));
  }
  if (kind == "exp") {
    if (pieces.size() != 2) fail(spec, "exp expects a,b");
    return std::make_unique<ExponentialCost>(parse_double(pieces[0]),
                                             parse_double(pieces[1]));
  }
  if (kind == "step") {
    if (pieces.size() != 2) fail(spec, "step expects width,jump");
    return std::make_unique<StepCost>(parse_double(pieces[0]),
                                      parse_double(pieces[1]));
  }
  if (kind == "sqrt") {
    if (pieces.size() > 1) fail(spec, "sqrt expects at most a scale");
    return std::make_unique<SqrtCost>(
        pieces.empty() ? 1.0 : parse_double(pieces[0]));
  }
  fail(spec, "unknown kind '" + kind + "'");
}

}  // namespace ccc
