#include "cost/piecewise_linear.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

PiecewiseLinearCost::PiecewiseLinearCost(std::vector<Knot> knots,
                                         double final_slope)
    : knots_(std::move(knots)) {
  CCC_REQUIRE(!knots_.empty(), "PiecewiseLinearCost needs at least one knot");
  CCC_REQUIRE(knots_.front().x == 0.0 && knots_.front().y == 0.0,
              "the first knot must be (0,0) so that f(0) = 0");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    CCC_REQUIRE(knots_[i].x > knots_[i - 1].x,
                "knot x-coordinates must be strictly increasing");
    CCC_REQUIRE(knots_[i].y >= knots_[i - 1].y,
                "the cost function must be non-decreasing");
  }
  slopes_.reserve(knots_.size());
  for (std::size_t i = 1; i < knots_.size(); ++i)
    slopes_.push_back((knots_[i].y - knots_[i - 1].y) /
                      (knots_[i].x - knots_[i - 1].x));
  const double last =
      final_slope >= 0.0 ? final_slope : (slopes_.empty() ? 1.0 : slopes_.back());
  slopes_.push_back(last);
  for (std::size_t i = 1; i < slopes_.size(); ++i)
    CCC_REQUIRE(slopes_[i] >= slopes_[i - 1],
                "slopes must be non-decreasing (convexity)");
}

PiecewiseLinearCost PiecewiseLinearCost::sla(double tolerated_misses,
                                             double penalty_per_miss) {
  CCC_REQUIRE(tolerated_misses >= 0.0, "tolerated miss count must be >= 0");
  CCC_REQUIRE(penalty_per_miss > 0.0, "SLA penalty must be positive");
  if (tolerated_misses == 0.0)
    return PiecewiseLinearCost({{0.0, 0.0}}, penalty_per_miss);
  return PiecewiseLinearCost({{0.0, 0.0}, {tolerated_misses, 0.0}},
                             penalty_per_miss);
}

std::size_t PiecewiseLinearCost::segment_of(double x) const noexcept {
  // Last knot with knot.x <= x.
  const auto it =
      std::upper_bound(knots_.begin(), knots_.end(), x,
                       [](double v, const Knot& k) { return v < k.x; });
  return static_cast<std::size_t>(std::distance(knots_.begin(), it)) - 1;
}

double PiecewiseLinearCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  const std::size_t s = segment_of(x);
  return knots_[s].y + slopes_[s] * (x - knots_[s].x);
}

double PiecewiseLinearCost::derivative(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return slopes_[segment_of(x)];
}

double PiecewiseLinearCost::alpha(double x_max) const {
  CCC_REQUIRE(x_max > 0.0, "alpha needs a positive range");
  // Within a segment the ratio r(x) = x·s/(y_j + s(x−x_j)) is monotone, so
  // the supremum over (0, x_max] is attained at a segment endpoint (or as a
  // one-sided limit at a knot where f is still zero).
  double best = 0.0;
  const auto ratio_at = [this](double x, std::size_t s) {
    const double fx = knots_[s].y + slopes_[s] * (x - knots_[s].x);
    if (fx <= 0.0)
      return slopes_[s] > 0.0 && x > 0.0
                 ? std::numeric_limits<double>::infinity()
                 : 0.0;
    return x * slopes_[s] / fx;
  };
  for (std::size_t s = 0; s < slopes_.size(); ++s) {
    const double seg_lo = knots_[s].x;
    if (seg_lo > x_max) break;
    const double seg_hi =
        s + 1 < knots_.size() ? std::min(knots_[s + 1].x, x_max) : x_max;
    // Right limit at the segment start (captures the knee blow-up) and the
    // value at the segment end.
    if (seg_lo > 0.0 || slopes_[s] > 0.0)
      best = std::max(best, ratio_at(std::max(seg_lo, 1e-300), s));
    best = std::max(best, ratio_at(seg_hi, s));
  }
  return best;
}

std::string PiecewiseLinearCost::describe() const {
  std::string out = "pwl[";
  for (std::size_t i = 0; i < knots_.size(); ++i) {
    if (i) out += ',';
    out += '(' + format_compact(knots_[i].x) + ',' +
           format_compact(knots_[i].y) + ')';
  }
  out += "]+slope " + format_compact(slopes_.back());
  return out;
}

std::unique_ptr<CostFunction> PiecewiseLinearCost::clone() const {
  return std::make_unique<PiecewiseLinearCost>(*this);
}

}  // namespace ccc
