#include "cost/exponential.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

ExponentialCost::ExponentialCost(double a, double b) : a_(a), b_(b) {
  CCC_REQUIRE(a > 0.0, "ExponentialCost requires a > 0");
  CCC_REQUIRE(b > 0.0, "ExponentialCost requires b > 0");
}

double ExponentialCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return a_ * std::expm1(b_ * x);
}

double ExponentialCost::derivative(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return a_ * b_ * std::exp(b_ * x);
}

double ExponentialCost::alpha(double x_max) const {
  CCC_REQUIRE(x_max > 0.0, "alpha needs a positive range");
  const double bx = b_ * x_max;
  return bx * std::exp(bx) / std::expm1(bx);
}

std::string ExponentialCost::describe() const {
  return format_compact(a_) + "*(e^(" + format_compact(b_) + "x)-1)";
}

std::unique_ptr<CostFunction> ExponentialCost::clone() const {
  return std::make_unique<ExponentialCost>(*this);
}

}  // namespace ccc
