#pragma once
/// \file spec.hpp
/// \brief String-spec factory for cost functions, used by the CLI of the
///        benchmark/example binaries (`--cost mono:2`, `--cost sla:100,5`).
///
/// Grammar (one function per spec):
///   linear:<w>                 f(x) = w·x
///   mono:<beta>[,<scale>]      f(x) = scale·x^beta
///   poly:<c1>,<c2>,...         f(x) = c1·x + c2·x² + ...   (degree = count)
///   sla:<tolerated>,<penalty>  flat until `tolerated`, then linear
///   pwl:<x1>/<y1>,<x2>/<y2>,...   knots after the implicit (0,0)
///   exp:<a>,<b>                f(x) = a·(e^{bx} − 1)
///   step:<width>,<jump>        staircase (non-convex, §2.5)
///   sqrt[:<scale>]             f(x) = scale·sqrt(x) (concave, §2.5)

#include <string>
#include <string_view>

#include "cost/cost_function.hpp"

namespace ccc {

/// Parses a cost spec; throws std::invalid_argument with a helpful message
/// on malformed input.
[[nodiscard]] CostFunctionPtr parse_cost_spec(std::string_view spec);

}  // namespace ccc
