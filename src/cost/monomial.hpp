#pragma once
/// \file monomial.hpp
/// \brief f(x) = c·x^β — the cost family of Corollary 1.2 and Theorem 1.4.
///
/// For β >= 1 the function is convex and its curvature constant is exactly
/// α = β (the ratio x·f'(x)/f(x) = β everywhere), which yields the paper's
/// β^β·k^β competitive bound. β = 1 recovers weighted caching with weight c.

#include "cost/cost_function.hpp"

namespace ccc {

class MonomialCost final : public CostFunction {
 public:
  /// Requires exponent >= 1 (convexity on [0,∞)) and scale > 0.
  explicit MonomialCost(double exponent, double scale = 1.0);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  /// Exact: α = β independent of the range.
  [[nodiscard]] double alpha(double x_max) const override;
  /// Closed form: (β−1)·c·(λ/(cβ))^{β/(β−1)} for β > 1; for β = 1 the
  /// conjugate is 0 up to slope c and +∞ beyond.
  [[nodiscard]] double conjugate(double lambda) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return true; }

  [[nodiscard]] double exponent() const noexcept { return exponent_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double exponent_;
  double scale_;
};

}  // namespace ccc
