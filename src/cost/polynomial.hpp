#pragma once
/// \file polynomial.hpp
/// \brief f(x) = Σ_d c_d·x^d with non-negative coefficients and c_0 = 0.
///
/// Claim 2.3 notes that for a positive-coefficient polynomial of degree β
/// the curvature constant is α = β; this class reports that closed form and
/// the unit tests verify it against the numeric estimator.

#include <vector>

#include "cost/cost_function.hpp"

namespace ccc {

class PolynomialCost final : public CostFunction {
 public:
  /// `coefficients[d]` multiplies x^d. Requires coefficients[0] == 0
  /// (f(0) = 0), all coefficients >= 0, and at least one positive
  /// coefficient of degree >= 1.
  explicit PolynomialCost(std::vector<double> coefficients);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  /// Exact: α = degree (the supremum is attained as x → ∞).
  [[nodiscard]] double alpha(double x_max) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return true; }

  [[nodiscard]] std::size_t degree() const noexcept {
    return coefficients_.size() - 1;
  }

 private:
  std::vector<double> coefficients_;  // index = power
};

}  // namespace ccc
