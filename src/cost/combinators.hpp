#pragma once
/// \file combinators.hpp
/// \brief Cost-function combinators and the non-convex stress shapes used by
///        the §2.5 generality experiments (E5).

#include <vector>

#include "cost/cost_function.hpp"

namespace ccc {

/// c·f(x). Scaling does not change α.
class ScaledCost final : public CostFunction {
 public:
  ScaledCost(double scale, CostFunctionPtr inner);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] double alpha(double x_max) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override;

 private:
  double scale_;
  CostFunctionPtr inner_;
};

/// f(x) + g(x). A sum of convex functions is convex; α of the sum is at
/// most max(α_f, α_g) (weighted mediant), which `alpha` reports via the
/// numeric estimator for exactness.
class SumCost final : public CostFunction {
 public:
  SumCost(CostFunctionPtr lhs, CostFunctionPtr rhs);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override;

 private:
  CostFunctionPtr lhs_;
  CostFunctionPtr rhs_;
};

/// Staircase penalty: `jump` is charged for each full `width` of misses,
/// i.e. f(x) = jump·floor(x / width). Discontinuous and non-convex — the
/// §2.5 case where only the discrete marginal is meaningful. `derivative`
/// returns the *discrete* marginal at floor(x) so that ALG-DISCRETE (which
/// evaluates f' at integers) receives f(m+1) − f(m), exactly the §2.5
/// prescription of "derivatives ... replaced by their discrete versions".
class StepCost final : public CostFunction {
 public:
  StepCost(double width, double jump);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return false; }

 private:
  double width_;
  double jump_;
};

/// Concave shape f(x) = sqrt(x): decreasing marginals — outside the
/// guarantee of Theorem 1.1 (α = 1/2 < 1 and the analysis needs convexity)
/// but valid input for the algorithm per §2.5. Used in E5.
class SqrtCost final : public CostFunction {
 public:
  explicit SqrtCost(double scale = 1.0);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative(double x) const override;
  [[nodiscard]] double alpha(double x_max) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<CostFunction> clone() const override;
  [[nodiscard]] bool is_convex() const override { return false; }

 private:
  double scale_;
};

}  // namespace ccc
