#include "cost/combinators.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

ScaledCost::ScaledCost(double scale, CostFunctionPtr inner)
    : scale_(scale), inner_(std::move(inner)) {
  CCC_REQUIRE(scale > 0.0, "ScaledCost requires a positive scale");
  CCC_REQUIRE(inner_ != nullptr, "ScaledCost requires an inner function");
}

double ScaledCost::value(double x) const { return scale_ * inner_->value(x); }

double ScaledCost::derivative(double x) const {
  return scale_ * inner_->derivative(x);
}

double ScaledCost::alpha(double x_max) const { return inner_->alpha(x_max); }

std::string ScaledCost::describe() const {
  return format_compact(scale_) + "*(" + inner_->describe() + ")";
}

std::unique_ptr<CostFunction> ScaledCost::clone() const {
  return std::make_unique<ScaledCost>(scale_, inner_->clone());
}

bool ScaledCost::is_convex() const { return inner_->is_convex(); }

SumCost::SumCost(CostFunctionPtr lhs, CostFunctionPtr rhs)
    : lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  CCC_REQUIRE(lhs_ != nullptr && rhs_ != nullptr,
              "SumCost requires two operand functions");
}

double SumCost::value(double x) const {
  return lhs_->value(x) + rhs_->value(x);
}

double SumCost::derivative(double x) const {
  return lhs_->derivative(x) + rhs_->derivative(x);
}

std::string SumCost::describe() const {
  // Appends instead of a chained operator+ — GCC 12 miscompiles the chain
  // analysis into a bogus -Wrestrict diagnostic under -Werror.
  std::string out = "(";
  out += lhs_->describe();
  out += ") + (";
  out += rhs_->describe();
  out += ")";
  return out;
}

std::unique_ptr<CostFunction> SumCost::clone() const {
  return std::make_unique<SumCost>(lhs_->clone(), rhs_->clone());
}

bool SumCost::is_convex() const {
  return lhs_->is_convex() && rhs_->is_convex();
}

StepCost::StepCost(double width, double jump) : width_(width), jump_(jump) {
  CCC_REQUIRE(width > 0.0, "StepCost requires a positive step width");
  CCC_REQUIRE(jump > 0.0, "StepCost requires a positive jump");
}

double StepCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return jump_ * std::floor(x / width_);
}

double StepCost::derivative(double x) const {
  // Discrete marginal at floor(x): f(m+1) − f(m), per §2.5.
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  const double m = std::floor(x);
  return value(m + 1.0) - value(m);
}

std::string StepCost::describe() const {
  return "step(width=" + format_compact(width_) +
         ",jump=" + format_compact(jump_) + ")";
}

std::unique_ptr<CostFunction> StepCost::clone() const {
  return std::make_unique<StepCost>(*this);
}

SqrtCost::SqrtCost(double scale) : scale_(scale) {
  CCC_REQUIRE(scale > 0.0, "SqrtCost requires a positive scale");
}

double SqrtCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return scale_ * std::sqrt(x);
}

double SqrtCost::derivative(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  if (x == 0.0) return scale_ * 0.5 / std::sqrt(1e-12);
  return scale_ * 0.5 / std::sqrt(x);
}

double SqrtCost::alpha(double /*x_max*/) const { return 0.5; }

std::string SqrtCost::describe() const {
  if (scale_ == 1.0) return "sqrt(x)";
  return format_compact(scale_) + "*sqrt(x)";
}

std::unique_ptr<CostFunction> SqrtCost::clone() const {
  return std::make_unique<SqrtCost>(*this);
}

}  // namespace ccc
