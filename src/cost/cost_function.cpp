#include "cost/cost_function.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace ccc {

double CostFunction::derivative(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  // Central difference away from zero, forward difference at the boundary.
  const double h = std::max(1e-6, std::fabs(x) * 1e-6);
  if (x >= h) return (value(x + h) - value(x - h)) / (2.0 * h);
  return (value(x + h) - value(x)) / h;
}

double CostFunction::marginal(std::uint64_t misses) const {
  const double m = static_cast<double>(misses);
  return value(m + 1.0) - value(m);
}

double CostFunction::conjugate(double lambda) const {
  // h(b) = λ·b − f(b) is concave for convex f, with h(0) = −f(0) and
  // h'(b) = λ − f'(b) non-increasing. The supremum sits where h' crosses
  // zero; we bracket that crossing and return the tangent upper bound
  // h(lo) + h'(lo)·(hi − lo) ≥ sup h, so the caller's LB = D − Σ f*
  // never over-certifies.
  if (lambda <= 0.0) return 0.0;
  const double h0 = -value(0.0);
  if (derivative(0.0) >= lambda) return std::max(0.0, h0);

  // Find an upper bracket where the objective stops increasing. If f'
  // never reaches λ (linear tail below λ) the supremum is +∞.
  double lo = 0.0;
  double hi = 1.0;
  constexpr int kMaxDoublings = 120;
  int i = 0;
  for (; i < kMaxDoublings && derivative(hi) < lambda; ++i) hi *= 2.0;
  if (i == kMaxDoublings) return std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (derivative(mid) < lambda) {
      lo = mid;
    } else {
      hi = mid;
    }
    const double slack = (lambda - derivative(lo)) * (hi - lo);
    if (slack <= 1e-12 * (1.0 + std::fabs(lambda * lo - value(lo)))) break;
  }
  const double h_lo = lambda * lo - value(lo);
  return std::max(std::max(0.0, h0),
                  h_lo + (lambda - derivative(lo)) * (hi - lo));
}

double CostFunction::alpha(double x_max) const {
  return estimate_alpha(*this, x_max);
}

double estimate_alpha(const CostFunction& f, double x_max,
                      std::size_t grid_points) {
  CCC_REQUIRE(x_max > 0.0, "alpha estimation needs a positive range");
  CCC_REQUIRE(grid_points >= 2, "alpha estimation needs at least two points");
  // Geometric grid over (x_max * 1e-6, x_max]: the ratio x f'(x)/f(x) of the
  // functions we care about varies slowly in log-space.
  const double lo = x_max * 1e-6;
  const double log_lo = std::log(lo);
  const double log_hi = std::log(x_max);
  double best = 0.0;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(grid_points - 1);
    const double x = std::exp(log_lo + t * (log_hi - log_lo));
    const double fx = f.value(x);
    if (fx <= 0.0) continue;  // f(x)=0 ⇒ ratio defined in the limit only
    const double ratio = x * f.derivative(x) / fx;
    best = std::max(best, ratio);
  }
  return best;
}

CallableCost::CallableCost(Fn value_fn, Fn derivative_fn, bool convex,
                           std::string label)
    : value_fn_(value_fn),
      derivative_fn_(derivative_fn),
      convex_(convex),
      label_(std::move(label)) {
  CCC_REQUIRE(value_fn_ != nullptr, "CallableCost needs a value function");
}

double CallableCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return value_fn_(x);
}

double CallableCost::derivative(double x) const {
  if (derivative_fn_ != nullptr) {
    CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
    return derivative_fn_(x);
  }
  return CostFunction::derivative(x);
}

std::unique_ptr<CostFunction> CallableCost::clone() const {
  return std::make_unique<CallableCost>(*this);
}

}  // namespace ccc
