#include "cost/monomial.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

MonomialCost::MonomialCost(double exponent, double scale)
    : exponent_(exponent), scale_(scale) {
  CCC_REQUIRE(exponent >= 1.0,
              "MonomialCost requires exponent >= 1 for convexity");
  CCC_REQUIRE(scale > 0.0, "MonomialCost requires a positive scale");
}

double MonomialCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  return scale_ * std::pow(x, exponent_);
}

double MonomialCost::derivative(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  if (x == 0.0) return exponent_ == 1.0 ? scale_ : 0.0;
  return scale_ * exponent_ * std::pow(x, exponent_ - 1.0);
}

double MonomialCost::alpha(double x_max) const {
  CCC_REQUIRE(x_max > 0.0, "alpha needs a positive range");
  return exponent_;
}

double MonomialCost::conjugate(double lambda) const {
  if (lambda <= 0.0) return 0.0;
  if (exponent_ == 1.0)
    return lambda <= scale_ ? 0.0
                            : std::numeric_limits<double>::infinity();
  // Supremum of λb − c·b^β at c·β·b^{β−1} = λ.
  const double b = std::pow(lambda / (scale_ * exponent_),
                            1.0 / (exponent_ - 1.0));
  return (exponent_ - 1.0) * scale_ * std::pow(b, exponent_);
}

std::string MonomialCost::describe() const {
  if (scale_ == 1.0) return "x^" + format_compact(exponent_);
  return format_compact(scale_) + "*x^" + format_compact(exponent_);
}

std::unique_ptr<CostFunction> MonomialCost::clone() const {
  return std::make_unique<MonomialCost>(*this);
}

}  // namespace ccc
