#include "cost/polynomial.hpp"

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

PolynomialCost::PolynomialCost(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  CCC_REQUIRE(coefficients_.size() >= 2,
              "PolynomialCost needs degree >= 1 (at least two coefficients)");
  CCC_REQUIRE(coefficients_[0] == 0.0,
              "PolynomialCost requires f(0) = 0 (zero constant term)");
  bool any_positive = false;
  for (const double c : coefficients_) {
    CCC_REQUIRE(c >= 0.0, "PolynomialCost requires non-negative coefficients");
    any_positive = any_positive || c > 0.0;
  }
  CCC_REQUIRE(any_positive, "PolynomialCost must not be identically zero");
  while (coefficients_.size() > 2 && coefficients_.back() == 0.0)
    coefficients_.pop_back();
}

double PolynomialCost::value(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  double acc = 0.0;  // Horner
  for (std::size_t d = coefficients_.size(); d-- > 0;)
    acc = acc * x + coefficients_[d];
  return acc;
}

double PolynomialCost::derivative(double x) const {
  CCC_REQUIRE(x >= 0.0, "cost functions are defined on x >= 0");
  double acc = 0.0;
  for (std::size_t d = coefficients_.size(); d-- > 1;)
    acc = acc * x + coefficients_[d] * static_cast<double>(d);
  return acc;
}

double PolynomialCost::alpha(double x_max) const {
  CCC_REQUIRE(x_max > 0.0, "alpha needs a positive range");
  return static_cast<double>(degree());
}

std::string PolynomialCost::describe() const {
  std::string out;
  for (std::size_t d = 1; d < coefficients_.size(); ++d) {
    if (coefficients_[d] == 0.0) continue;
    if (!out.empty()) out += " + ";
    if (coefficients_[d] != 1.0 || d == 0)
      out += format_compact(coefficients_[d]) + "*";
    out += "x^" + std::to_string(d);
  }
  return out;
}

std::unique_ptr<CostFunction> PolynomialCost::clone() const {
  return std::make_unique<PolynomialCost>(*this);
}

}  // namespace ccc
