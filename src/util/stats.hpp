#pragma once
/// \file stats.hpp
/// \brief Streaming and batch summary statistics used by the experiment
///        harness (means, variance, confidence intervals, quantiles).

#include <cstddef>
#include <vector>

namespace ccc {

/// Welford streaming accumulator: numerically stable mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of a ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation; `q` in [0,1].
/// The input is copied and sorted. Throws on an empty sample.
[[nodiscard]] double quantile(std::vector<double> sample, double q);

/// Geometric mean; all inputs must be positive.
[[nodiscard]] double geometric_mean(const std::vector<double>& sample);

}  // namespace ccc
