#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size worker pool used to parallelize parameter sweeps.
///
/// Results are written into pre-sized slots indexed by task id, so output
/// order never depends on scheduling; combined with per-task RNG streams
/// (`Rng::split`) every sweep is reproducible regardless of thread count.

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccc {

/// A minimal task pool. Exceptions thrown by tasks are captured and
/// rethrown from wait_idle() (first one wins).
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// captured task exception, if any.
  void wait_idle();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits. If some
  /// `fn(i)` throws, remaining iterations may be skipped and the first
  /// exception is rethrown here; the pool stays usable afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  /// Blocks until in-flight tasks finish without rethrowing captured
  /// errors (exception-unwind path of parallel_for).
  void drain() noexcept;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ccc
