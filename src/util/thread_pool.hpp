#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size worker pool used to parallelize parameter sweeps.
///
/// Results are written into pre-sized slots indexed by task id, so output
/// order never depends on scheduling; combined with per-task RNG streams
/// (`Rng::split`) every sweep is reproducible regardless of thread count.

#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ccc {

/// A minimal task pool. Exceptions thrown by tasks are captured and
/// rethrown from wait_idle() (first one wins).
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Self-locking (CCC_EXCLUDES: calling with the pool
  /// mutex held — only possible from inside a task that somehow got the
  /// lock — would deadlock).
  void submit(std::function<void()> task) CCC_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished; rethrows the first
  /// captured task exception, if any.
  void wait_idle() CCC_EXCLUDES(mutex_);

  /// Runs `fn(i)` for i in [0, n) across the pool and waits. If some
  /// `fn(i)` throws, remaining iterations may be skipped and the first
  /// exception is rethrown here; the pool stays usable afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      CCC_EXCLUDES(mutex_);

 private:
  void worker_loop() CCC_EXCLUDES(mutex_);

  /// Blocks until in-flight tasks finish without rethrowing captured
  /// errors (exception-unwind path of parallel_for).
  void drain() noexcept CCC_EXCLUDES(mutex_);

  /// Joined by the destructor only; never mutated after construction.
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_ CCC_GUARDED_BY(mutex_);
  util::Mutex mutex_;
  util::CondVar task_available_;
  util::CondVar all_done_;
  std::size_t in_flight_ CCC_GUARDED_BY(mutex_) = 0;
  bool stopping_ CCC_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ CCC_GUARDED_BY(mutex_);
};

}  // namespace ccc
