#pragma once
/// \file check.hpp
/// \brief Precondition / invariant checking macros used throughout the library.
///
/// All public-API misuse is reported by throwing `std::invalid_argument` or
/// `std::logic_error` so callers (and tests) can observe failures portably.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccc::detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void throw_arg_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "invalid argument: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace ccc::detail

/// Internal-consistency check; throws std::logic_error on failure.
#define CCC_CHECK(expr, msg)                                                \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ccc::detail::throw_check_failure("CCC_CHECK", #expr, __FILE__,      \
                                         __LINE__, (msg));                  \
  } while (false)

/// Public-API argument validation; throws std::invalid_argument on failure.
#define CCC_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ccc::detail::throw_arg_failure(#expr, __FILE__, __LINE__, (msg));   \
  } while (false)
