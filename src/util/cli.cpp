#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

Cli& Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
  CCC_REQUIRE(!name.empty() && name[0] != '-',
              "flag names are registered without leading dashes");
  const auto [it, inserted] =
      flags_.emplace(name, Flag{default_value, default_value, help});
  CCC_REQUIRE(inserted, "duplicate flag registration: " + name);
  (void)it;
  order_.push_back(name);
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--"))
      throw std::invalid_argument("unexpected positional argument: " + arg);
    arg.erase(0, 2);
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("flag --" + arg + " is missing its value");
      value = argv[++i];
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end())
      throw std::invalid_argument("unknown flag: --" + arg);
    it->second.value = value;
  }
  return true;
}

const Cli::Flag& Cli::lookup(const std::string& name) const {
  const auto it = flags_.find(name);
  CCC_REQUIRE(it != flags_.end(), "flag was never registered: " + name);
  return it->second;
}

std::string Cli::get(const std::string& name) const {
  return lookup(name).value;
}

std::uint64_t Cli::get_u64(const std::string& name) const {
  return parse_u64(lookup(name).value);
}

std::int64_t Cli::get_i64(const std::string& name) const {
  return static_cast<std::int64_t>(parse_double(lookup(name).value));
}

double Cli::get_double(const std::string& name) const {
  return parse_double(lookup(name).value);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string& v = lookup(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::uint64_t> Cli::get_u64_list(const std::string& name) const {
  std::vector<std::uint64_t> out;
  for (const auto& piece : split(lookup(name).value, ','))
    if (!trim(piece).empty()) out.push_back(parse_u64(piece));
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& name) const {
  std::vector<double> out;
  for (const auto& piece : split(lookup(name).value, ','))
    if (!trim(piece).empty()) out.push_back(parse_double(piece));
  return out;
}

std::string Cli::usage() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    out += "  --" + name + " <value>   " + f.help +
           " (default: " + f.default_value + ")\n";
  }
  return out;
}

}  // namespace ccc
