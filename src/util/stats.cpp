#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ccc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> sample, double q) {
  CCC_REQUIRE(!sample.empty(), "quantile of an empty sample");
  CCC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be within [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double geometric_mean(const std::vector<double>& sample) {
  CCC_REQUIRE(!sample.empty(), "geometric_mean of an empty sample");
  double log_sum = 0.0;
  for (const double x : sample) {
    CCC_REQUIRE(x > 0.0, "geometric_mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace ccc
