#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CCC_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  CCC_REQUIRE(cells.size() == headers_.size(),
              "row arity must match the table header");
  rows_.push_back(std::move(cells));
}

std::string Table::cell_to_string(double v) { return format_compact(v); }

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void append_padded(std::string& out, const std::string& cell,
                   std::size_t width) {
  out += cell;
  out.append(width - cell.size(), ' ');
}

}  // namespace

std::string Table::to_ascii() const {
  const auto widths = column_widths(headers_, rows_);
  std::string sep = "+";
  for (const auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep;
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    append_padded(out, headers_[c], widths[c]);
    out += " |";
  }
  out += "\n" + sep;
  for (const auto& row : rows_) {
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += ' ';
      append_padded(out, row[c], widths[c]);
      out += " |";
    }
    out += "\n";
  }
  out += sep;
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const auto& h : headers_) out += ' ' + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (const auto& cell : row) out += ' ' + cell + " |";
    out += "\n";
  }
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += csv_escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "' for writing");
  file << to_csv();
  if (!file) throw std::runtime_error("failed writing CSV to '" + path + "'");
}

void print_table(std::ostream& os, const std::string& title,
                 const Table& table) {
  os << title << '\n' << std::string(title.size(), '=') << '\n'
     << table.to_ascii() << '\n';
}

}  // namespace ccc
