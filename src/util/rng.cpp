#include "util/rng.hpp"

#include <bit>

#include "util/check.hpp"

namespace ccc {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CCC_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  CCC_REQUIRE(lo <= hi, "next_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  CCC_REQUIRE(lo <= hi, "next_double requires lo <= hi");
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  CCC_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be within [0,1]");
  return next_double() < p;
}

Rng Rng::split() noexcept {
  std::uint64_t sm = (*this)() ^ 0xd1b54a32d192ed03ULL;
  Rng child(0);
  for (auto& word : child.s_) word = splitmix64(sm);
  return child;
}

}  // namespace ccc
