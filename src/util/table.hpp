#pragma once
/// \file table.hpp
/// \brief Report-table builder used by benchmarks and examples to print
///        paper-style result tables (ASCII for the console, Markdown for
///        EXPERIMENTS.md, CSV for downstream plotting).

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccc {

/// A rectangular results table. Rows must match the header arity.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a pre-formatted row; throws if arity mismatches the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each cell (numbers via format_compact).
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(cell_to_string(cells)), ...);
    add_row(std::move(row));
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  /// Boxed ASCII rendering with aligned columns.
  [[nodiscard]] std::string to_ascii() const;
  /// GitHub-flavoured Markdown rendering.
  [[nodiscard]] std::string to_markdown() const;
  /// RFC-4180-ish CSV (quotes cells containing separators).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to a file; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v);
  template <typename T>
    requires std::integral<T>
  static std::string cell_to_string(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints `table.to_ascii()` preceded by an underlined title.
void print_table(std::ostream& os, const std::string& title,
                 const Table& table);

}  // namespace ccc
