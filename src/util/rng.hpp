#pragma once
/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random number generation.
///
/// Every stochastic component of the library draws from these generators so
/// that all simulations, workload generators and benchmarks are exactly
/// reproducible from a single 64-bit seed. `Rng` implements xoshiro256**
/// seeded via splitmix64 (the recommended seeding procedure); `split()`
/// derives statistically independent child streams, which lets parameter
/// sweeps run on a thread pool without any ordering dependence.

#include <array>
#include <cstdint>
#include <vector>

namespace ccc {

/// splitmix64 step — used for seeding and cheap stateless mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with helpers for the distributions the library
/// needs. Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (splitmix64-expanded).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi);

  /// Bernoulli draw with probability p of `true`.
  [[nodiscard]] bool next_bool(double p);

  /// Derives an independent child generator (for per-task streams).
  [[nodiscard]] Rng split() noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ccc
