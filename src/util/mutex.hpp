#pragma once
/// \file mutex.hpp
/// \brief Annotated drop-in wrappers over std::mutex /
///        std::condition_variable for Clang thread-safety analysis.
///
/// libstdc++'s `std::mutex` carries no capability attributes, so
/// `-Wthread-safety` cannot connect a `std::lock_guard` to the fields it
/// protects. These wrappers restore that link: `Mutex` is a
/// `CCC_CAPABILITY`, `MutexLock` is the scoped guard the analysis
/// understands, and `CondVar` keeps condition-variable waits working
/// against the wrapped mutex without exposing the raw `std::mutex` to
/// call sites. The wrappers compile to exactly the std types they wrap —
/// no extra state, everything inline — so the locked hot paths are
/// unchanged.
///
/// A `CondVar::wait` releases and reacquires the mutex internally; the
/// analysis does not model that hand-off, which is safe (it sees the lock
/// as continuously held, and the wait re-establishes exactly that before
/// returning).

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace ccc::util {

class CondVar;

/// std::mutex with the `capability` attribute the analysis keys on.
class CCC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CCC_ACQUIRE() { mutex_.lock(); }
  void unlock() CCC_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() CCC_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mutex_;
};

/// Scoped lock over `Mutex` (the annotated std::unique_lock). Supports
/// condition-variable waits via `CondVar`.
class CCC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CCC_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() CCC_RELEASE() = default;  // std::unique_lock unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable usable only with `MutexLock`, so waits cannot be
/// paired with the wrong (or no) mutex.
class CondVar {
 public:
  /// Waits for one notification (spurious wakeups possible — call from a
  /// `while (!condition)` loop). Prefer this over a predicate overload:
  /// the loop keeps the guarded condition reads inside the calling
  /// function's scope, where the thread-safety analysis can see the lock
  /// is held (it does not propagate lock state into lambdas).
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ccc::util
