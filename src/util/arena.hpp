#pragma once
/// \file arena.hpp
/// \brief Bump-pointer arena + std-compatible allocator for the eviction
///        index's steady-state allocations.
///
/// ALG-DISCRETE's lazy min-heap index re-posts an entry on every budget
/// refresh and rebuilds itself on compaction (core/convex_caching.cpp), so
/// with the default allocator the steady-state eviction path pays a malloc
/// per vector growth and a malloc/free pair per compaction cycle — the
/// per-posting allocations ROADMAP item 2 flags. The arena turns all of
/// that into pointer bumps over a small set of retained blocks:
///
///  - `allocate` carves aligned ranges out of the current block and falls
///    through to the next retained block (or a new, geometrically larger
///    one) when full. Individual deallocation is a no-op.
///  - `reset` rewinds every block cursor without freeing, so a consumer
///    with a natural epoch boundary (the index rebuild on compaction)
///    recycles its high-water footprint forever. After the first few
///    compaction cycles the block set plateaus and the eviction path
///    performs **zero** `operator new` calls — the property the e6
///    `--alloc-stats` gate asserts in CI.
///
/// The arena is single-threaded by design: each ConvexCachingPolicy owns
/// its arenas and every policy mutation happens under the owning shard's
/// mutex. ArenaAllocator with a null arena falls back to the global heap
/// (correctness first — a default-constructed container still works, and
/// the alloc-stats gate catches the performance bug).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/check.hpp"

namespace ccc::util {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Carves `bytes` aligned to `align` (a power of two) out of the arena.
  /// Never returns nullptr; zero-byte requests get a unique valid pointer.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    CCC_REQUIRE(align != 0 && (align & (align - 1)) == 0,
                "Arena: alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    while (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const std::size_t aligned = align_up(block.used, align);
      if (aligned + bytes <= block.size) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
      ++current_;  // retained block too small for this request; try next
    }
    grow(bytes + align);
    Block& block = blocks_.back();
    const std::size_t aligned = align_up(block.used, align);
    block.used = aligned + bytes;
    return block.data.get() + aligned;
  }

  /// Rewinds every block cursor; retains all blocks for recycling. Any
  /// pointer previously handed out becomes dangling — callers must destroy
  /// arena-backed containers *before* resetting (the index rebuild does).
  void reset() noexcept {
    for (Block& block : blocks_) block.used = 0;
    current_ = 0;
  }

  /// Pre-allocates so `bytes` fit without further block growth.
  void reserve(std::size_t bytes) {
    if (bytes > capacity_bytes()) grow(bytes - capacity_bytes());
  }

  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.used;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kFirstBlockBytes = 4096;

  [[nodiscard]] static std::size_t align_up(std::size_t n,
                                            std::size_t align) noexcept {
    return (n + align - 1) & ~(align - 1);
  }

  void grow(std::size_t at_least) {
    std::size_t size = blocks_.empty() ? kFirstBlockBytes
                                       : blocks_.back().size * 2;
    while (size < at_least) size *= 2;
    blocks_.push_back(
        Block{std::make_unique<std::byte[]>(size), size, 0});
    current_ = blocks_.size() - 1;
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
};

/// std::allocator-compatible facade over an Arena. Deallocation is a no-op
/// (the arena reclaims in bulk via reset()); a null arena falls back to the
/// global heap so default-constructed containers remain correct.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Propagate on move/copy/swap so container moves steal storage in O(1)
  // instead of element-wise copying across allocator instances.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ == nullptr)
      return static_cast<T*>(::operator new(n * sizeof(T)));
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena-backed ranges are reclaimed in bulk by Arena::reset().
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator<U>& b) noexcept {
    return a.arena_ == b.arena();
  }
  template <typename U>
  friend bool operator!=(const ArenaAllocator& a,
                         const ArenaAllocator<U>& b) noexcept {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace ccc::util
