#pragma once
/// \file flat_map.hpp
/// \brief Open-addressing hash table with SoA storage for `std::uint64_t`
/// keys (PageIds), built for the residency hot path.
///
/// Design points, all load-bearing for the simulator:
///  - **Flat, power-of-two capacity, linear probing.** One cache line of
///    keys covers eight probe slots; the common hit probe touches a single
///    line instead of chasing a node pointer per lookup.
///  - **SplitMix64-mixed hashing.** PageIds pack the tenant id into the
///    high bits, so identity hashing would collapse every tenant onto the
///    same low-bit range. The finalizer gives full avalanche at ~3 cycles.
///  - **Tombstone-free backward-shift deletion.** Eviction-heavy workloads
///    (every miss at capacity erases a page) would otherwise accumulate
///    tombstones and degrade probes toward O(capacity). Backward shifting
///    keeps every probe chain as short as if the erased key had never been
///    inserted, so performance is independent of erase history.
///  - **SoA key/value arrays.** Probes scan only the key array; values are
///    touched once on match. Policies additionally rely on this to keep
///    their own dense side arrays (see NaiveConvexCachingPolicy).
///  - **Deterministic iteration.** Iteration visits slots in index order,
///    which is a pure function of the insert/erase history — two replicas
///    applying the same operation sequence iterate identically. (This is
///    weaker than insertion order, and erase() invalidates iterators.)
///
/// The full key space minus `kEmptyKey` (~0) is usable; PageIds never take
/// that value because it would require tenant id 2^24-1 at the maximum
/// local offset, and TenantId construction is range-checked well below.

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ccc::util {

/// SplitMix64 finalizer (Steele et al.), preceded by the golden-gamma
/// increment. Bijective on uint64, full avalanche. Shared by FlatMap and
/// the sharded frontend's page→shard partition so both agree on mixing.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// `Alloc` (a std-compatible allocator for Value, rebound internally for
/// the key array) defaults to the global heap; policies that must not
/// allocate on their steady-state path back it with util::ArenaAllocator.
template <typename Value, typename Alloc = std::allocator<Value>>
class FlatMap {
 public:
  using key_type = std::uint64_t;
  using mapped_type = Value;
  using allocator_type = Alloc;

  /// Reserved slot marker; never a valid key.
  static constexpr key_type kEmptyKey = ~key_type{0};

 private:
  // Proxy references: iterators materialize an Entry on demand instead of
  // storing std::pair<const K, V> (which SoA layout cannot provide). The
  // reference members make `it->second = v` and `for (auto [k, v] : m)`
  // behave like the node-map equivalents; `auto&` bindings do not compile
  // against proxies, which call sites accept by value-binding the proxy.
  struct Entry {
    const key_type& first;
    Value& second;
  };
  struct ConstEntry {
    const key_type& first;
    const Value& second;
  };
  template <typename E>
  struct ArrowProxy {
    E entry;
    E* operator->() noexcept { return &entry; }
  };

  template <bool Const>
  class Iter {
    using map_t = std::conditional_t<Const, const FlatMap, FlatMap>;
    using entry_t = std::conditional_t<Const, ConstEntry, Entry>;

   public:
    using value_type = entry_t;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iter() = default;
    Iter(map_t* map, std::size_t slot) : map_(map), slot_(slot) {}
    /// iterator → const_iterator
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : map_(other.map_), slot_(other.slot_) {}

    entry_t operator*() const {
      return entry_t{map_->keys_[slot_], map_->values_[slot_]};
    }
    ArrowProxy<entry_t> operator->() const { return ArrowProxy<entry_t>{**this}; }

    Iter& operator++() {
      ++slot_;
      skip_empty();
      return *this;
    }
    Iter operator++(int) {
      Iter copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) { return !(a == b); }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;
    void skip_empty() {
      while (slot_ < map_->keys_.size() && map_->keys_[slot_] == kEmptyKey)
        ++slot_;
    }
    map_t* map_ = nullptr;
    std::size_t slot_ = 0;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  /// Stateful-allocator construction (e.g. over a util::Arena).
  explicit FlatMap(const Alloc& alloc)
      : keys_(KeyAlloc(alloc)), values_(alloc) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pre-size so `count` keys fit without rehashing.
  void reserve(std::size_t count) {
    const std::size_t cap = min_capacity_for(count);
    if (cap > keys_.size()) rehash(cap);
  }

  void clear() noexcept {
    keys_.assign(keys_.size(), kEmptyKey);
    values_.assign(values_.size(), Value{});
    size_ = 0;
  }

  [[nodiscard]] bool contains(key_type key) const {
    return find_slot(key) != kNoSlot;
  }

  [[nodiscard]] iterator find(key_type key) {
    const std::size_t slot = find_slot(key);
    return slot == kNoSlot ? end() : iterator(this, slot);
  }
  [[nodiscard]] const_iterator find(key_type key) const {
    const std::size_t slot = find_slot(key);
    return slot == kNoSlot ? end() : const_iterator(this, slot);
  }

  [[nodiscard]] Value& at(key_type key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) throw std::out_of_range("FlatMap::at: key absent");
    return values_[slot];
  }
  [[nodiscard]] const Value& at(key_type key) const {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) throw std::out_of_range("FlatMap::at: key absent");
    return values_[slot];
  }

  Value& operator[](key_type key) { return *insert_slot(key).first; }

  /// Returns true when the key was newly inserted (false: assigned over).
  bool insert_or_assign(key_type key, Value value) {
    const auto [slot_value, inserted] = insert_slot(key);
    *slot_value = std::move(value);
    return inserted;
  }

  /// Erase by key; returns the number of elements removed (0 or 1).
  std::size_t erase(key_type key) {
    const std::size_t slot = find_slot(key);
    if (slot == kNoSlot) return 0;
    erase_at(slot);
    return 1;
  }

  /// Erase the pointed-to element. Invalidates all iterators (backward
  /// shifting may move other elements into lower slots).
  void erase(const_iterator it) {
    CCC_CHECK(it.map_ == this && it.slot_ < keys_.size() &&
                  keys_[it.slot_] != kEmptyKey,
              "FlatMap::erase: invalid iterator");
    erase_at(it.slot_);
  }

  /// Hint the cache that `key`'s home slot will be probed soon.
  void prefetch(key_type key) const {
#if defined(__GNUC__) || defined(__clang__)
    if (!keys_.empty())
      __builtin_prefetch(keys_.data() + (splitmix64(key) & mask_));
#else
    (void)key;
#endif
  }

  // Raw SoA slot arrays: slot i is live iff key_data()[i] != kEmptyKey.
  // These let whole-table passes (the windowed budget re-base) run as flat
  // index loops the compiler can vectorize instead of proxy-iterator loops.
  [[nodiscard]] const key_type* key_data() const noexcept {
    return keys_.data();
  }
  [[nodiscard]] Value* value_data() noexcept { return values_.data(); }
  [[nodiscard]] const Value* value_data() const noexcept {
    return values_.data();
  }
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return keys_.size();
  }

  [[nodiscard]] iterator begin() {
    iterator it(this, 0);
    it.skip_empty();
    return it;
  }
  [[nodiscard]] iterator end() { return iterator(this, keys_.size()); }
  [[nodiscard]] const_iterator begin() const {
    const_iterator it(this, 0);
    it.skip_empty();
    return it;
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, keys_.size());
  }

 private:
  static constexpr std::size_t kNoSlot = ~std::size_t{0};
  static constexpr std::size_t kMinCapacity = 16;

  /// Smallest power-of-two capacity holding `count` keys at ≤ 3/4 load.
  static std::size_t min_capacity_for(std::size_t count) {
    std::size_t cap = kMinCapacity;
    while (count * 4 > cap * 3) cap <<= 1;
    return cap;
  }

  [[nodiscard]] std::size_t home(key_type key) const {
    return static_cast<std::size_t>(splitmix64(key)) & mask_;
  }

  [[nodiscard]] std::size_t find_slot(key_type key) const {
    if (keys_.empty() || key == kEmptyKey) return kNoSlot;
    std::size_t slot = home(key);
    while (true) {
      const key_type stored = keys_[slot];
      if (stored == key) return slot;
      if (stored == kEmptyKey) return kNoSlot;
      slot = (slot + 1) & mask_;
    }
  }

  /// Find-or-insert: returns the value slot and whether it was created.
  std::pair<Value*, bool> insert_slot(key_type key) {
    CCC_REQUIRE(key != kEmptyKey, "FlatMap: reserved key");
    if ((size_ + 1) * 4 > keys_.size() * 3)
      rehash(min_capacity_for(size_ + 1));
    std::size_t slot = home(key);
    while (true) {
      const key_type stored = keys_[slot];
      if (stored == key) return {&values_[slot], false};
      if (stored == kEmptyKey) {
        keys_[slot] = key;
        ++size_;
        return {&values_[slot], true};
      }
      slot = (slot + 1) & mask_;
    }
  }

  void erase_at(std::size_t slot) {
    // Backward-shift deletion: walk the probe chain past `slot` and pull
    // back every element whose home precedes-or-equals the hole in cyclic
    // probe order, so no chain is ever interrupted by an empty slot.
    std::size_t hole = slot;
    std::size_t probe = slot;
    while (true) {
      probe = (probe + 1) & mask_;
      const key_type key = keys_[probe];
      if (key == kEmptyKey) break;
      const std::size_t h = home(key);
      // Cyclic distance test: the element at `probe` may move into `hole`
      // iff hole lies within [h, probe] going forward from h.
      if (((probe - h) & mask_) >= ((probe - hole) & mask_)) {
        keys_[hole] = key;
        values_[hole] = std::move(values_[probe]);
        hole = probe;
      }
    }
    keys_[hole] = kEmptyKey;
    values_[hole] = Value{};
    --size_;
  }

  void rehash(std::size_t new_capacity) {
    KeyVector old_keys = std::move(keys_);
    ValueVector old_values = std::move(values_);
    keys_.assign(new_capacity, kEmptyKey);
    values_.assign(new_capacity, Value{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      std::size_t slot = home(old_keys[i]);
      while (keys_[slot] != kEmptyKey) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      values_[slot] = std::move(old_values[i]);
      ++size_;
    }
  }

  using KeyAlloc =
      typename std::allocator_traits<Alloc>::template rebind_alloc<key_type>;
  using KeyVector = std::vector<key_type, KeyAlloc>;
  using ValueVector = std::vector<Value, Alloc>;

  KeyVector keys_;
  ValueVector values_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ccc::util
