#include "util/string_util.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ccc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::invalid_argument("cannot parse '" + std::string(s) +
                                "' as a real number");
  return value;
}

std::uint64_t parse_u64(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::invalid_argument("cannot parse '" + std::string(s) +
                                "' as a non-negative integer");
  return value;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_compact(double v) {
  char buf[64];
  const double mag = std::fabs(v);
  if (mag != 0.0 && (mag >= 1e7 || mag < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else if (v == std::floor(v) && mag < 1e7) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

}  // namespace ccc
