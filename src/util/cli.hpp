#pragma once
/// \file cli.hpp
/// \brief Minimal `--flag value` command-line parser used by the benchmark
///        and example binaries. Unknown flags are rejected so typos surface
///        immediately; every flag is registered with a help string.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccc {

/// Declarative CLI: register flags with defaults, then parse().
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Registers a flag (name without leading dashes). Returns *this to chain.
  Cli& flag(const std::string& name, const std::string& default_value,
            const std::string& help);

  /// Parses argv. Accepts `--name value` and `--name=value`.
  /// On `--help` prints usage and returns false (caller should exit 0).
  /// Throws std::invalid_argument on unknown flags or missing values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;
  [[nodiscard]] std::int64_t get_i64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Comma-separated list of u64 values.
  [[nodiscard]] std::vector<std::uint64_t> get_u64_list(
      const std::string& name) const;
  /// Comma-separated list of doubles.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Flag& lookup(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace ccc
