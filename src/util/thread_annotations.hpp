#pragma once
/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis attribute macros (`CCC_GUARDED_BY`,
///        `CCC_REQUIRES`, ...), no-ops on non-Clang compilers.
///
/// These wrap Clang's `-Wthread-safety` capability attributes so locking
/// discipline is part of the type system: a field declared
/// `CCC_GUARDED_BY(mutex_)` cannot be touched without holding `mutex_`,
/// and a function declared `CCC_REQUIRES(mutex_)` cannot be called without
/// it — checked at compile time, per call site, with zero runtime cost.
/// The `CCC_THREAD_SAFETY` CMake option turns the analysis into a hard
/// error (`-Wthread-safety -Werror=thread-safety`); a dedicated CI job
/// builds that configuration with the pinned Clang, and a negative-compile
/// test (tests/negative_compile/) proves the annotations actually reject
/// unlocked access rather than decaying into documentation.
///
/// Use the annotated `util::Mutex` / `util::MutexLock` / `util::CondVar`
/// wrappers from util/mutex.hpp — `std::mutex` itself carries no
/// capability attributes under libstdc++, so the analysis cannot see
/// through it.
///
/// Naming follows the Clang documentation's macro sheet
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a CCC_
/// prefix; only the subset this codebase uses is defined.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CCC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CCC_THREAD_ANNOTATION
#define CCC_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no analysis
#endif

/// Declares a type to be a lockable capability ("mutex" shows in
/// diagnostics).
#define CCC_CAPABILITY(name) CCC_THREAD_ANNOTATION(capability(name))

/// RAII types that acquire on construction and release on destruction.
#define CCC_SCOPED_CAPABILITY CCC_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding `mutex`.
#define CCC_GUARDED_BY(mutex) CCC_THREAD_ANNOTATION(guarded_by(mutex))

/// Pointer/smart-pointer field: the *pointee* may only be accessed while
/// holding `mutex` (the pointer itself is unguarded).
#define CCC_PT_GUARDED_BY(mutex) CCC_THREAD_ANNOTATION(pt_guarded_by(mutex))

/// Caller must hold `...` (exclusively) to call this function.
#define CCC_REQUIRES(...) \
  CCC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires `...` and does not release it before returning.
#define CCC_ACQUIRE(...) \
  CCC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases `...` (which the caller must hold on entry).
#define CCC_RELEASE(...) \
  CCC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires `...` when it returns `ret` (try_lock shape).
#define CCC_TRY_ACQUIRE(ret, ...) \
  CCC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold `...` (deadlock prevention for self-locking APIs).
#define CCC_EXCLUDES(...) CCC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the named capability (for wrapper accessors).
#define CCC_RETURN_CAPABILITY(x) CCC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use in this
/// codebase carries a comment explaining why the access is sound anyway.
#define CCC_NO_THREAD_SAFETY_ANALYSIS \
  CCC_THREAD_ANNOTATION(no_thread_safety_analysis)
