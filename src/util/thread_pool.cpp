#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CCC_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    const util::MutexLock lock(mutex_);
    CCC_CHECK(!stopping_, "submit on a stopping pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  util::MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.wait(lock);
  if (first_error_) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  CCC_REQUIRE(fn != nullptr, "parallel_for needs a function");
  try {
    for (std::size_t i = 0; i < n; ++i) {
      {
        // A captured task error makes the remaining iterations pointless;
        // stop feeding the queue and let wait_idle() report it.
        const util::MutexLock lock(mutex_);
        if (first_error_) break;
      }
      submit([&fn, i] { fn(i); });
    }
  } catch (...) {
    // Submission itself failed (allocation, pool misuse). Tasks already
    // queued capture `&fn` — they must drain before this frame unwinds or
    // they would run against a dangling reference.
    drain();
    throw;
  }
  wait_idle();
}

void ThreadPool::drain() noexcept {
  util::MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) task_available_.wait(lock);
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Anything the task throws — std::exception or not — is captured for
    // wait_idle(); nothing may escape this thread (that would terminate
    // the process). The error is recorded in the same critical section as
    // the in-flight decrement so a concurrent wait_idle() can never
    // observe "all done" without also seeing the error.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    task = nullptr;  // task destructor runs before we report completion
    {
      const util::MutexLock lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ccc
