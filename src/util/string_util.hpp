#pragma once
/// \file string_util.hpp
/// \brief Small string helpers shared by the CLI parser, table writer and
///        the cost-function spec parser.

#include <string>
#include <string_view>
#include <vector>

namespace ccc {

/// Splits `s` on `sep`; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Parses a double, throwing std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(std::string_view s);

/// Parses a non-negative integer, throwing on failure.
[[nodiscard]] std::uint64_t parse_u64(std::string_view s);

/// Fixed-precision formatting (no trailing-zero stripping).
[[nodiscard]] std::string format_double(double v, int precision = 4);

/// Human-friendly formatting: large magnitudes get thousands separators,
/// small ones keep significant digits.
[[nodiscard]] std::string format_compact(double v);

/// Escapes `s` for embedding inside a JSON string literal: backslash,
/// double quote and control characters (RFC 8259 §7).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ccc
