#pragma once
/// \file trace_io.hpp
/// \brief Plain-text trace serialization, so generated workloads can be
///        archived and replayed bit-for-bit across machines.
///
/// Format:
///   line 1: `ccc-trace 1`
///   line 2: `<num_tenants> <num_requests>`
///   then one `tenant page` pair per line.

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace ccc {

void save_trace(std::ostream& os, const Trace& trace);
void save_trace_file(const std::string& path, const Trace& trace);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] Trace load_trace(std::istream& is);
[[nodiscard]] Trace load_trace_file(const std::string& path);

/// Compact binary format for large archived traces:
///   "CCCT" magic, u32 version (=1), u32 num_tenants, u64 num_requests,
///   then (u32 tenant, u64 page) pairs, all little-endian.
void save_trace_binary(std::ostream& os, const Trace& trace);
void save_trace_binary_file(const std::string& path, const Trace& trace);
[[nodiscard]] Trace load_trace_binary(std::istream& is);
[[nodiscard]] Trace load_trace_binary_file(const std::string& path);

}  // namespace ccc
