#pragma once
/// \file generators.hpp
/// \brief Synthetic workload generators.
///
/// The paper's evaluation context (and the companion SQLVM study [14]) is a
/// multi-tenant database buffer pool. We do not have those proprietary
/// traces; these generators synthesize streams with the same structural
/// features that drive replacement decisions — skewed popularity (Zipf),
/// sequential scans, and shifting working sets — and a weighted interleaver
/// mixes per-tenant streams into one shared-cache request sequence.

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/types.hpp"
#include "util/rng.hpp"

namespace ccc {

/// Produces tenant-local page indices; stateless or internally stateful.
class PageGenerator {
 public:
  virtual ~PageGenerator() = default;

  /// Next tenant-local page index in [0, universe()).
  [[nodiscard]] virtual std::uint64_t next(Rng& rng) = 0;

  /// Size of the local page universe this generator can emit.
  [[nodiscard]] virtual std::uint64_t universe() const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<PageGenerator> clone() const = 0;
};

using PageGeneratorPtr = std::unique_ptr<PageGenerator>;

/// Uniform over [0, num_pages).
class UniformPages final : public PageGenerator {
 public:
  explicit UniformPages(std::uint64_t num_pages);
  [[nodiscard]] std::uint64_t next(Rng& rng) override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return num_pages_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<PageGenerator> clone() const override;

 private:
  std::uint64_t num_pages_;
};

/// Zipf(s) over [0, num_pages): P(rank r) ∝ 1/(r+1)^s. Rank 0 is hottest.
/// CDF inversion by binary search; exact, deterministic given the Rng.
class ZipfPages final : public PageGenerator {
 public:
  ZipfPages(std::uint64_t num_pages, double skew);
  [[nodiscard]] std::uint64_t next(Rng& rng) override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return num_pages_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<PageGenerator> clone() const override;

 private:
  std::uint64_t num_pages_;
  double skew_;
  std::vector<double> cdf_;
};

/// Cyclic sequential scan 0,1,...,n-1,0,1,... — the classic LRU-hostile
/// pattern (every request misses when n > cache share).
class ScanPages final : public PageGenerator {
 public:
  explicit ScanPages(std::uint64_t num_pages);
  [[nodiscard]] std::uint64_t next(Rng& rng) override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return num_pages_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<PageGenerator> clone() const override;

 private:
  std::uint64_t num_pages_;
  std::uint64_t position_ = 0;
};

/// Shifting working set: with probability `hot_probability` draws uniformly
/// from a hot window of `hot_size` pages; the window slides by `hot_size/2`
/// every `phase_length` draws (a phase change). Otherwise draws uniformly
/// from the whole universe.
class WorkingSetPages final : public PageGenerator {
 public:
  WorkingSetPages(std::uint64_t num_pages, std::uint64_t hot_size,
                  std::size_t phase_length, double hot_probability);
  [[nodiscard]] std::uint64_t next(Rng& rng) override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return num_pages_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<PageGenerator> clone() const override;

 private:
  std::uint64_t num_pages_;
  std::uint64_t hot_size_;
  std::size_t phase_length_;
  double hot_probability_;
  std::size_t draws_ = 0;
  std::uint64_t hot_offset_ = 0;
};

/// Markov-correlated references: with probability `follow_probability` the
/// next page is the successor of the current one along a fixed random
/// permutation cycle (modelling sequential runs / pointer chasing);
/// otherwise it re-seeds from a Zipf(skew) draw. Produces the run-plus-skew
/// structure typical of database page streams.
class MarkovPages final : public PageGenerator {
 public:
  MarkovPages(std::uint64_t num_pages, double follow_probability,
              double skew, std::uint64_t permutation_seed);
  [[nodiscard]] std::uint64_t next(Rng& rng) override;
  [[nodiscard]] std::uint64_t universe() const noexcept override {
    return num_pages_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<PageGenerator> clone() const override;

 private:
  std::uint64_t num_pages_;
  double follow_probability_;
  ZipfPages seed_distribution_;
  std::vector<std::uint64_t> successor_;  ///< permutation cycle
  std::uint64_t current_ = 0;
  bool started_ = false;
};

/// One tenant of a multi-tenant workload: a page generator plus a relative
/// request rate (interleaving weight).
struct TenantWorkload {
  PageGeneratorPtr pages;
  double weight = 1.0;
};

/// Interleaves per-tenant streams into a shared trace of `length` requests:
/// each step samples a tenant proportionally to its weight, then draws a
/// page from that tenant's generator.
[[nodiscard]] Trace generate_trace(std::vector<TenantWorkload> tenants,
                                   std::size_t length, Rng& rng);

/// Small uniform multi-tenant trace helper used heavily by tests and the
/// exact-OPT experiments: `num_tenants` tenants, `pages_per_tenant` pages
/// each, uniform popularity and equal rates.
[[nodiscard]] Trace random_uniform_trace(std::uint32_t num_tenants,
                                         std::uint64_t pages_per_tenant,
                                         std::size_t length, Rng& rng);

}  // namespace ccc
