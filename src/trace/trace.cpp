#include "trace/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

Trace::Trace(std::uint32_t num_tenants) : num_tenants_(num_tenants) {
  CCC_REQUIRE(num_tenants > 0, "a trace needs at least one tenant");
}

void Trace::append(TenantId tenant, PageId page) {
  CCC_REQUIRE(tenant < num_tenants_, "tenant id out of range");
  const auto [it, inserted] = owner_of_.emplace(page, tenant);
  CCC_REQUIRE(inserted || it->second == tenant,
              "page sets must be disjoint: page already owned by another "
              "tenant");
  requests_.push_back(Request{tenant, page});
}

TenantId Trace::owner(PageId page) const {
  const auto it = owner_of_.find(page);
  CCC_REQUIRE(it != owner_of_.end(), "page never requested in this trace");
  return it->second;
}

std::vector<std::uint64_t> Trace::requests_per_tenant() const {
  std::vector<std::uint64_t> counts(num_tenants_, 0);
  for (const Request& r : requests_) ++counts[r.tenant];
  return counts;
}

std::vector<std::uint64_t> Trace::pages_per_tenant() const {
  std::vector<std::uint64_t> counts(num_tenants_, 0);
  for (const auto& [page, tenant] : owner_of_) {
    (void)page;
    ++counts[tenant];
  }
  return counts;
}

Trace Trace::with_flush(std::size_t k) const {
  Trace out(num_tenants_ + 1);
  for (const Request& r : requests_) out.append(r);
  const TenantId dummy = num_tenants_;
  for (std::size_t j = 0; j < k; ++j)
    out.append(dummy, make_page(dummy, j));
  return out;
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  stats.length = trace.size();
  stats.distinct_pages = trace.distinct_pages();
  stats.num_tenants = trace.num_tenants();

  // Reuse distance: for each re-reference, the number of *distinct* pages
  // referenced since the previous access to the same page.
  std::unordered_map<PageId, std::size_t> last_seen;
  std::uint64_t reuse_sum = 0;
  std::uint64_t reuse_count = 0;
  const auto& reqs = trace.requests();
  for (std::size_t t = 0; t < reqs.size(); ++t) {
    const PageId page = reqs[t].page;
    const auto it = last_seen.find(page);
    if (it != last_seen.end()) {
      std::unordered_set<PageId> between;
      for (std::size_t s = it->second + 1; s < t; ++s)
        between.insert(reqs[s].page);
      reuse_sum += between.size();
      ++reuse_count;
    }
    last_seen[page] = t;
  }
  if (reuse_count > 0)
    stats.mean_reuse_distance =
        static_cast<double>(reuse_sum) / static_cast<double>(reuse_count);
  if (!reqs.empty())
    stats.hit_fraction_infinite =
        static_cast<double>(reuse_count) / static_cast<double>(reqs.size());
  return stats;
}

}  // namespace ccc
