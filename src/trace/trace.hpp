#pragma once
/// \file trace.hpp
/// \brief The request sequence σ of §1.2 plus summary statistics.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/types.hpp"

namespace ccc {

/// A finite request sequence over `num_tenants` tenants. Invariant: each
/// page is owned by exactly one tenant across the whole trace (checked on
/// append), matching the paper's disjoint page sets P_i.
class Trace {
 public:
  explicit Trace(std::uint32_t num_tenants);

  /// Appends a request; throws if `tenant` is out of range or if `page` was
  /// previously requested by a different tenant.
  void append(TenantId tenant, PageId page);
  void append(const Request& r) { append(r.tenant, r.page); }

  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }
  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return num_tenants_;
  }
  [[nodiscard]] const Request& operator[](std::size_t t) const {
    return requests_[t];
  }
  [[nodiscard]] const std::vector<Request>& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] auto begin() const noexcept { return requests_.begin(); }
  [[nodiscard]] auto end() const noexcept { return requests_.end(); }

  /// Number of distinct pages requested so far — |B(T)| in the paper.
  [[nodiscard]] std::size_t distinct_pages() const noexcept {
    return owner_of_.size();
  }

  /// Owner lookup for pages seen in this trace; throws for unknown pages.
  [[nodiscard]] TenantId owner(PageId page) const;

  /// Per-tenant request counts.
  [[nodiscard]] std::vector<std::uint64_t> requests_per_tenant() const;

  /// Distinct pages per tenant (|P_i| restricted to requested pages).
  [[nodiscard]] std::vector<std::uint64_t> pages_per_tenant() const;

  /// Returns a copy of this trace followed by `k` requests to fresh pages of
  /// a new dummy tenant — the paper's §2.1 device that forces every resident
  /// page out so evictions equal misses. The dummy tenant is the new last
  /// tenant (index = num_tenants()).
  [[nodiscard]] Trace with_flush(std::size_t k) const;

 private:
  std::uint32_t num_tenants_;
  std::vector<Request> requests_;
  std::unordered_map<PageId, TenantId> owner_of_;
};

/// Compact trace statistics for reporting.
struct TraceStats {
  std::size_t length = 0;
  std::size_t distinct_pages = 0;
  std::uint32_t num_tenants = 0;
  double mean_reuse_distance = 0.0;   ///< mean distinct pages between reuses
  double hit_fraction_infinite = 0.0; ///< fraction of re-references
};

/// Computes reuse statistics in one pass (O(T·distinct) worst case for the
/// stack-distance part, using the classic set-scan formulation).
[[nodiscard]] TraceStats compute_stats(const Trace& trace);

}  // namespace ccc
