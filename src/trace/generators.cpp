#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace ccc {

UniformPages::UniformPages(std::uint64_t num_pages) : num_pages_(num_pages) {
  CCC_REQUIRE(num_pages > 0, "UniformPages needs a non-empty universe");
}

std::uint64_t UniformPages::next(Rng& rng) { return rng.next_below(num_pages_); }

std::string UniformPages::name() const {
  return "uniform(" + std::to_string(num_pages_) + ")";
}

std::unique_ptr<PageGenerator> UniformPages::clone() const {
  return std::make_unique<UniformPages>(*this);
}

ZipfPages::ZipfPages(std::uint64_t num_pages, double skew)
    : num_pages_(num_pages), skew_(skew) {
  CCC_REQUIRE(num_pages > 0, "ZipfPages needs a non-empty universe");
  CCC_REQUIRE(skew >= 0.0, "ZipfPages skew must be >= 0");
  cdf_.resize(num_pages);
  double acc = 0.0;
  for (std::uint64_t r = 0; r < num_pages; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint64_t ZipfPages::next(Rng& rng) {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(std::distance(cdf_.begin(), it));
}

std::string ZipfPages::name() const {
  return "zipf(" + std::to_string(num_pages_) + ",s=" +
         format_compact(skew_) + ")";
}

std::unique_ptr<PageGenerator> ZipfPages::clone() const {
  return std::make_unique<ZipfPages>(*this);
}

ScanPages::ScanPages(std::uint64_t num_pages) : num_pages_(num_pages) {
  CCC_REQUIRE(num_pages > 0, "ScanPages needs a non-empty universe");
}

std::uint64_t ScanPages::next(Rng& /*rng*/) {
  const std::uint64_t page = position_;
  position_ = (position_ + 1) % num_pages_;
  return page;
}

std::string ScanPages::name() const {
  return "scan(" + std::to_string(num_pages_) + ")";
}

std::unique_ptr<PageGenerator> ScanPages::clone() const {
  return std::make_unique<ScanPages>(*this);
}

WorkingSetPages::WorkingSetPages(std::uint64_t num_pages,
                                 std::uint64_t hot_size,
                                 std::size_t phase_length,
                                 double hot_probability)
    : num_pages_(num_pages),
      hot_size_(hot_size),
      phase_length_(phase_length),
      hot_probability_(hot_probability) {
  CCC_REQUIRE(num_pages > 0, "WorkingSetPages needs a non-empty universe");
  CCC_REQUIRE(hot_size > 0 && hot_size <= num_pages,
              "hot set must be non-empty and fit in the universe");
  CCC_REQUIRE(phase_length > 0, "phase length must be positive");
  CCC_REQUIRE(hot_probability >= 0.0 && hot_probability <= 1.0,
              "hot probability must be within [0,1]");
}

std::uint64_t WorkingSetPages::next(Rng& rng) {
  if (draws_ > 0 && draws_ % phase_length_ == 0)
    hot_offset_ = (hot_offset_ + std::max<std::uint64_t>(1, hot_size_ / 2)) %
                  num_pages_;
  ++draws_;
  if (rng.next_bool(hot_probability_))
    return (hot_offset_ + rng.next_below(hot_size_)) % num_pages_;
  return rng.next_below(num_pages_);
}

std::string WorkingSetPages::name() const {
  return "workingset(" + std::to_string(num_pages_) + ",hot=" +
         std::to_string(hot_size_) + ",phase=" + std::to_string(phase_length_) +
         ",p=" + format_compact(hot_probability_) + ")";
}

std::unique_ptr<PageGenerator> WorkingSetPages::clone() const {
  return std::make_unique<WorkingSetPages>(*this);
}

MarkovPages::MarkovPages(std::uint64_t num_pages, double follow_probability,
                         double skew, std::uint64_t permutation_seed)
    : num_pages_(num_pages),
      follow_probability_(follow_probability),
      seed_distribution_(num_pages, skew) {
  CCC_REQUIRE(num_pages > 0, "MarkovPages needs a non-empty universe");
  CCC_REQUIRE(follow_probability >= 0.0 && follow_probability <= 1.0,
              "follow probability must be within [0,1]");
  // A single random cycle: shuffle, then successor[perm[i]] = perm[i+1].
  std::vector<std::uint64_t> perm(num_pages);
  for (std::uint64_t i = 0; i < num_pages; ++i) perm[i] = i;
  Rng perm_rng(permutation_seed);
  perm_rng.shuffle(perm);
  successor_.resize(num_pages);
  for (std::uint64_t i = 0; i < num_pages; ++i)
    successor_[perm[i]] = perm[(i + 1) % num_pages];
}

std::uint64_t MarkovPages::next(Rng& rng) {
  if (started_ && rng.next_bool(follow_probability_)) {
    current_ = successor_[current_];
  } else {
    current_ = seed_distribution_.next(rng);
    started_ = true;
  }
  return current_;
}

std::string MarkovPages::name() const {
  return "markov(" + std::to_string(num_pages_) + ",p=" +
         format_compact(follow_probability_) + ")";
}

std::unique_ptr<PageGenerator> MarkovPages::clone() const {
  return std::make_unique<MarkovPages>(*this);
}

Trace generate_trace(std::vector<TenantWorkload> tenants, std::size_t length,
                     Rng& rng) {
  CCC_REQUIRE(!tenants.empty(), "generate_trace needs at least one tenant");
  double total_weight = 0.0;
  for (const auto& tenant : tenants) {
    CCC_REQUIRE(tenant.pages != nullptr, "every tenant needs a generator");
    CCC_REQUIRE(tenant.weight > 0.0, "tenant weights must be positive");
    total_weight += tenant.weight;
  }

  Trace trace(static_cast<std::uint32_t>(tenants.size()));
  for (std::size_t t = 0; t < length; ++t) {
    double u = rng.next_double() * total_weight;
    std::size_t chosen = tenants.size() - 1;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      u -= tenants[i].weight;
      if (u < 0.0) {
        chosen = i;
        break;
      }
    }
    const auto tenant = static_cast<TenantId>(chosen);
    trace.append(tenant, make_page(tenant, tenants[chosen].pages->next(rng)));
  }
  return trace;
}

Trace random_uniform_trace(std::uint32_t num_tenants,
                           std::uint64_t pages_per_tenant, std::size_t length,
                           Rng& rng) {
  std::vector<TenantWorkload> tenants;
  tenants.reserve(num_tenants);
  for (std::uint32_t i = 0; i < num_tenants; ++i)
    tenants.push_back({std::make_unique<UniformPages>(pages_per_tenant), 1.0});
  return generate_trace(std::move(tenants), length, rng);
}

}  // namespace ccc
