#pragma once
/// \file transforms.hpp
/// \brief Structural trace transformations used to build composite
///        workloads and to carve evaluation subsets out of archived traces.

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ccc {

/// Requests [begin, end) of `trace` as a new trace (same tenant space).
[[nodiscard]] Trace slice(const Trace& trace, std::size_t begin,
                          std::size_t end);

/// Concatenation; both traces must agree on the tenant count and any page
/// appearing in both must have the same owner (checked).
[[nodiscard]] Trace concat(const Trace& head, const Trace& tail);

/// Keeps only the requests of `tenant`, renumbered as tenant 0 of a
/// single-tenant trace (for per-tenant analysis).
[[nodiscard]] Trace isolate_tenant(const Trace& trace, TenantId tenant);

/// Keeps each request independently with probability `rate` (thinning) —
/// models a sampled trace collector.
[[nodiscard]] Trace sample(const Trace& trace, double rate, Rng& rng);

/// Interleaves two traces by drawing the next request from `a` with
/// probability `weight_a/(weight_a+weight_b)` until both are exhausted.
/// Tenants of `b` are shifted past those of `a`; pages keep their ids,
/// which therefore must not collide (guaranteed for make_page streams with
/// disjoint tenant ids after shifting).
[[nodiscard]] Trace interleave(const Trace& a, const Trace& b,
                               double weight_a, double weight_b, Rng& rng);

}  // namespace ccc
