#include "trace/transforms.hpp"

#include "util/check.hpp"

namespace ccc {

Trace slice(const Trace& trace, std::size_t begin, std::size_t end) {
  CCC_REQUIRE(begin <= end && end <= trace.size(),
              "slice bounds out of range");
  Trace out(trace.num_tenants());
  for (std::size_t t = begin; t < end; ++t) out.append(trace[t]);
  return out;
}

Trace concat(const Trace& head, const Trace& tail) {
  CCC_REQUIRE(head.num_tenants() == tail.num_tenants(),
              "concat requires matching tenant counts");
  Trace out(head.num_tenants());
  for (const Request& r : head) out.append(r);
  for (const Request& r : tail) out.append(r);  // ownership re-checked here
  return out;
}

Trace isolate_tenant(const Trace& trace, TenantId tenant) {
  CCC_REQUIRE(tenant < trace.num_tenants(), "tenant id out of range");
  Trace out(1);
  for (const Request& r : trace)
    if (r.tenant == tenant) out.append(0, r.page);
  return out;
}

Trace sample(const Trace& trace, double rate, Rng& rng) {
  CCC_REQUIRE(rate >= 0.0 && rate <= 1.0, "sampling rate must be in [0,1]");
  Trace out(trace.num_tenants());
  for (const Request& r : trace)
    if (rng.next_bool(rate)) out.append(r);
  return out;
}

Trace interleave(const Trace& a, const Trace& b, double weight_a,
                 double weight_b, Rng& rng) {
  CCC_REQUIRE(weight_a > 0.0 && weight_b > 0.0,
              "interleave weights must be positive");
  Trace out(a.num_tenants() + b.num_tenants());
  std::size_t ia = 0, ib = 0;
  const double p_a = weight_a / (weight_a + weight_b);
  while (ia < a.size() || ib < b.size()) {
    const bool take_a =
        ib >= b.size() || (ia < a.size() && rng.next_bool(p_a));
    if (take_a) {
      out.append(a[ia].tenant, a[ia].page);
      ++ia;
    } else {
      out.append(b[ib].tenant + a.num_tenants(), b[ib].page);
      ++ib;
    }
  }
  return out;
}

}  // namespace ccc
