#pragma once
/// \file types.hpp
/// \brief Fundamental identifiers of the multi-tenant caching model (§1.2):
///        tenants (users) own disjoint page sets; a trace is a sequence of
///        page requests, each belonging to a unique tenant.

#include <cstdint>

namespace ccc {

/// Tenant (user) identifier; tenants are numbered 0..n-1.
using TenantId = std::uint32_t;

/// Globally unique page identifier.
using PageId = std::uint64_t;

/// Discrete time step (index into the request sequence), 0-based.
using TimeStep = std::size_t;

/// Number of bits reserved for a tenant-local page index inside a PageId.
inline constexpr unsigned kPageLocalBits = 40;

/// Builds a globally unique PageId from (tenant, local index). Keeping the
/// owner in the high bits makes ownership recoverable and guarantees the
/// paper's "each page belongs to a unique user" disjointness by construction.
[[nodiscard]] constexpr PageId make_page(TenantId tenant,
                                         std::uint64_t local) noexcept {
  return (static_cast<PageId>(tenant) << kPageLocalBits) | local;
}

/// Recovers the owning tenant from a PageId built by make_page.
[[nodiscard]] constexpr TenantId page_owner(PageId page) noexcept {
  return static_cast<TenantId>(page >> kPageLocalBits);
}

/// Recovers the tenant-local index from a PageId built by make_page.
[[nodiscard]] constexpr std::uint64_t page_local(PageId page) noexcept {
  return page & ((PageId{1} << kPageLocalBits) - 1);
}

/// One element of the request sequence σ: tenant `tenant` requests `page`.
struct Request {
  TenantId tenant;
  PageId page;

  friend bool operator==(const Request&, const Request&) = default;
};

}  // namespace ccc
