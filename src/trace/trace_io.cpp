#include "trace/trace_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace ccc {

namespace {

/// Loader-side validation. Trace's own constructor/append reject bad data
/// with std::invalid_argument (API misuse), but from a loader the same
/// conditions are malformed *input* and belong to the documented
/// std::runtime_error contract — a zero-tenant header, an out-of-range
/// tenant id, or a page claimed by two tenants must all surface the same
/// way as a truncated stream.
Trace checked_trace(std::uint32_t num_tenants) {
  if (num_tenants == 0)
    throw std::runtime_error("trace header declares zero tenants");
  return Trace(num_tenants);
}

void checked_append(Trace& trace, TenantId tenant, PageId page,
                    std::uint64_t index) {
  try {
    trace.append(tenant, page);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("invalid request " + std::to_string(index) +
                             ": " + e.what());
  }
}

}  // namespace

void save_trace(std::ostream& os, const Trace& trace) {
  os << "ccc-trace 1\n"
     << trace.num_tenants() << ' ' << trace.size() << '\n';
  for (const Request& r : trace) os << r.tenant << ' ' << r.page << '\n';
}

void save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "' for writing");
  save_trace(file, trace);
  if (!file) throw std::runtime_error("failed writing trace to '" + path + "'");
}

Trace load_trace(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "ccc-trace" || version != 1)
    throw std::runtime_error("not a ccc-trace v1 stream");
  std::uint32_t num_tenants = 0;
  std::size_t num_requests = 0;
  if (!(is >> num_tenants >> num_requests))
    throw std::runtime_error("malformed trace header");
  Trace trace = checked_trace(num_tenants);
  for (std::size_t i = 0; i < num_requests; ++i) {
    TenantId tenant = 0;
    PageId page = 0;
    if (!(is >> tenant >> page))
      throw std::runtime_error("truncated trace body at request " +
                               std::to_string(i));
    checked_append(trace, tenant, page, i);
  }
  return trace;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "' for reading");
  return load_trace(file);
}

namespace {

constexpr char kBinaryMagic[4] = {'C', 'C', 'C', 'T'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_le(std::ostream& os, T value) {
  // The library only targets little-endian hosts; a static check keeps the
  // format honest if that ever changes.
  static_assert(std::endian::native == std::endian::little,
                "binary trace format assumes a little-endian host");
  os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] T read_le(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!is) throw std::runtime_error("truncated binary trace");
  return value;
}

}  // namespace

void save_trace_binary(std::ostream& os, const Trace& trace) {
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  write_le(os, kBinaryVersion);
  write_le(os, trace.num_tenants());
  write_le(os, static_cast<std::uint64_t>(trace.size()));
  for (const Request& r : trace) {
    write_le(os, r.tenant);
    write_le(os, r.page);
  }
}

void save_trace_binary_file(const std::string& path, const Trace& trace) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open '" + path + "' for writing");
  save_trace_binary(file, trace);
  if (!file) throw std::runtime_error("failed writing trace to '" + path + "'");
}

Trace load_trace_binary(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
    throw std::runtime_error("not a CCCT binary trace");
  if (read_le<std::uint32_t>(is) != kBinaryVersion)
    throw std::runtime_error("unsupported binary trace version");
  const auto num_tenants = read_le<std::uint32_t>(is);
  const auto num_requests = read_le<std::uint64_t>(is);
  Trace trace = checked_trace(num_tenants);
  for (std::uint64_t i = 0; i < num_requests; ++i) {
    const auto tenant = read_le<TenantId>(is);
    const auto page = read_le<PageId>(is);
    checked_append(trace, tenant, page, i);
  }
  return trace;
}

Trace load_trace_binary_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open '" + path + "' for reading");
  return load_trace_binary(file);
}

}  // namespace ccc
