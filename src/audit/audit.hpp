#pragma once
/// \file audit.hpp
/// \brief Runtime verification of ALG-DISCRETE and its eviction index —
///        the §2.3 "execute the proof" philosophy applied to the production
///        code path while it runs.
///
/// `ConvexCachingAuditor` plugs into `SimulatorSession` (via the
/// `PolicyAuditor` hook, compiled behind `CCC_AUDIT`) and shadow-checks, at
/// configurable cadence:
///
///  1. **Victim minimality** (Fig. 3, "let p be the page with smallest
///     B(p)"): every victim the index picks is re-derived by a naive scan
///     over all resident budgets, tie broken by lowest page id.
///  2. **Dual non-negativity** — invariant (1c): the dual `y_t` rises by
///     exactly B(victim) per eviction, so B(victim) ≥ 0 (convex costs).
///  3. **Budget bounds** — the discrete analogue of invariants (2a)/(3a):
///     for every resident page, 0 ≤ B(p) ≤ f'_{i(p)}(m(i(p))+1). The lower
///     bound is (3a) (a resident interval has non-negative gradient slack,
///     z = 0); the upper bound holds because B(p) starts at the marginal
///     and each eviction moves it down by B(victim) ≥ 0 relative to the
///     marginal. Both are skipped automatically for non-convex §2.5 costs,
///     where Fig. 3 gives no guarantee.
///  4. **Eviction-index consistency**: the policy's resident-page table
///     matches the simulator's cache; every resident page is covered by a
///     fresh posting (key match) whose score does not over-estimate
///     `key + tenant bump` (the lazy-invalidation soundness invariant);
///     global offset and per-tenant bumps are finite; dead postings stay
///     within the compaction bound
///     `max(kCompactionMinimum, kCompactionFactor · live)`.
///  5. **ALG-CONT shadow** (opt-in): the observed request stream is
///     replayed through `run_alg_cont` at end of run and the full §2.3
///     certificate is verified by `check_invariants` (Lemma 2.1), plus an
///     optional per-tenant eviction-count comparison against the live
///     policy (exact only for integer-valued cost families).
///
/// Violations are collected in an `AuditReport`; `fail_fast` turns the
/// first violation into a `std::logic_error` so CI aborts at the point of
/// corruption.

#include <cstdint>
#include <string>
#include <vector>

#include "core/convex_caching.hpp"
#include "sim/simulator.hpp"

namespace ccc {

struct AuditConfig {
  /// Run the per-step checks (budgets, index) every Nth request.
  std::uint64_t step_cadence = 1;
  /// Run the victim-minimality check every Nth eviction.
  std::uint64_t eviction_cadence = 1;
  /// Absolute tolerance for floating-point comparisons.
  double tolerance = 1e-7;
  /// Throw std::logic_error at the first violation instead of collecting.
  bool fail_fast = false;
  bool check_victim_minimality = true;
  /// B(p) ∈ [0, f'(m+1)] — auto-skipped unless every cost is convex.
  bool check_budget_bounds = true;
  bool check_index = true;
  /// Replay the observed requests through ALG-CONT at end of run and
  /// machine-check the §2.3 invariants (Lemma 2.1) on the transcript.
  bool shadow_alg_cont = false;
  /// With shadow_alg_cont: also require the continuous run's per-tenant
  /// eviction counts to equal the audited policy's. Exact only for
  /// integer-valued cost families (floating point may legitimately break
  /// ties differently otherwise) — leave off unless the costs qualify.
  bool shadow_compare_evictions = false;
  /// Shadow replay is skipped beyond this many requests (O(k) per miss).
  std::size_t max_shadow_requests = std::size_t{1} << 20;
  /// At most this many violations keep their full diagnostics.
  std::size_t max_recorded_failures = 16;
};

/// One audit failure: which check fired, when, and why.
struct AuditViolation {
  std::string check;   ///< "victim-minimality", "budget-bounds", ...
  std::string detail;  ///< first-failure diagnostics
  TimeStep time = 0;   ///< request index at which the check ran
};

/// Outcome of one audited run. `ok()` must be consulted — a dropped report
/// would silently discard detected invariant violations.
struct [[nodiscard]] AuditReport {
  std::uint64_t steps_observed = 0;
  std::uint64_t victim_checks = 0;
  std::uint64_t budget_checks = 0;   ///< pages whose bounds were verified
  std::uint64_t index_checks = 0;
  std::uint64_t shadow_checks = 0;   ///< ALG-CONT replays verified
  std::uint64_t violations = 0;
  std::vector<AuditViolation> failures;  ///< capped at max_recorded_failures

  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
  /// One-line human-readable digest (counts + first failure, if any).
  [[nodiscard]] std::string summary() const;
};

/// The runtime auditor for `ConvexCachingPolicy`. Attach via
/// `SimOptions.auditor`; non-ConvexCaching policies are observed but only
/// the ALG-CONT shadow applies to them. One auditor audits one run at a
/// time; `on_reset` clears the report.
class ConvexCachingAuditor final : public PolicyAuditor {
 public:
  explicit ConvexCachingAuditor(AuditConfig config = {});

  /// Audits `target` instead of the policy the session drives. Needed when
  /// the driven policy wraps or proxies the real ConvexCachingPolicy (see
  /// the wrong-victim mutation test).
  void set_target(const ConvexCachingPolicy* target) noexcept {
    target_ = target;
  }

  void on_reset(const PolicyContext& ctx) override;
  void on_victim_chosen(const Request& request, PageId victim,
                        const CacheState& cache, ReplacementPolicy& policy,
                        TimeStep time) override;
  void on_step(const StepEvent& event, const CacheState& cache,
               ReplacementPolicy& policy, TimeStep time) override;
  void on_run_end(const CacheState& cache, ReplacementPolicy& policy) override;

  [[nodiscard]] const AuditReport& report() const noexcept { return report_; }
  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

  /// Runs every per-step check immediately, ignoring cadence. Public so
  /// mutation tests can corrupt policy state and force a verdict without
  /// arranging for the next sampled step.
  void audit_now(const ConvexCachingPolicy& policy, const CacheState& cache,
                 TimeStep time);

  /// Individual checks (audit_now composes them; public for tests).
  void check_budget_bounds(const ConvexCachingPolicy& policy,
                           const CacheState& cache, TimeStep time);
  void check_victim_minimality(const ConvexCachingPolicy& policy,
                               const CacheState& cache, PageId victim,
                               TimeStep time);
  void check_index(const ConvexCachingPolicy& policy, const CacheState& cache,
                   TimeStep time);

 private:
  [[nodiscard]] const ConvexCachingPolicy* resolve(
      ReplacementPolicy& policy) const;
  void violation(const std::string& check, const std::string& detail,
                 TimeStep time);
  void check_residency_agreement(const ConvexCachingPolicy& policy,
                                 const CacheState& cache, TimeStep time);
  void shadow_check(ReplacementPolicy& policy);

  AuditConfig config_;
  AuditReport report_;
  const ConvexCachingPolicy* target_ = nullptr;

  // Captured from PolicyContext at on_reset.
  std::size_t capacity_ = 0;
  std::uint32_t num_tenants_ = 0;
  const std::vector<CostFunctionPtr>* costs_ = nullptr;
  bool all_convex_ = false;

  std::uint64_t evictions_seen_ = 0;
  /// Request stream accumulated for the ALG-CONT shadow replay.
  std::vector<Request> observed_;
  bool shadow_overflow_ = false;
};

}  // namespace ccc
