#include "audit/audit.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/invariants.hpp"
#include "core/primal_dual.hpp"
#include "util/check.hpp"

namespace ccc {

namespace {

/// Read-only view of a std::priority_queue's underlying container (the
/// standard protected-member access idiom). The audit needs to *enumerate*
/// postings, which the queue interface deliberately hides.
template <typename T, typename Container, typename Compare>
const Container& heap_container(
    const std::priority_queue<T, Container, Compare>& q) {
  struct Peek : std::priority_queue<T, Container, Compare> {
    static const Container& get(
        const std::priority_queue<T, Container, Compare>& base) {
      return base.*&Peek::c;
    }
  };
  return Peek::get(q);
}

std::string page_str(PageId page) { return std::to_string(page); }

}  // namespace

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << "audit: " << steps_observed << " steps, " << victim_checks
     << " victim checks, " << budget_checks << " budget checks, "
     << index_checks << " index checks, " << shadow_checks
     << " shadow replays, " << violations << " violations";
  if (!failures.empty())
    os << "; first: [" << failures.front().check << "] t="
       << failures.front().time << " " << failures.front().detail;
  return os.str();
}

ConvexCachingAuditor::ConvexCachingAuditor(AuditConfig config)
    : config_(config) {
  CCC_REQUIRE(config_.step_cadence > 0, "step_cadence must be positive");
  CCC_REQUIRE(config_.eviction_cadence > 0,
              "eviction_cadence must be positive");
}

void ConvexCachingAuditor::on_reset(const PolicyContext& ctx) {
  report_ = AuditReport{};
  evictions_seen_ = 0;
  observed_.clear();
  shadow_overflow_ = false;
  capacity_ = ctx.capacity;
  num_tenants_ = ctx.num_tenants;
  costs_ = ctx.costs;
  all_convex_ = costs_ != nullptr;
  if (costs_ != nullptr)
    for (std::uint32_t t = 0; t < num_tenants_; ++t)
      if (!(*costs_)[t]->is_convex()) all_convex_ = false;
}

const ConvexCachingPolicy* ConvexCachingAuditor::resolve(
    ReplacementPolicy& policy) const {
  if (target_ != nullptr) return target_;
  return dynamic_cast<const ConvexCachingPolicy*>(&policy);
}

void ConvexCachingAuditor::violation(const std::string& check,
                                     const std::string& detail,
                                     TimeStep time) {
  ++report_.violations;
  if (report_.failures.size() < config_.max_recorded_failures)
    report_.failures.push_back(AuditViolation{check, detail, time});
  if (config_.fail_fast)
    throw std::logic_error("audit violation [" + check + "] at t=" +
                           std::to_string(time) + ": " + detail);
}

void ConvexCachingAuditor::on_victim_chosen(const Request& /*request*/,
                                            PageId victim,
                                            const CacheState& cache,
                                            ReplacementPolicy& policy,
                                            TimeStep time) {
  ++evictions_seen_;
  if (!config_.check_victim_minimality) return;
  if (evictions_seen_ % config_.eviction_cadence != 0) return;
  const ConvexCachingPolicy* ccp = resolve(policy);
  if (ccp == nullptr) return;
  check_victim_minimality(*ccp, cache, victim, time);
}

void ConvexCachingAuditor::on_step(const StepEvent& event,
                                   const CacheState& cache,
                                   ReplacementPolicy& policy, TimeStep time) {
  ++report_.steps_observed;
  if (config_.shadow_alg_cont) {
    if (observed_.size() < config_.max_shadow_requests)
      observed_.push_back(event.request);
    else
      shadow_overflow_ = true;
  }
  if (report_.steps_observed % config_.step_cadence != 0) return;
  const ConvexCachingPolicy* ccp = resolve(policy);
  if (ccp == nullptr) return;
  audit_now(*ccp, cache, time);
}

void ConvexCachingAuditor::on_run_end(const CacheState& /*cache*/,
                                      ReplacementPolicy& policy) {
  shadow_check(policy);
}

void ConvexCachingAuditor::audit_now(const ConvexCachingPolicy& policy,
                                     const CacheState& cache, TimeStep time) {
  check_residency_agreement(policy, cache, time);
  if (config_.check_budget_bounds) check_budget_bounds(policy, cache, time);
  if (config_.check_index) check_index(policy, cache, time);
}

void ConvexCachingAuditor::check_residency_agreement(
    const ConvexCachingPolicy& policy, const CacheState& cache,
    TimeStep time) {
  if (policy.pages_.size() != cache.size())
    violation("residency",
              "policy tracks " + std::to_string(policy.pages_.size()) +
                  " pages, cache holds " + std::to_string(cache.size()),
              time);
  for (const auto& [page, state] : policy.pages_) {
    if (!cache.contains(page)) {
      violation("residency",
                "policy tracks non-resident page " + page_str(page), time);
      continue;
    }
    if (cache.owner(page) != state.tenant)
      violation("residency",
                "page " + page_str(page) + " owner mismatch: policy says " +
                    std::to_string(state.tenant) + ", cache says " +
                    std::to_string(cache.owner(page)),
                time);
  }
}

void ConvexCachingAuditor::check_budget_bounds(
    const ConvexCachingPolicy& policy, const CacheState& /*cache*/,
    TimeStep time) {
  const double tol = config_.tolerance;
  for (const auto& [page, state] : policy.pages_) {
    ++report_.budget_checks;
    const double eff = policy.effective(state.key, state.tenant);
    if (!std::isfinite(eff)) {
      violation("budget-bounds",
                "non-finite budget for page " + page_str(page), time);
      continue;
    }
    // The bounds are only a theorem for convex costs (§2.5 waives them).
    if (!all_convex_) continue;
    if (eff < -tol) {
      violation("budget-bounds",
                "B(" + page_str(page) + ") = " + std::to_string(eff) +
                    " < 0 — invariant (3a) analogue violated",
                time);
      continue;
    }
    const double marginal = policy.next_marginal(state.tenant);
    if (eff > marginal + tol)
      violation("budget-bounds",
                "B(" + page_str(page) + ") = " + std::to_string(eff) +
                    " exceeds next marginal f'(m+1) = " +
                    std::to_string(marginal) + " of tenant " +
                    std::to_string(state.tenant),
                time);
  }
}

void ConvexCachingAuditor::check_victim_minimality(
    const ConvexCachingPolicy& policy, const CacheState& /*cache*/,
    PageId victim, TimeStep time) {
  ++report_.victim_checks;
  const auto victim_it = policy.pages_.find(victim);
  if (victim_it == policy.pages_.end()) {
    violation("victim-minimality",
              "victim " + page_str(victim) + " is not tracked as resident",
              time);
    return;
  }
  // Naive Fig. 3 recomputation: argmin of effective budget, lowest page id
  // on ties — exactly what the O(log k) index must reproduce.
  bool found = false;
  double best_eff = 0.0;
  PageId best_page = 0;
  for (const auto& [page, state] : policy.pages_) {
    const double eff = policy.effective(state.key, state.tenant);
    if (!found || eff < best_eff || (eff == best_eff && page < best_page)) {
      found = true;
      best_eff = eff;
      best_page = page;
    }
  }
  if (best_page != victim)
    violation("victim-minimality",
              "index chose page " + page_str(victim) + " (B=" +
                  std::to_string(policy.effective(victim_it->second.key,
                                                  victim_it->second.tenant)) +
                  ") but the naive scan finds page " + page_str(best_page) +
                  " (B=" + std::to_string(best_eff) + ")",
              time);
  // Invariant (1c): y_t rises by B(victim), so B(victim) must be ≥ 0.
  if (all_convex_ && policy.effective(victim_it->second.key,
                                      victim_it->second.tenant) <
                         -config_.tolerance)
    violation("dual-nonnegativity",
              "eviction would raise y_t by the negative amount B(" +
                  page_str(victim) + ") = " +
                  std::to_string(policy.effective(victim_it->second.key,
                                                  victim_it->second.tenant)),
              time);
}

void ConvexCachingAuditor::check_index(const ConvexCachingPolicy& policy,
                                       const CacheState& /*cache*/,
                                       TimeStep time) {
  ++report_.index_checks;
  const double tol = config_.tolerance;
  if (!std::isfinite(policy.offset_))
    violation("index-state", "global debit offset is not finite", time);
  for (std::size_t t = 0; t < policy.tenant_bump_.size(); ++t)
    if (!std::isfinite(policy.tenant_bump_[t]))
      violation("index-state",
                "bump of tenant " + std::to_string(t) + " is not finite",
                time);

  if (policy.options_.index == VictimIndex::kTenantScan) {
    // Scan mode: every resident page needs a fresh entry in its tenant's
    // heap (key match ⇒ the entry scores correctly, keys are exact).
    std::unordered_set<PageId> covered;
    for (const auto& heap : policy.heaps_)
      for (const auto& entry : heap_container(heap)) {
        const auto it = policy.pages_.find(entry.page);
        if (it != policy.pages_.end() && it->second.key == entry.key)
          covered.insert(entry.page);
      }
    for (const auto& [page, state] : policy.pages_) {
      (void)state;
      if (!covered.contains(page))
        violation("index-coverage",
                  "resident page " + page_str(page) +
                      " has no fresh posting in its tenant heap",
                  time);
    }
    return;
  }

  const auto& entries = heap_container(policy.global_);
  // Stale-fraction bound: dead postings are compacted 4:1, so the heap can
  // never grow unboundedly relative to the resident set.
  const std::size_t bound =
      std::max(ConvexCachingPolicy::kCompactionMinimum,
               ConvexCachingPolicy::kCompactionFactor * policy.pages_.size());
  if (entries.size() > bound)
    violation("index-compaction",
              "global heap holds " + std::to_string(entries.size()) +
                  " postings for " + std::to_string(policy.pages_.size()) +
                  " resident pages (bound " + std::to_string(bound) + ")",
              time);

  // A posting is fresh iff it refers to the page's *current* budget
  // setting (key match). Lazy-invalidation soundness: each resident page
  // must have a fresh posting, and its best fresh posting must not
  // over-estimate key + bump — otherwise the heap could surface a wrong
  // minimum before it.
  std::unordered_map<PageId, double> min_fresh_score;
  for (const auto& entry : entries) {
    const auto it = policy.pages_.find(entry.page);
    if (it == policy.pages_.end() || it->second.tenant != entry.tenant ||
        it->second.key != entry.key)
      continue;  // dead posting — skipped lazily by the index, fine
    const auto [slot, inserted] =
        min_fresh_score.try_emplace(entry.page, entry.score);
    if (!inserted) slot->second = std::min(slot->second, entry.score);
  }
  for (const auto& [page, state] : policy.pages_) {
    const auto it = min_fresh_score.find(page);
    if (it == min_fresh_score.end()) {
      violation("index-coverage",
                "resident page " + page_str(page) +
                    " has no fresh posting in the global heap",
                time);
      continue;
    }
    const double current = state.key + policy.tenant_bump_[state.tenant];
    if (it->second > current + tol)
      violation("index-soundness",
                "best fresh posting of page " + page_str(page) +
                    " scores " + std::to_string(it->second) +
                    " > key + bump = " + std::to_string(current) +
                    " — the lazy heap would rank it too low",
                time);
  }
}

void ConvexCachingAuditor::shadow_check(ReplacementPolicy& policy) {
  if (!config_.shadow_alg_cont) return;
  if (costs_ == nullptr || observed_.empty() || shadow_overflow_) return;
  if (!all_convex_) return;  // §2.3 invariants are a convex-cost theorem

  Trace trace(num_tenants_);
  try {
    for (const Request& r : observed_) trace.append(r);
  } catch (const std::exception& e) {
    violation("shadow-trace",
              std::string("observed request stream is not a valid trace: ") +
                  e.what(),
              observed_.size());
    return;
  }

  const PrimalDualRun run = run_alg_cont(trace, capacity_, *costs_);
  const InvariantReport inv =
      check_invariants(run, trace, capacity_, *costs_);
  ++report_.shadow_checks;
  if (!inv.ok(config_.tolerance)) {
    std::string detail = "ALG-CONT replay violates §2.3:";
    for (const std::string& f : inv.failures) detail += " " + f;
    violation("alg-cont-invariants", detail, trace.size());
  }

  if (!config_.shadow_compare_evictions) return;
  const ConvexCachingPolicy* ccp = resolve(policy);
  if (ccp == nullptr) return;
  const ConvexCachingOptions& opt = ccp->options();
  // The discrete ≡ continuous eviction theorem needs Fig. 3 as written:
  // analytic derivative, whole-run accounting, both budget updates on.
  if (opt.derivative != DerivativeMode::kAnalytic || opt.window_length != 0 ||
      !opt.debit_survivors || !opt.bump_victim_tenant)
    return;
  const std::vector<std::uint64_t>& discrete = ccp->tenant_evictions();
  for (std::uint32_t t = 0; t < num_tenants_; ++t) {
    const std::uint64_t cont = run.final_m[t];
    if (discrete[t] != cont)
      violation("shadow-evictions",
                "tenant " + std::to_string(t) + ": ALG-DISCRETE evicted " +
                    std::to_string(discrete[t]) + " pages, ALG-CONT " +
                    std::to_string(cont),
                trace.size());
  }
}

}  // namespace ccc
