#include "exp/adversary.hpp"

#include "util/check.hpp"

namespace ccc {

AdversaryRun run_adversary(std::uint32_t n, std::size_t length,
                           ReplacementPolicy& policy,
                           const std::vector<CostFunctionPtr>& costs) {
  CCC_REQUIRE(n >= 2, "the adversary needs at least two tenants");
  CCC_REQUIRE(costs.size() >= n, "need one cost function per tenant");
  CCC_REQUIRE(length >= n, "run at least n requests to pass warm-up");

  AdversaryRun run(n);
  const std::size_t capacity = n - 1;
  SimulatorSession session(capacity, n, policy, &costs);

  // Tenant i owns the single page make_page(i, 0).
  for (std::size_t t = 0; t < length; ++t) {
    TenantId target = 0;
    if (t < capacity) {
      // Warm-up: fill the cache with the first n−1 pages.
      target = static_cast<TenantId>(t);
    } else {
      // Request the unique page missing from the algorithm's cache.
      bool found = false;
      for (TenantId i = 0; i < n; ++i) {
        if (!session.cache().contains(make_page(i, 0))) {
          target = i;
          found = true;
          break;
        }
      }
      CCC_CHECK(found, "cache unexpectedly holds every page");
    }
    const Request request{target, make_page(target, 0)};
    run.trace.append(request);
    session.step(request);
  }
  run.alg_metrics = session.metrics();
  std::vector<std::uint64_t> misses(run.alg_metrics.miss_vector().begin(),
                                    run.alg_metrics.miss_vector().end());
  run.alg_cost = total_cost(misses, costs);
  return run;
}

}  // namespace ccc
