#pragma once
/// \file adversary.hpp
/// \brief The §4 lower-bound construction (Theorem 1.4), executed.
///
/// n tenants, one page each, cache size k = n−1. The adaptive adversary
/// watches the online algorithm's cache and always requests the unique
/// missing page, forcing an eviction on every request after warm-up. The
/// run returns both the algorithm's metrics and the generated trace, so the
/// batch-balancing offline scheme (and OPT bounds) can be evaluated on the
/// exact same sequence.

#include <vector>

#include "cost/cost_function.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace ccc {

struct AdversaryRun {
  Trace trace;            ///< the adaptively generated sequence
  Metrics alg_metrics;    ///< the online algorithm's accounting on it
  double alg_cost = 0.0;  ///< Σ f_i(misses_i) for the online algorithm

  explicit AdversaryRun(std::uint32_t num_tenants)
      : trace(num_tenants), alg_metrics(num_tenants) {}
};

/// Runs `policy` for `length` requests against the adaptive adversary with
/// `n` single-page tenants and cache size n−1. `costs` must have n entries.
[[nodiscard]] AdversaryRun run_adversary(std::uint32_t n, std::size_t length,
                                         ReplacementPolicy& policy,
                                         const std::vector<CostFunctionPtr>& costs);

}  // namespace ccc
