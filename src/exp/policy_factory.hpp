#pragma once
/// \file policy_factory.hpp
/// \brief Name-based policy construction for benchmark/example CLIs.
///
/// Known names: lru, clock, 2q, arc, fifo, lfu, random, marking, lru2
/// (LRU-K with K=2), landlord, static (equal-quota static partition),
/// convex (ALG-DISCRETE, global O(log k) eviction index), convex-scan
/// (per-tenant-heap index, O(n_tenants) per eviction), convex-naive,
/// convex-discrete (§2.5 marginals), belady (offline).

#include <memory>
#include <string>
#include <vector>

#include "sim/policy.hpp"

namespace ccc {

/// Constructs a policy by name; throws std::invalid_argument for unknown
/// names (message lists the valid ones).
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(
    const std::string& name);

/// All online policy names (excludes offline `belady`) — the default
/// comparison set of experiment E4.
[[nodiscard]] std::vector<std::string> online_policy_names();

}  // namespace ccc
