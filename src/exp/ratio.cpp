#include "exp/ratio.hpp"

#include "core/theory.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace ccc {

RatioResult measure_ratio(const Trace& trace, std::size_t capacity,
                          const std::vector<CostFunctionPtr>& costs,
                          ReplacementPolicy& policy,
                          std::size_t exact_page_limit) {
  RatioResult out;
  const SimResult run = run_trace(trace, capacity, policy, &costs);
  out.alg_misses = run.metrics.miss_vector();
  out.alg_cost = total_cost(out.alg_misses, costs);
  out.opt = estimate_opt(trace, capacity, costs, exact_page_limit);
  out.ratio = out.opt.upper_cost > 0.0 ? out.alg_cost / out.opt.upper_cost
                                       : (out.alg_cost > 0.0 ? 1e308 : 1.0);
  out.alpha = curvature_alpha(costs, static_cast<double>(trace.size()) + 1.0);
  out.theorem11_rhs =
      theorem11_bound(costs, out.opt.upper_misses, capacity, out.alpha);
  return out;
}

}  // namespace ccc
