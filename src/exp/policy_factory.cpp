#include "exp/policy_factory.hpp"

#include <stdexcept>

#include "core/convex_caching.hpp"
#include "core/naive_convex_caching.hpp"
#include "policies/arc.hpp"
#include "policies/belady.hpp"
#include "policies/clock.hpp"
#include "policies/two_q.hpp"
#include "policies/fifo.hpp"
#include "policies/landlord.hpp"
#include "policies/lfu.hpp"
#include "policies/lru.hpp"
#include "policies/lru_k.hpp"
#include "policies/marking.hpp"
#include "policies/random_policy.hpp"
#include "policies/randomized_marking.hpp"
#include "policies/static_partition.hpp"

namespace ccc {

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& name) {
  if (name == "lru") return std::make_unique<LruPolicy>();
  if (name == "clock") return std::make_unique<ClockPolicy>();
  if (name == "2q") return std::make_unique<TwoQPolicy>();
  if (name == "arc") return std::make_unique<ArcPolicy>();
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "lfu") return std::make_unique<LfuPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>();
  if (name == "marking") return std::make_unique<MarkingPolicy>();
  if (name == "rand-marking")
    return std::make_unique<RandomizedMarkingPolicy>();
  if (name == "lru2") return std::make_unique<LruKPolicy>(2);
  if (name == "landlord") return std::make_unique<LandlordPolicy>();
  if (name == "static") return std::make_unique<StaticPartitionPolicy>();
  if (name == "convex") return std::make_unique<ConvexCachingPolicy>();
  if (name == "convex-scan") {
    ConvexCachingOptions options;
    options.index = VictimIndex::kTenantScan;
    return std::make_unique<ConvexCachingPolicy>(options);
  }
  if (name == "convex-naive")
    return std::make_unique<NaiveConvexCachingPolicy>();
  if (name == "convex-discrete") {
    ConvexCachingOptions options;
    options.derivative = DerivativeMode::kDiscreteMarginal;
    return std::make_unique<ConvexCachingPolicy>(options);
  }
  if (name == "belady") return std::make_unique<BeladyPolicy>();
  throw std::invalid_argument(
      "unknown policy '" + name +
      "'; valid: lru clock 2q arc fifo lfu random marking rand-marking lru2 "
      "landlord static convex convex-scan convex-naive convex-discrete "
      "belady");
}

std::vector<std::string> online_policy_names() {
  return {"convex", "lru", "lru2", "arc", "2q", "clock", "landlord",
          "static", "fifo", "marking", "lfu"};
}

}  // namespace ccc
