#pragma once
/// \file ratio.hpp
/// \brief Competitive-ratio measurement: run an online policy, bracket the
///        offline optimum, and compare against the paper's bound.

#include <string>
#include <vector>

#include "cost/cost_function.hpp"
#include "offline/opt_bounds.hpp"
#include "sim/policy.hpp"
#include "trace/trace.hpp"

namespace ccc {

struct RatioResult {
  double alg_cost = 0.0;
  std::vector<std::uint64_t> alg_misses;
  OptEstimate opt;
  /// alg_cost / opt.upper_cost — a *lower* estimate of the true ratio
  /// unless opt.exact (then it is exact).
  double ratio = 0.0;
  /// Theorem 1.1 right-hand side Σ f_i(α·k·b_i) computed from opt's miss
  /// vector; the guarantee asserts alg_cost ≤ this when opt is exact.
  double theorem11_rhs = 0.0;
  double alpha = 0.0;
};

/// Runs `policy` on `trace` with cache `capacity` and brackets OPT.
/// `exact_page_limit` as in estimate_opt.
[[nodiscard]] RatioResult measure_ratio(
    const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs, ReplacementPolicy& policy,
    std::size_t exact_page_limit = 10);

}  // namespace ccc
