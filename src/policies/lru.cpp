#include "policies/lru.hpp"

#include "util/check.hpp"

namespace ccc {

void LruPolicy::reset(const PolicyContext& /*ctx*/) {
  order_.clear();
  where_.clear();
}

void LruPolicy::touch(PageId page) {
  const auto it = where_.find(page);
  CCC_CHECK(it != where_.end(), "LRU lost track of a resident page");
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  touch(request.page);
}

PageId LruPolicy::choose_victim(const Request& /*request*/,
                                TimeStep /*time*/) {
  CCC_CHECK(!order_.empty(), "LRU asked for a victim with an empty cache");
  return order_.back();
}

void LruPolicy::on_evict(PageId victim, TenantId /*owner*/,
                         TimeStep /*time*/) {
  const auto it = where_.find(victim);
  CCC_CHECK(it != where_.end(), "LRU evicting an untracked page");
  order_.erase(it->second);
  where_.erase(it);
}

void LruPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  order_.push_front(request.page);
  where_[request.page] = order_.begin();
}

}  // namespace ccc
