#include "policies/marking.hpp"

#include "util/check.hpp"

namespace ccc {

void MarkingPolicy::reset(const PolicyContext& /*ctx*/) {
  resident_.clear();
  unmarked_lru_.clear();
}

void MarkingPolicy::mark(PageId page) {
  auto it = resident_.find(page);
  CCC_CHECK(it != resident_.end(), "Marking lost track of a resident page");
  if (!it->second.marked) {
    unmarked_lru_.erase(it->second.lru_it);
    it->second.marked = true;
  }
}

void MarkingPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  mark(request.page);
}

PageId MarkingPolicy::choose_victim(const Request& /*request*/,
                                    TimeStep /*time*/) {
  if (unmarked_lru_.empty()) {
    // Phase end: clear all marks; everything becomes unmarked in recency
    // order (resident_ iteration order is unspecified, so rebuild by page id
    // for determinism).
    for (auto& [page, entry] : resident_) {
      entry.marked = false;
      unmarked_lru_.push_back(page);
      entry.lru_it = std::prev(unmarked_lru_.end());
    }
    unmarked_lru_.sort();
    for (auto it = unmarked_lru_.begin(); it != unmarked_lru_.end(); ++it)
      resident_[*it].lru_it = it;
  }
  CCC_CHECK(!unmarked_lru_.empty(),
            "Marking asked for a victim with an empty cache");
  return unmarked_lru_.back();
}

void MarkingPolicy::on_evict(PageId victim, TenantId /*owner*/,
                             TimeStep /*time*/) {
  const auto it = resident_.find(victim);
  CCC_CHECK(it != resident_.end(), "Marking evicting an untracked page");
  if (!it->second.marked) unmarked_lru_.erase(it->second.lru_it);
  resident_.erase(it);
}

void MarkingPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  // Newly fetched pages are marked (they were just accessed).
  const auto [it, inserted] =
      resident_.emplace(request.page, Entry{true, unmarked_lru_.end()});
  (void)it;
  CCC_CHECK(inserted, "Marking double-insert");
}

}  // namespace ccc
