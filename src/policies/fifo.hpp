#pragma once
/// \file fifo.hpp
/// \brief First-In-First-Out: evicts the page resident the longest,
///        regardless of use.

#include <deque>
#include <unordered_set>

#include "sim/policy.hpp"

namespace ccc {

class FifoPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 private:
  std::deque<PageId> queue_;  ///< front = oldest insertion
  std::unordered_set<PageId> resident_;
};

}  // namespace ccc
