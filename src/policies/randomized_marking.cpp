#include "policies/randomized_marking.hpp"

#include "util/check.hpp"

namespace ccc {

void RandomizedMarkingPolicy::reset(const PolicyContext& ctx) {
  resident_.clear();
  unmarked_.clear();
  rng_ = Rng(ctx.seed);
}

void RandomizedMarkingPolicy::remove_from_unmarked(PageId page) {
  const auto it = resident_.find(page);
  CCC_CHECK(it != resident_.end() && !it->second.marked,
            "page is not in the unmarked set");
  const std::size_t pos = it->second.unmarked_index;
  const PageId last = unmarked_.back();
  unmarked_[pos] = last;
  resident_.at(last).unmarked_index = pos;
  unmarked_.pop_back();
}

void RandomizedMarkingPolicy::mark(PageId page) {
  auto it = resident_.find(page);
  CCC_CHECK(it != resident_.end(), "marking a non-resident page");
  if (it->second.marked) return;
  remove_from_unmarked(page);
  it->second.marked = true;
}

void RandomizedMarkingPolicy::on_hit(const Request& request,
                                     TimeStep /*time*/) {
  mark(request.page);
}

PageId RandomizedMarkingPolicy::choose_victim(const Request& /*request*/,
                                              TimeStep /*time*/) {
  if (unmarked_.empty()) {
    // Phase end: all marks clear; every resident page becomes a candidate.
    for (auto& [page, entry] : resident_) {
      entry.marked = false;
      entry.unmarked_index = unmarked_.size();
      unmarked_.push_back(page);
    }
  }
  CCC_CHECK(!unmarked_.empty(),
            "RandomizedMarking asked for a victim with an empty cache");
  return unmarked_[rng_.next_below(unmarked_.size())];
}

void RandomizedMarkingPolicy::on_evict(PageId victim, TenantId /*owner*/,
                                       TimeStep /*time*/) {
  const auto it = resident_.find(victim);
  CCC_CHECK(it != resident_.end(),
            "RandomizedMarking evicting an untracked page");
  if (!it->second.marked) remove_from_unmarked(victim);
  resident_.erase(it);
}

void RandomizedMarkingPolicy::on_insert(const Request& request,
                                        TimeStep /*time*/) {
  const auto [it, inserted] = resident_.emplace(
      request.page, Entry{/*marked=*/true, /*unmarked_index=*/0});
  (void)it;
  CCC_CHECK(inserted, "RandomizedMarking double-insert");
}

}  // namespace ccc
