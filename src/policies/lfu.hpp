#pragma once
/// \file lfu.hpp
/// \brief Least-Frequently-Used with LRU tie-breaking. Frequency counts
///        persist across evictions (classic "perfect LFU").

#include <map>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class LfuPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "LFU"; }

 private:
  struct Entry {
    std::uint64_t frequency;
    TimeStep last_touch;
  };
  /// Ordered key (frequency, last_touch, page): begin() is the victim.
  using Key = std::tuple<std::uint64_t, TimeStep, PageId>;

  void touch(PageId page, TimeStep time, bool bump);

  std::unordered_map<PageId, Entry> resident_;
  std::unordered_map<PageId, std::uint64_t> global_frequency_;
  std::map<Key, PageId> order_;
};

}  // namespace ccc
