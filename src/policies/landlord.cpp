#include "policies/landlord.hpp"

#include "util/check.hpp"

namespace ccc {

LandlordPolicy::LandlordPolicy(std::vector<double> weights)
    : configured_weights_(std::move(weights)) {
  for (const double w : configured_weights_)
    CCC_REQUIRE(w > 0.0, "Landlord weights must be positive");
}

void LandlordPolicy::reset(const PolicyContext& ctx) {
  offset_ = 0.0;
  order_.clear();
  key_of_.clear();
  if (!configured_weights_.empty()) {
    CCC_REQUIRE(configured_weights_.size() >= ctx.num_tenants,
                "Landlord needs one weight per tenant");
    weights_ = configured_weights_;
    return;
  }
  CCC_REQUIRE(ctx.costs != nullptr,
              "Landlord needs explicit weights or tenant cost functions");
  weights_.clear();
  weights_.reserve(ctx.num_tenants);
  for (std::uint32_t i = 0; i < ctx.num_tenants; ++i) {
    const double w = (*ctx.costs)[i]->derivative(1.0);
    weights_.push_back(w > 0.0 ? w : 1e-12);
  }
}

void LandlordPolicy::set_credit(PageId page, TenantId tenant) {
  const auto it = key_of_.find(page);
  if (it != key_of_.end()) order_.erase(Key{it->second, page});
  const double key = weights_[tenant] + offset_;
  key_of_[page] = key;
  order_.emplace(Key{key, page}, page);
}

void LandlordPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  // Landlord refreshes credit on access.
  set_credit(request.page, request.tenant);
}

PageId LandlordPolicy::choose_victim(const Request& /*request*/,
                                     TimeStep /*time*/) {
  CCC_CHECK(!order_.empty(),
            "Landlord asked for a victim with an empty cache");
  return order_.begin()->second;
}

void LandlordPolicy::on_evict(PageId victim, TenantId /*owner*/,
                              TimeStep /*time*/) {
  const auto it = key_of_.find(victim);
  CCC_CHECK(it != key_of_.end(), "Landlord evicting an untracked page");
  // Debit every survivor by the victim's effective credit.
  offset_ = it->second;
  order_.erase(Key{it->second, victim});
  key_of_.erase(it);
}

void LandlordPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  set_credit(request.page, request.tenant);
}

}  // namespace ccc
