#include "policies/arc.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

void ArcPolicy::reset(const PolicyContext& ctx) {
  capacity_ = ctx.capacity;
  p_ = 0.0;
  adapted_this_step_ = false;
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  entries_.clear();
}

std::list<PageId>& ArcPolicy::list_of(ListId id) {
  switch (id) {
    case ListId::kT1: return t1_;
    case ListId::kT2: return t2_;
    case ListId::kB1: return b1_;
    default: return b2_;
  }
}

void ArcPolicy::move_to_front(PageId page, ListId to) {
  erase_entry(page);
  std::list<PageId>& target = list_of(to);
  target.push_front(page);
  entries_[page] = Entry{to, target.begin()};
}

void ArcPolicy::erase_entry(PageId page) {
  const auto it = entries_.find(page);
  if (it == entries_.end()) return;
  list_of(it->second.where).erase(it->second.it);
  entries_.erase(it);
}

void ArcPolicy::trim_ghosts() {
  // ARC invariants: |T1|+|B1| <= c and the four lists together <= 2c.
  while (t1_.size() + b1_.size() > capacity_ && !b1_.empty()) {
    entries_.erase(b1_.back());
    b1_.pop_back();
  }
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * capacity_ &&
         !b2_.empty()) {
    entries_.erase(b2_.back());
    b2_.pop_back();
  }
}

void ArcPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  const auto it = entries_.find(request.page);
  CCC_CHECK(it != entries_.end() && (it->second.where == ListId::kT1 ||
                                     it->second.where == ListId::kT2),
            "ARC lost track of a resident page");
  // Any resident hit promotes to the MRU of T2 (now seen more than once).
  move_to_front(request.page, ListId::kT2);
}

PageId ArcPolicy::choose_victim(const Request& request, TimeStep /*time*/) {
  // The original ARC adapts p *before* REPLACE; do it here so the victim
  // choice sees the updated target, and remember so on_insert won't adapt
  // twice.
  adapt(request.page);
  adapted_this_step_ = true;
  // REPLACE(x): evict from T1 if it exceeds the target (with the B2-hit
  // tie-break), else from T2.
  const auto ghost = entries_.find(request.page);
  const bool in_b2 =
      ghost != entries_.end() && ghost->second.where == ListId::kB2;
  const bool take_t1 =
      !t1_.empty() &&
      (static_cast<double>(t1_.size()) > p_ ||
       (in_b2 && static_cast<double>(t1_.size()) == p_));
  if (take_t1) return t1_.back();
  if (!t2_.empty()) return t2_.back();
  CCC_CHECK(!t1_.empty(), "ARC asked for a victim with an empty cache");
  return t1_.back();
}

void ArcPolicy::on_evict(PageId victim, TenantId /*owner*/,
                         TimeStep /*time*/) {
  const auto it = entries_.find(victim);
  CCC_CHECK(it != entries_.end(), "ARC evicting an untracked page");
  const ListId from = it->second.where;
  CCC_CHECK(from == ListId::kT1 || from == ListId::kT2,
            "ARC evicting a ghost");
  // Demote to the matching ghost list.
  move_to_front(victim, from == ListId::kT1 ? ListId::kB1 : ListId::kB2);
  trim_ghosts();
}

void ArcPolicy::adapt(PageId page) {
  const auto it = entries_.find(page);
  if (it == entries_.end()) return;
  const double c = static_cast<double>(capacity_);
  if (it->second.where == ListId::kB1) {
    // Ghost hit in B1: recency is under-provisioned — grow p.
    const double delta =
        std::max(1.0, static_cast<double>(b2_.size()) /
                          static_cast<double>(
                              std::max<std::size_t>(1, b1_.size())));
    p_ = std::min(c, p_ + delta);
  } else if (it->second.where == ListId::kB2) {
    // Ghost hit in B2: frequency is under-provisioned — shrink p.
    const double delta =
        std::max(1.0, static_cast<double>(b1_.size()) /
                          static_cast<double>(
                              std::max<std::size_t>(1, b2_.size())));
    p_ = std::max(0.0, p_ - delta);
  }
}

void ArcPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  if (!adapted_this_step_) adapt(request.page);
  adapted_this_step_ = false;
  const auto it = entries_.find(request.page);
  const bool was_ghost =
      it != entries_.end() && (it->second.where == ListId::kB1 ||
                               it->second.where == ListId::kB2);
  // Ghosts promote straight to T2; brand-new pages start probationary.
  move_to_front(request.page, was_ghost ? ListId::kT2 : ListId::kT1);
  trim_ghosts();
}

}  // namespace ccc
