#pragma once
/// \file lru.hpp
/// \brief Least-Recently-Used — the classical k-competitive baseline
///        (Sleator–Tarjan [19]); tenant-oblivious.

#include <list>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class LruPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "LRU"; }

 private:
  void touch(PageId page);

  /// Recency order: front = most recent, back = least recent.
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
};

}  // namespace ccc
