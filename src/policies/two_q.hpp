#pragma once
/// \file two_q.hpp
/// \brief Simplified 2Q (Johnson & Shasha '94): a probationary FIFO (A1in)
///        filters one-hit wonders out of the protected LRU main queue (Am).
///        A ghost list (A1out) of recently demoted pages promotes
///        re-referenced pages directly into Am. Scan-resistant where plain
///        LRU is not — a strong tenant-oblivious baseline for E4.

#include <list>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class TwoQPolicy final : public ReplacementPolicy {
 public:
  /// Fractions of the cache devoted to the probationary queue and of the
  /// (non-resident) ghost list, as in the original paper's Kin/Kout.
  explicit TwoQPolicy(double in_fraction = 0.25, double out_fraction = 0.5);

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "2Q"; }

 private:
  enum class Where { kA1in, kAm };
  struct Entry {
    Where where;
    std::list<PageId>::iterator it;
  };

  void touch_ghost_limit();

  double in_fraction_;
  double out_fraction_;
  std::size_t kin_ = 1;
  std::size_t kout_ = 1;

  std::list<PageId> a1in_;   ///< probationary FIFO; back = oldest
  std::list<PageId> am_;     ///< protected LRU; back = least recent
  std::list<PageId> a1out_;  ///< ghost FIFO of demoted pages; back = oldest
  std::unordered_map<PageId, Entry> resident_;
  std::unordered_map<PageId, std::list<PageId>::iterator> ghost_;
};

}  // namespace ccc
