#pragma once
/// \file static_partition.hpp
/// \brief The "static memory allocation" strawman the paper's introduction
///        argues against (§1.1): each tenant gets a fixed quota of the
///        shared cache and runs LRU inside it. A tenant over its quota
///        evicts its own LRU page; otherwise the most-over-quota tenant
///        pays. Wasteful exactly as the paper predicts — E4 quantifies it.

#include <list>
#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"

namespace ccc {

class StaticPartitionPolicy final : public ReplacementPolicy {
 public:
  /// If `quotas` is empty, the capacity is split equally (remainder to the
  /// lowest tenant ids). Quotas must otherwise sum to >= capacity's use.
  explicit StaticPartitionPolicy(std::vector<std::size_t> quotas = {});

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  /// Hard partitioning: a tenant at its quota evicts its own LRU page even
  /// while other tenants' slots sit idle — the §1.1 wastefulness the paper
  /// motivates against.
  [[nodiscard]] std::optional<PageId> quota_victim(const Request& request,
                                                   TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override {
    return "StaticPartition";
  }

 private:
  struct TenantLru {
    std::list<PageId> order;  ///< front = most recent
    std::unordered_map<PageId, std::list<PageId>::iterator> where;
  };

  std::vector<std::size_t> configured_quotas_;
  std::vector<std::size_t> quotas_;
  std::vector<TenantLru> lru_;
};

}  // namespace ccc
