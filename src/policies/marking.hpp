#pragma once
/// \file marking.hpp
/// \brief Deterministic marking algorithm: pages are marked on access;
///        victims come from the unmarked set (LRU among unmarked); when
///        every resident page is marked and a miss occurs, a new phase
///        begins and all marks clear.

#include <list>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class MarkingPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "Marking"; }

 private:
  struct Entry {
    bool marked;
    std::list<PageId>::iterator lru_it;
  };

  void mark(PageId page);

  std::unordered_map<PageId, Entry> resident_;
  /// LRU order over *unmarked* pages only; back = least recent.
  std::list<PageId> unmarked_lru_;
};

}  // namespace ccc
