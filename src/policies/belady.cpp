#include "policies/belady.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ccc {

void BeladyPolicy::reset(const PolicyContext& /*ctx*/) {
  occurrences_.clear();
  cursor_.clear();
  resident_.clear();
  previewed_ = false;
}

void BeladyPolicy::preview(const Trace& trace) {
  for (TimeStep t = 0; t < trace.size(); ++t)
    occurrences_[trace[t].page].push_back(t);
  previewed_ = true;
}

PageId BeladyPolicy::choose_victim(const Request& /*request*/,
                                   TimeStep time) {
  CCC_CHECK(previewed_, "Belady requires preview() with the full trace");
  CCC_CHECK(!resident_.empty(),
            "Belady asked for a victim with an empty cache");
  PageId best_page = resident_.front();
  TimeStep best_next = 0;
  bool best_never = false;
  bool found = false;
  for (const PageId page : resident_) {
    // Advance this page's cursor past `time` to find its next use.
    const auto& occs = occurrences_.at(page);
    std::size_t& cur = cursor_[page];
    while (cur < occs.size() && occs[cur] <= time) ++cur;
    const bool never = cur >= occs.size();
    const TimeStep next = never ? std::numeric_limits<TimeStep>::max()
                                : occs[cur];
    const bool better = [&] {
      if (!found) return true;
      if (never != best_never) return never;  // never-used-again first
      if (next != best_next) return next > best_next;
      return page < best_page;
    }();
    if (better) {
      found = true;
      best_page = page;
      best_next = next;
      best_never = never;
    }
  }
  return best_page;
}

void BeladyPolicy::on_evict(PageId victim, TenantId /*owner*/,
                            TimeStep /*time*/) {
  const auto it = std::find(resident_.begin(), resident_.end(), victim);
  CCC_CHECK(it != resident_.end(), "Belady evicting an untracked page");
  resident_.erase(it);
}

void BeladyPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  resident_.push_back(request.page);
}

}  // namespace ccc
