#pragma once
/// \file lru_k.hpp
/// \brief LRU-K (O'Neil, O'Neil & Weikum [16]): evicts the page whose K-th
///        most recent reference is oldest; pages with fewer than K
///        references rank before all others (backward K-distance = ∞),
///        ordered among themselves by plain recency. Reference history
///        persists across evictions, as in the original paper.

#include <deque>
#include <optional>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class LruKPolicy final : public ReplacementPolicy {
 public:
  explicit LruKPolicy(std::size_t k_history = 2);

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override;

 private:
  void record_reference(PageId page, TimeStep time);
  /// K-th most recent reference time, or nullopt if fewer than K refs.
  [[nodiscard]] std::optional<TimeStep> kth_reference(PageId page) const;

  std::size_t k_history_;
  std::unordered_map<PageId, std::deque<TimeStep>> history_;
  std::unordered_map<PageId, TimeStep> resident_last_touch_;
};

}  // namespace ccc
