#include "policies/static_partition.hpp"

#include <limits>

#include "util/check.hpp"

namespace ccc {

StaticPartitionPolicy::StaticPartitionPolicy(std::vector<std::size_t> quotas)
    : configured_quotas_(std::move(quotas)) {}

void StaticPartitionPolicy::reset(const PolicyContext& ctx) {
  lru_.assign(ctx.num_tenants, TenantLru{});
  if (!configured_quotas_.empty()) {
    CCC_REQUIRE(configured_quotas_.size() >= ctx.num_tenants,
                "need one quota per tenant");
    quotas_ = configured_quotas_;
    return;
  }
  quotas_.assign(ctx.num_tenants, ctx.capacity / ctx.num_tenants);
  for (std::uint32_t i = 0; i < ctx.capacity % ctx.num_tenants; ++i)
    ++quotas_[i];
}

void StaticPartitionPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  TenantLru& lru = lru_[request.tenant];
  const auto it = lru.where.find(request.page);
  CCC_CHECK(it != lru.where.end(), "partition lost track of a page");
  lru.order.splice(lru.order.begin(), lru.order, it->second);
}

std::optional<PageId> StaticPartitionPolicy::quota_victim(
    const Request& request, TimeStep /*time*/) {
  const TenantLru& lru = lru_[request.tenant];
  if (lru.order.size() >= quotas_[request.tenant] && !lru.order.empty())
    return lru.order.back();
  return std::nullopt;
}

PageId StaticPartitionPolicy::choose_victim(const Request& request,
                                            TimeStep /*time*/) {
  // Prefer evicting from the requesting tenant when it is at/over quota;
  // otherwise evict from the tenant whose occupancy exceeds its quota the
  // most (ties: lowest tenant id with any resident page).
  const TenantId requester = request.tenant;
  if (lru_[requester].order.size() >= quotas_[requester] &&
      !lru_[requester].order.empty())
    return lru_[requester].order.back();

  std::size_t best_tenant = lru_.size();
  std::ptrdiff_t best_excess = std::numeric_limits<std::ptrdiff_t>::min();
  for (std::size_t i = 0; i < lru_.size(); ++i) {
    if (lru_[i].order.empty()) continue;
    const auto excess = static_cast<std::ptrdiff_t>(lru_[i].order.size()) -
                        static_cast<std::ptrdiff_t>(quotas_[i]);
    if (excess > best_excess) {
      best_excess = excess;
      best_tenant = i;
    }
  }
  CCC_CHECK(best_tenant < lru_.size(),
            "partition asked for a victim with an empty cache");
  return lru_[best_tenant].order.back();
}

void StaticPartitionPolicy::on_evict(PageId victim, TenantId owner,
                                     TimeStep /*time*/) {
  TenantLru& lru = lru_[owner];
  const auto it = lru.where.find(victim);
  CCC_CHECK(it != lru.where.end(), "partition evicting an untracked page");
  lru.order.erase(it->second);
  lru.where.erase(it);
}

void StaticPartitionPolicy::on_insert(const Request& request,
                                      TimeStep /*time*/) {
  TenantLru& lru = lru_[request.tenant];
  lru.order.push_front(request.page);
  lru.where[request.page] = lru.order.begin();
}

}  // namespace ccc
