#include "policies/lru_k.hpp"

#include "util/check.hpp"

namespace ccc {

LruKPolicy::LruKPolicy(std::size_t k_history) : k_history_(k_history) {
  CCC_REQUIRE(k_history >= 1, "LRU-K requires K >= 1");
}

void LruKPolicy::reset(const PolicyContext& /*ctx*/) {
  history_.clear();
  resident_last_touch_.clear();
}

void LruKPolicy::record_reference(PageId page, TimeStep time) {
  auto& refs = history_[page];
  refs.push_back(time);
  if (refs.size() > k_history_) refs.pop_front();
}

std::optional<TimeStep> LruKPolicy::kth_reference(PageId page) const {
  const auto it = history_.find(page);
  if (it == history_.end() || it->second.size() < k_history_)
    return std::nullopt;
  return it->second.front();
}

void LruKPolicy::on_hit(const Request& request, TimeStep time) {
  record_reference(request.page, time);
  resident_last_touch_[request.page] = time;
}

PageId LruKPolicy::choose_victim(const Request& /*request*/,
                                 TimeStep /*time*/) {
  CCC_CHECK(!resident_last_touch_.empty(),
            "LRU-K asked for a victim with an empty cache");
  // Victim: first any page with < K references (oldest last touch wins),
  // otherwise the page with the oldest K-th reference.
  bool best_is_infinite = false;
  PageId best_page = 0;
  TimeStep best_key = 0;
  bool found = false;
  for (const auto& [page, last_touch] : resident_last_touch_) {
    const auto kth = kth_reference(page);
    const bool infinite = !kth.has_value();
    const TimeStep key = infinite ? last_touch : *kth;
    const bool better = [&] {
      if (!found) return true;
      if (infinite != best_is_infinite) return infinite;  // ∞-distance first
      if (key != best_key) return key < best_key;
      return page < best_page;  // deterministic tie-break
    }();
    if (better) {
      found = true;
      best_is_infinite = infinite;
      best_page = page;
      best_key = key;
    }
  }
  return best_page;
}

void LruKPolicy::on_evict(PageId victim, TenantId /*owner*/,
                          TimeStep /*time*/) {
  const auto erased = resident_last_touch_.erase(victim);
  CCC_CHECK(erased == 1, "LRU-K evicting an untracked page");
}

void LruKPolicy::on_insert(const Request& request, TimeStep time) {
  record_reference(request.page, time);
  resident_last_touch_[request.page] = time;
}

std::string LruKPolicy::name() const {
  return "LRU-" + std::to_string(k_history_);
}

}  // namespace ccc
