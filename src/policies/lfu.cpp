#include "policies/lfu.hpp"

#include "util/check.hpp"

namespace ccc {

void LfuPolicy::reset(const PolicyContext& /*ctx*/) {
  resident_.clear();
  global_frequency_.clear();
  order_.clear();
}

void LfuPolicy::touch(PageId page, TimeStep time, bool bump) {
  auto it = resident_.find(page);
  CCC_CHECK(it != resident_.end(), "LFU lost track of a resident page");
  order_.erase(Key{it->second.frequency, it->second.last_touch, page});
  if (bump) ++it->second.frequency;
  it->second.last_touch = time;
  order_.emplace(Key{it->second.frequency, it->second.last_touch, page}, page);
}

void LfuPolicy::on_hit(const Request& request, TimeStep time) {
  ++global_frequency_[request.page];
  touch(request.page, time, /*bump=*/true);
}

PageId LfuPolicy::choose_victim(const Request& /*request*/,
                                TimeStep /*time*/) {
  CCC_CHECK(!order_.empty(), "LFU asked for a victim with an empty cache");
  return order_.begin()->second;
}

void LfuPolicy::on_evict(PageId victim, TenantId /*owner*/,
                         TimeStep /*time*/) {
  const auto it = resident_.find(victim);
  CCC_CHECK(it != resident_.end(), "LFU evicting an untracked page");
  order_.erase(Key{it->second.frequency, it->second.last_touch, victim});
  resident_.erase(it);
}

void LfuPolicy::on_insert(const Request& request, TimeStep time) {
  const std::uint64_t freq = ++global_frequency_[request.page];
  const auto [it, inserted] =
      resident_.emplace(request.page, Entry{freq, time});
  (void)it;
  CCC_CHECK(inserted, "LFU double-insert");
  order_.emplace(Key{freq, time, request.page}, request.page);
}

}  // namespace ccc
