#include "policies/fifo.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

void FifoPolicy::reset(const PolicyContext& /*ctx*/) {
  queue_.clear();
  resident_.clear();
}

PageId FifoPolicy::choose_victim(const Request& /*request*/,
                                 TimeStep /*time*/) {
  // Lazily skip entries for pages already evicted (duplicates never occur
  // because a page is enqueued only on insert and dequeued on evict).
  CCC_CHECK(!queue_.empty(), "FIFO asked for a victim with an empty cache");
  return queue_.front();
}

void FifoPolicy::on_evict(PageId victim, TenantId /*owner*/,
                          TimeStep /*time*/) {
  CCC_CHECK(!queue_.empty(), "FIFO evicting from an empty queue");
  if (queue_.front() == victim) {
    queue_.pop_front();  // the normal, policy-chosen eviction
  } else {
    // Forced invalidation (e.g. multipool migration) may remove any page.
    const auto it = std::find(queue_.begin(), queue_.end(), victim);
    CCC_CHECK(it != queue_.end(), "FIFO evicting an untracked page");
    queue_.erase(it);
  }
  resident_.erase(victim);
}

void FifoPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  const auto [it, inserted] = resident_.insert(request.page);
  (void)it;
  CCC_CHECK(inserted, "FIFO double-insert");
  queue_.push_back(request.page);
}

}  // namespace ccc
