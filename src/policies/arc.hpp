#pragma once
/// \file arc.hpp
/// \brief ARC (Megiddo & Modha, FAST'03) — adaptive replacement cache.
///
/// Two resident lists: T1 (recency, seen once) and T2 (frequency, seen at
/// least twice), plus ghost lists B1/B2 remembering recently evicted pages.
/// A ghost hit in B1 says "recency is winning — grow T1's target p"; a
/// ghost hit in B2 says the opposite. The REPLACE rule evicts from T1 when
/// it exceeds its target, else from T2.
///
/// Adapted to this library's simulator-driven interface: membership
/// classification and the adaptation of `p` happen on insert (when we know
/// whether the page was a B1/B2 ghost); ghost-list trimming keeps the ARC
/// constraints |T1|+|B1| ≤ c and |T1|+|T2|+|B1|+|B2| ≤ 2c. The original's
/// corner case IV(a) (evicting from a full T1 without ghosting) is ghosted
/// and immediately trimmed — behaviourally equivalent.

#include <list>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class ArcPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "ARC"; }

  /// Current recency target p (diagnostics / tests).
  [[nodiscard]] double target_p() const noexcept { return p_; }

 private:
  enum class ListId { kT1, kT2, kB1, kB2 };
  struct Entry {
    ListId where;
    std::list<PageId>::iterator it;
  };

  std::list<PageId>& list_of(ListId id);
  void move_to_front(PageId page, ListId to);
  void erase_entry(PageId page);
  void trim_ghosts();
  /// Adjusts p on a B1/B2 ghost hit for `page`; no-op otherwise.
  void adapt(PageId page);

  std::size_t capacity_ = 0;
  double p_ = 0.0;  ///< adaptive target size of T1
  bool adapted_this_step_ = false;
  std::list<PageId> t1_, t2_, b1_, b2_;  ///< front = MRU
  std::unordered_map<PageId, Entry> entries_;
};

}  // namespace ccc
