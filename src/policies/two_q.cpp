#include "policies/two_q.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccc {

TwoQPolicy::TwoQPolicy(double in_fraction, double out_fraction)
    : in_fraction_(in_fraction), out_fraction_(out_fraction) {
  CCC_REQUIRE(in_fraction > 0.0 && in_fraction < 1.0,
              "2Q in-fraction must lie in (0,1)");
  CCC_REQUIRE(out_fraction > 0.0, "2Q out-fraction must be positive");
}

void TwoQPolicy::reset(const PolicyContext& ctx) {
  a1in_.clear();
  am_.clear();
  a1out_.clear();
  resident_.clear();
  ghost_.clear();
  kin_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(in_fraction_ *
                                  static_cast<double>(ctx.capacity)));
  kout_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(out_fraction_ *
                                  static_cast<double>(ctx.capacity)));
}

void TwoQPolicy::touch_ghost_limit() {
  while (a1out_.size() > kout_) {
    ghost_.erase(a1out_.back());
    a1out_.pop_back();
  }
}

void TwoQPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  auto it = resident_.find(request.page);
  CCC_CHECK(it != resident_.end(), "2Q lost track of a resident page");
  if (it->second.where == Where::kAm) {
    am_.splice(am_.begin(), am_, it->second.it);  // LRU touch
    it->second.it = am_.begin();
  }
  // Hits in A1in do not promote (the 2Q rule: promotion happens from the
  // ghost list, not from the probationary queue).
}

PageId TwoQPolicy::choose_victim(const Request& /*request*/,
                                 TimeStep /*time*/) {
  // Evict from A1in while it is over its quota (or Am is empty);
  // otherwise from the back of Am.
  if (!a1in_.empty() && (a1in_.size() > kin_ || am_.empty()))
    return a1in_.back();
  CCC_CHECK(!am_.empty(), "2Q asked for a victim with an empty cache");
  return am_.back();
}

void TwoQPolicy::on_evict(PageId victim, TenantId /*owner*/,
                          TimeStep /*time*/) {
  const auto it = resident_.find(victim);
  CCC_CHECK(it != resident_.end(), "2Q evicting an untracked page");
  if (it->second.where == Where::kA1in) {
    a1in_.erase(it->second.it);
    // Demoted probationary pages become ghosts; a re-reference promotes.
    a1out_.push_front(victim);
    ghost_[victim] = a1out_.begin();
    touch_ghost_limit();
  } else {
    am_.erase(it->second.it);
  }
  resident_.erase(it);
}

void TwoQPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  const auto ghost_it = ghost_.find(request.page);
  if (ghost_it != ghost_.end()) {
    // Seen recently: promote straight into the protected queue.
    a1out_.erase(ghost_it->second);
    ghost_.erase(ghost_it);
    am_.push_front(request.page);
    resident_[request.page] = Entry{Where::kAm, am_.begin()};
  } else {
    a1in_.push_front(request.page);
    resident_[request.page] = Entry{Where::kA1in, a1in_.begin()};
  }
}

}  // namespace ccc
