#pragma once
/// \file belady.hpp
/// \brief Belady's MIN / OPT (furthest-in-future) — the offline policy that
///        minimizes the *total* number of misses. For a single tenant with a
///        linear cost it is the optimal offline algorithm of Theorem 1.1;
///        for convex multi-tenant objectives it is only a (good) heuristic
///        and a certified lower bound on Σ_i b_i.

#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"

namespace ccc {

class BeladyPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void preview(const Trace& trace) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "Belady"; }

 private:
  /// next_use_[page] = sorted positions at which `page` is requested.
  std::unordered_map<PageId, std::vector<TimeStep>> occurrences_;
  std::unordered_map<PageId, std::size_t> cursor_;  ///< per-page scan index
  std::vector<PageId> resident_;
  bool previewed_ = false;
};

}  // namespace ccc
