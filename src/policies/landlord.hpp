#pragma once
/// \file landlord.hpp
/// \brief Landlord / GreedyDual for *weighted* caching (Young [20]) — the
///        strongest prior-art baseline the paper generalizes. Each resident
///        page holds credit equal to its tenant's weight; eviction removes
///        the minimum-credit page and debits every survivor by that credit
///        (implemented with the standard global-offset trick, O(log) per op).
///
/// Weights: tenant i's weight defaults to f_i'(1) — the marginal cost of its
/// first miss — which is exactly w_i for linear cost functions and a
/// "static linearization" of a convex f_i otherwise. E4 uses this as the
/// cost-aware-but-convexity-blind baseline.

#include <map>
#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"

namespace ccc {

class LandlordPolicy final : public ReplacementPolicy {
 public:
  /// If `weights` is empty, weights are derived from ctx.costs at reset()
  /// as f_i'(1); ctx.costs must then be non-null.
  explicit LandlordPolicy(std::vector<double> weights = {});

  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "Landlord"; }

 private:
  /// Effective credit of a stored entry = key − offset_. Keys are absolute
  /// (weight at set time + offset at set time) so the debit-all step is a
  /// single offset_ increase.
  using Key = std::pair<double, PageId>;

  void set_credit(PageId page, TenantId tenant);

  std::vector<double> configured_weights_;
  std::vector<double> weights_;
  double offset_ = 0.0;
  std::map<Key, PageId> order_;
  std::unordered_map<PageId, double> key_of_;
};

}  // namespace ccc
