#include "policies/random_policy.hpp"

#include "util/check.hpp"

namespace ccc {

void RandomPolicy::reset(const PolicyContext& ctx) {
  pages_.clear();
  index_.clear();
  rng_ = Rng(ctx.seed);
}

PageId RandomPolicy::choose_victim(const Request& /*request*/,
                                   TimeStep /*time*/) {
  CCC_CHECK(!pages_.empty(), "Random asked for a victim with an empty cache");
  return pages_[rng_.next_below(pages_.size())];
}

void RandomPolicy::on_evict(PageId victim, TenantId /*owner*/,
                            TimeStep /*time*/) {
  const auto it = index_.find(victim);
  CCC_CHECK(it != index_.end(), "Random evicting an untracked page");
  const std::size_t pos = it->second;
  const PageId last = pages_.back();
  pages_[pos] = last;
  index_[last] = pos;
  pages_.pop_back();
  index_.erase(it);
}

void RandomPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  const auto [it, inserted] = index_.emplace(request.page, pages_.size());
  (void)it;
  CCC_CHECK(inserted, "Random double-insert");
  pages_.push_back(request.page);
}

}  // namespace ccc
