#pragma once
/// \file randomized_marking.hpp
/// \brief Randomized marking (Fiat et al.): like MarkingPolicy but the
///        victim is a *uniformly random* unmarked page. O(log k)-competitive
///        against oblivious adversaries for unit costs — included because
///        the paper's lower bound (Thm. 1.4) applies only to deterministic
///        algorithms, and this policy shows what randomization buys (and
///        does not buy, against the adaptive adversary) in E3.

#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace ccc {

class RandomizedMarkingPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override {
    return "RandomizedMarking";
  }

 private:
  struct Entry {
    bool marked;
    std::size_t unmarked_index;  ///< position in unmarked_ when !marked
  };

  void mark(PageId page);
  void remove_from_unmarked(PageId page);

  std::unordered_map<PageId, Entry> resident_;
  std::vector<PageId> unmarked_;  ///< dense array for O(1) uniform sampling
  Rng rng_{1};
};

}  // namespace ccc
