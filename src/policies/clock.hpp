#pragma once
/// \file clock.hpp
/// \brief CLOCK (second-chance): the classic O(1) LRU approximation used by
///        real OS page caches. Pages sit on a circular list with a
///        reference bit; the hand sweeps, clearing bits, and evicts the
///        first unreferenced page it meets.

#include <list>
#include <unordered_map>

#include "sim/policy.hpp"

namespace ccc {

class ClockPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  void on_hit(const Request& request, TimeStep time) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "Clock"; }

 private:
  struct Entry {
    PageId page;
    bool referenced;
  };

  std::list<Entry> ring_;
  std::list<Entry>::iterator hand_ = ring_.end();
  std::unordered_map<PageId, std::list<Entry>::iterator> where_;

  void advance_hand();
};

}  // namespace ccc
