#include "policies/clock.hpp"

#include "util/check.hpp"

namespace ccc {

void ClockPolicy::reset(const PolicyContext& /*ctx*/) {
  ring_.clear();
  where_.clear();
  hand_ = ring_.end();
}

void ClockPolicy::advance_hand() {
  CCC_CHECK(!ring_.empty(), "clock hand on an empty ring");
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockPolicy::on_hit(const Request& request, TimeStep /*time*/) {
  const auto it = where_.find(request.page);
  CCC_CHECK(it != where_.end(), "Clock lost track of a resident page");
  it->second->referenced = true;
}

PageId ClockPolicy::choose_victim(const Request& /*request*/,
                                  TimeStep /*time*/) {
  CCC_CHECK(!ring_.empty(), "Clock asked for a victim with an empty cache");
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  // Sweep: clear reference bits until an unreferenced page is under the
  // hand. Terminates within two sweeps.
  for (std::size_t step = 0; step <= 2 * ring_.size(); ++step) {
    if (!hand_->referenced) return hand_->page;
    hand_->referenced = false;
    advance_hand();
  }
  CCC_CHECK(false, "clock sweep failed to find a victim");
  return 0;  // unreachable
}

void ClockPolicy::on_evict(PageId victim, TenantId /*owner*/,
                           TimeStep /*time*/) {
  const auto it = where_.find(victim);
  CCC_CHECK(it != where_.end(), "Clock evicting an untracked page");
  // Move the hand off the victim before erasing.
  if (hand_ == it->second) {
    ++hand_;
    if (hand_ == ring_.end() && ring_.size() > 1) hand_ = ring_.begin();
  }
  ring_.erase(it->second);
  if (ring_.empty()) hand_ = ring_.end();
  where_.erase(it);
}

void ClockPolicy::on_insert(const Request& request, TimeStep /*time*/) {
  // Insert just before the hand (the "oldest" position) with the bit set.
  const auto pos = hand_ == ring_.end() ? ring_.end() : hand_;
  const auto it = ring_.insert(pos, Entry{request.page, true});
  where_[request.page] = it;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

}  // namespace ccc
