#pragma once
/// \file random_policy.hpp
/// \brief Uniform-random eviction (seeded; fully reproducible).

#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace ccc {

class RandomPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext& ctx) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  /// Dense array + index map for O(1) uniform sampling and removal.
  std::vector<PageId> pages_;
  std::unordered_map<PageId, std::size_t> index_;
  Rng rng_{1};
};

}  // namespace ccc
