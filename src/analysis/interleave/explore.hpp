#pragma once
/// \file explore.hpp
/// \brief LitmusExplorer: exhaustive N-thread exploration of small
///        op-list programs under the memory model in memory_model.hpp —
///        the self-test rig that pins the model's visibility rules
///        against litmus tests with known outcomes (SB, MP, LB,
///        coherence; see tests/test_interleave_engine.cpp).
///
/// Unlike the seqlock checker's writer-first reduction (one recorded
/// writer, one explored reader — checked_atomics.hpp), this engine
/// explores the full product of thread schedules × reads-from choices
/// with DFS and prunes revisited states via exact state hashing. That is
/// exponential in general and only meant for programs of a handful of
/// ops per thread; its job is to validate the *model*, not the protocol.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/interleave/memory_model.hpp"

namespace ccc::interleave {

/// One instruction of a litmus program.
struct LitmusOp {
  enum class Kind { kLoad, kStore, kFenceAcquire, kFenceRelease };
  /// Memory order strength for loads/stores; fences ignore it.
  enum class Order { kRelaxed, kSync };  // kSync = acquire (load) / release (store)

  Kind kind = Kind::kLoad;
  LocationId loc = 0;
  std::uint64_t value = 0;   ///< stores: the value written
  std::size_t reg = 0;       ///< loads: destination register index
  Order order = Order::kRelaxed;
};

/// Convenience constructors for readable litmus tables.
[[nodiscard]] LitmusOp load(LocationId loc, std::size_t reg,
                            LitmusOp::Order order);
[[nodiscard]] LitmusOp store(LocationId loc, std::uint64_t value,
                             LitmusOp::Order order);
[[nodiscard]] LitmusOp fence_acquire();
[[nodiscard]] LitmusOp fence_release();

/// A program: one op list per thread. Thread t's registers live in
/// `registers[t]`; the final outcome flattens them in thread order.
using LitmusProgram = std::vector<std::vector<LitmusOp>>;

/// Exhaustively explores `program` over `num_locations` zero-initialized
/// locations and returns every reachable final register valuation
/// (flattened thread-major). `num_registers[t]` sizes thread t's file.
class LitmusExplorer {
 public:
  [[nodiscard]] std::set<std::vector<std::uint64_t>> explore(
      const LitmusProgram& program, std::size_t num_locations,
      const std::vector<std::size_t>& num_registers);

  /// States pruned by the exact-state memo during the last explore().
  [[nodiscard]] std::uint64_t pruned() const { return pruned_; }
  /// DFS nodes visited during the last explore().
  [[nodiscard]] std::uint64_t visited() const { return visited_; }

 private:
  struct ThreadState {
    std::size_t pc = 0;
    Clock view;           ///< coherence floors + acquired happens-before
    Clock pending;        ///< relaxed-load sync clocks awaiting a fence
    Clock release_fence;  ///< clock snapshot at the last release fence
    std::vector<std::uint64_t> registers;
  };

  struct State {
    std::vector<LocationHistory> memory;
    std::vector<ThreadState> threads;
  };

  void dfs(const LitmusProgram& program, const State& state);
  [[nodiscard]] static std::string fingerprint(const State& state);

  std::set<std::vector<std::uint64_t>> outcomes_;
  std::set<std::string> seen_;
  std::uint64_t pruned_ = 0;
  std::uint64_t visited_ = 0;
};

}  // namespace ccc::interleave
