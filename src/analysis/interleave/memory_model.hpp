#pragma once
/// \file memory_model.hpp
/// \brief Operational C++11-subset memory model for the seqlock checker:
///        per-location store histories + vector clocks encoding
///        acquire/release/relaxed visibility and the two standalone
///        fences. DESIGN.md §11 states precisely what is and is not
///        modeled.
///
/// The model is the relaxed-memory core shared by the two exploration
/// engines in this directory:
///   - ModelContext (this file + checked_atomics.hpp) records the seqlock
///     writer's store history once, then exhaustively enumerates every
///     reads-from assignment a concurrent reader could observe
///     (explore.hpp wraps the DFS).
///   - LitmusExplorer (explore.hpp) runs small N-thread op-list programs
///     under the same visibility rules — its litmus suite (SB, MP with
///     release/acquire and with fences, LB, coherence) pins the model's
///     semantics against known allowed/forbidden outcomes.
///
/// Semantics, in brief:
///   - Each atomic location carries its full modification order as a store
///     list; store i is the i-th element. A thread's Clock holds, per
///     location, a coherence floor: the earliest store it may still read.
///   - A release store captures the storing thread's clock as the store's
///     `sync` clock; a relaxed store captures the clock saved at the
///     thread's last release *fence* (empty if none). An acquire load
///     joins the read store's sync clock into the reader's clock
///     immediately; a relaxed load stashes it in `pending`, which an
///     acquire *fence* later joins in. This is exactly the
///     release-fence/acquire-fence pairing the seqlock windows rely on.
///   - Reading store i raises the location's floor to i (coherence:
///     per-location reads never go backwards).
/// Deliberate simplifications (checked against in DESIGN.md §11):
///   - seq_cst is treated as acq_rel (no total SC order; the protocol
///     under test uses none).
///   - No RMW operations (CheckedAtomics simply doesn't provide them, so
///     a protocol change that introduced one fails to compile here).
///   - No load buffering: a load only reads stores that exist, so
///     cycles where two loads each read a program-order-later store of
///     the other thread (LB (1,1)) are unrepresentable.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ccc::interleave {

using LocationId = std::size_t;
using StoreIndex = std::size_t;

/// Vector clock over locations: `floor[l]` is the index of the earliest
/// store of location l this thread may still read (coherence + acquired
/// happens-before edges). Missing entries mean 0 (anything visible).
class Clock {
 public:
  void ensure(std::size_t locations) {
    if (floor_.size() < locations) floor_.resize(locations, 0);
  }

  [[nodiscard]] StoreIndex floor(LocationId loc) const {
    return loc < floor_.size() ? floor_[loc] : 0;
  }

  void raise(LocationId loc, StoreIndex at) {
    ensure(loc + 1);
    if (floor_[loc] < at) floor_[loc] = at;
  }

  /// Pointwise max — the happens-before join.
  void join(const Clock& other) {
    ensure(other.floor_.size());
    for (std::size_t l = 0; l < other.floor_.size(); ++l)
      if (floor_[l] < other.floor_[l]) floor_[l] = other.floor_[l];
  }

  void clear() { floor_.clear(); }

  [[nodiscard]] bool operator==(const Clock& other) const {
    const std::size_t n = std::max(floor_.size(), other.floor_.size());
    for (std::size_t l = 0; l < n; ++l)
      if (floor(l) != other.floor(l)) return false;
    return true;
  }

 private:
  std::vector<StoreIndex> floor_;
};

/// One store in a location's modification order.
struct StoreRec {
  std::uint64_t value = 0;
  /// Position in the writer's global store order (0 for the initial
  /// value); the serializability check uses max-over-read-stores of this
  /// as the earliest instant the reader may serialize at.
  std::uint64_t global_seq = 0;
  /// Visibility payload: what a reader learns by synchronizing with this
  /// store (release store → storing thread's clock; relaxed store → the
  /// thread's last release-fence clock).
  Clock sync;
};

/// A location's full modification order. Index 0 is the initial value.
struct LocationHistory {
  std::vector<StoreRec> stores;
};

}  // namespace ccc::interleave
