#include "analysis/interleave/seqlock_model.hpp"

namespace ccc::interleave {

std::vector<std::uint64_t> colliding_pages(std::size_t count,
                                           std::size_t mask) {
  CCC_REQUIRE(count > 0, "need at least one page");
  std::vector<std::uint64_t> pages;
  const std::size_t target =
      static_cast<std::size_t>(util::splitmix64(1)) & mask;
  for (std::uint64_t id = 1; pages.size() < count; ++id) {
    CCC_CHECK(id < (1u << 20),
              "collision search exhausted — mask too sparse for count");
    if ((static_cast<std::size_t>(util::splitmix64(id)) & mask) == target)
      pages.push_back(id);
  }
  return pages;
}

}  // namespace ccc::interleave
