#pragma once
/// \file seqlock_model.hpp
/// \brief Exhaustive model checking of the seqlock residency protocol:
///        runs the *production template* (SeqlockResidencyTable) over
///        CheckedAtomics, records a writer script once, explores every
///        reads-from assignment a concurrent reader could observe, and
///        validates each successful optimistic hit against a ghost truth
///        timeline.
///
/// Correctness condition (serializability with a causal floor): a
/// lock-free hit on page p is sound iff it could have been produced by
/// some mutex-acquiring hit at *some* writer-history instant t — and
/// reading a store with global order position g forces t ≥ g (in any
/// justifying serial history the read store precedes the read). So the
/// checker demands
///     ∃ t ≥ read_floor  with  truth(t): p fresh-resident,
/// where read_floor is the max global position over all stores the
/// reader's loads observed, and truth() is the harness's ghost state,
/// updated atomically at the start of each writer op (a locked op is a
/// critical section, so real freshness changes atomically at op
/// granularity; timestamping changes at op *start* is conservative for
/// eviction — freshness is lost the moment the op begins — and harmless
/// for publication, whose stores all carry positions after the start).
/// Real-time ordering is deliberately NOT demanded: a seqlock reader that
/// observes an entirely-stale-but-consistent snapshot legitimately
/// serializes in the past; flagging that would reject the correct
/// protocol.
///
/// The mutation suite (tests/test_seqlock_model.cpp) flips one
/// SeqlockConfig ingredient at a time and asserts the checker reports a
/// violation, while the shipped all-true config passes every script with
/// zero violations and a nonzero number of served hits.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/interleave/checked_atomics.hpp"
#include "shard/seqlock_table.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"  // util::splitmix64 (collision search)

namespace ccc::interleave {

/// One unsound optimistic hit found by the checker.
struct SeqlockViolation {
  std::uint64_t page = 0;
  std::uint64_t read_floor = 0;
  std::uint64_t execution = 0;  ///< DFS execution index (for replay)
};

/// Aggregate result of exploring one script under one config.
struct SeqlockCheckResult {
  std::uint64_t executions = 0;   ///< reader executions explored (all pages)
  std::uint64_t hits_served = 0;  ///< executions that returned a hit
  std::vector<SeqlockViolation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// Finds `count` distinct page ids that all hash to the same home slot of
/// a table with `mask` (so eviction's backward-shift erase actually moves
/// entries — the torn-read surface the mutations exploit).
[[nodiscard]] std::vector<std::uint64_t> colliding_pages(std::size_t count,
                                                         std::size_t mask);

/// Model-checking harness for one writer script. Drives the production
/// SeqlockResidencyTable template over CheckedAtomics.
template <SeqlockConfig Config>
class SeqlockModelHarness {
 public:
  explicit SeqlockModelHarness(std::size_t table_size = 16,
                               std::uint32_t num_tenants = 2) {
    table_.allocate(table_size, num_tenants);
    // Initial truth: empty cache, timestamped before every real store.
    truth_.push_back(Snapshot{0, {}});
  }

  // ---- writer script (record mode; ops mirror ShardedCache's use) ---- //

  /// Miss into free space (ShardedCache::apply_event_seqlock, no victim).
  /// `tenant` is recorded as the page's owner for the rest of the script
  /// (the production pairing contract: pages are tenant-owned).
  void fill(std::uint64_t page, std::uint32_t tenant = 0) {
    begin_op([&](Snapshot& s) { s.state[page] = PageTruth::kFresh; });
    owner_[page] = tenant;
    const ScopedModelContext scope(ctx_);
    table_.publish_insert(page, tenant);
  }

  /// Locked hit (stamp refresh).
  void restamp(std::uint64_t page) {
    begin_op([&](Snapshot& s) {
      CCC_CHECK(s.state.count(page) == 1, "restamp of a non-resident page");
      s.state[page] = PageTruth::kFresh;
    });
    const ScopedModelContext scope(ctx_);
    (void)table_.restamp_hit(page, owner_of(page));
  }

  /// Miss with eviction. Ghost truth mirrors the per-tenant freshness
  /// criterion exactly: if the eviction moved the shared survivor-debit
  /// offset, *every* survivor's re-freeze value changed (all go stale);
  /// otherwise if it re-based the victim tenant's budgets, only that
  /// tenant's survivors go stale; otherwise (zero-budget victim, flat
  /// marginal — the generational steady state) nothing stales at all.
  /// The fetched page always arrives fresh.
  void evict(std::uint64_t victim, std::uint64_t page,
             std::uint32_t page_tenant = 0, bool offset_moved = true,
             bool victim_refreshed = true) {
    begin_op([&](Snapshot& s) {
      CCC_CHECK(s.state.erase(victim) == 1, "evicting a non-resident page");
      for (auto& [p, truth] : s.state) {
        if (offset_moved ||
            (victim_refreshed && owner_of(p) == owner_of(victim)))
          truth = PageTruth::kStale;
      }
      s.state[page] = PageTruth::kFresh;
    });
    const std::uint32_t victim_tenant = owner_of(victim);
    owner_[page] = page_tenant;
    const ScopedModelContext scope(ctx_);
    table_.evict_and_insert(victim, page, page_tenant, victim_tenant,
                            offset_moved, victim_refreshed);
  }

  /// Rebalance-style structural rebuild: the surviving resident set is
  /// re-published with uniformly stale stamps inside one window (capacity
  /// changes debit budgets, so nothing may look fresh afterwards).
  void rebuild(const std::vector<std::uint64_t>& survivors) {
    begin_op([&](Snapshot& s) {
      s.state.clear();
      for (const std::uint64_t p : survivors)
        s.state[p] = PageTruth::kStale;
    });
    const ScopedModelContext scope(ctx_);
    table_.open_window();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pages;
    pages.reserve(survivors.size());
    for (const std::uint64_t p : survivors) pages.emplace_back(p, 0);
    table_.rebuild(pages);
    table_.close_window();
  }

  // ---- exploration (after the script) ------------------------------- //

  /// Explores every reads-from assignment of `try_fresh_hit(page)` for
  /// each page in `probe_pages` and validates successful hits against the
  /// truth timeline.
  [[nodiscard]] SeqlockCheckResult check(
      const std::vector<std::uint64_t>& probe_pages) {
    SeqlockCheckResult result;
    const ScopedModelContext scope(ctx_);
    for (const std::uint64_t page : probe_pages) {
      // Each page gets a fresh DFS over the same recorded history (the
      // context keeps the store histories; only reader state resets).
      ctx_.begin_exploration();
      while (ctx_.next_execution()) {
        const bool hit = table_.try_fresh_hit(page, owner_of(page));
        ++result.executions;
        if (!hit) continue;
        ++result.hits_served;
        if (!serializable_hit(page, ctx_.read_floor())) {
          SeqlockViolation v;
          v.page = page;
          v.read_floor = ctx_.read_floor();
          v.execution = ctx_.executions();
          result.violations.push_back(v);
        }
      }
    }
    return result;
  }

 private:
  enum class PageTruth { kStale, kFresh };

  struct Snapshot {
    std::uint64_t from_global;  ///< first store position this covers
    std::map<std::uint64_t, PageTruth> state;
  };

  /// Records a truth snapshot at the current global store position, then
  /// lets the caller edit it (starting from the previous truth).
  template <typename Fn>
  void begin_op(Fn&& edit) {
    Snapshot next = truth_.back();
    next.from_global = ctx_.next_global();
    edit(next);
    truth_.push_back(std::move(next));
  }

  /// ∃ instant t ≥ read_floor with page fresh-resident? Snapshot i covers
  /// [from_global_i, from_global_{i+1}) (the last one is unbounded), so
  /// it intersects [read_floor, ∞) iff its end lies beyond read_floor.
  [[nodiscard]] bool serializable_hit(std::uint64_t page,
                                      std::uint64_t read_floor) const {
    for (std::size_t i = 0; i < truth_.size(); ++i) {
      const bool open_ended = i + 1 == truth_.size();
      if (!open_ended && truth_[i + 1].from_global <= read_floor) continue;
      const auto it = truth_[i].state.find(page);
      if (it != truth_[i].state.end() && it->second == PageTruth::kFresh)
        return true;
    }
    return false;
  }

  /// The page's recorded owner (production pairing contract: one tenant
  /// per page, forever). Pages a script never introduced default to 0.
  [[nodiscard]] std::uint32_t owner_of(std::uint64_t page) const {
    const auto it = owner_.find(page);
    return it == owner_.end() ? 0u : it->second;
  }

  ModelContext ctx_;
  // Installed for the harness's whole lifetime and declared BEFORE the
  // table: the table's Atomic members register themselves with the
  // current context during *member construction*, and every later
  // script/check call needs the same context anyway (the harness is
  // single-threaded by design).
  ScopedModelContext scope_{ctx_};
  SeqlockResidencyTable<CheckedAtomics, Config> table_;
  std::vector<Snapshot> truth_;
  std::map<std::uint64_t, std::uint32_t> owner_;
};

}  // namespace ccc::interleave
