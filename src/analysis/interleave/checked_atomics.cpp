#include "analysis/interleave/checked_atomics.hpp"

namespace ccc::interleave {

namespace {

thread_local ModelContext* g_current_context = nullptr;

/// DFS safety valve: the seqlock scripts explore a few thousand
/// executions; hitting this bound means a script (or model change) blew
/// up the reads-from space and needs rethinking, not silent hours of CPU.
constexpr std::uint64_t kMaxExecutions = 1u << 22;

}  // namespace

ScopedModelContext::ScopedModelContext(ModelContext& ctx)
    : previous_(g_current_context) {
  g_current_context = &ctx;
}

ScopedModelContext::~ScopedModelContext() { g_current_context = previous_; }

ModelContext& ScopedModelContext::current() {
  CCC_CHECK(g_current_context != nullptr,
            "CheckedAtomics used outside a ScopedModelContext");
  return *g_current_context;
}

LocationId ModelContext::register_location(std::uint64_t initial) {
  const LocationId loc = locations_.size();
  LocationHistory history;
  StoreRec init;
  init.value = initial;
  init.global_seq = 0;  // before every real store
  history.stores.push_back(std::move(init));
  locations_.push_back(std::move(history));
  return loc;
}

std::uint64_t ModelContext::record_load(LocationId loc) const {
  CCC_CHECK(mode == Mode::kRecord, "record_load outside record mode");
  // The writer is the only mutator (it holds the shard mutex in
  // production), so it always observes its own latest store.
  return locations_[loc].stores.back().value;
}

void ModelContext::record_store(LocationId loc, std::uint64_t value,
                                bool release) {
  CCC_CHECK(mode == Mode::kRecord,
            "stores are writer-side only; the explored reader is read-only");
  StoreRec rec;
  rec.value = value;
  rec.global_seq = next_global_++;
  // Release store: synchronizing with it yields everything the writer has
  // done so far. Relaxed store: only what precedes the writer's last
  // release fence (the open_window fence is what hands in-window stores
  // their "the window is open" payload).
  rec.sync = release ? writer_clock_ : writer_release_fence_;
  const StoreIndex index = locations_[loc].stores.size();
  if (release) rec.sync.raise(loc, index);
  locations_[loc].stores.push_back(std::move(rec));
  writer_clock_.raise(loc, index);
}

void ModelContext::record_release_fence() {
  writer_release_fence_ = writer_clock_;
}

void ModelContext::begin_exploration() {
  mode = Mode::kExplore;
  path_.clear();
  first_execution_ = true;
  executions_ = 0;
}

bool ModelContext::next_execution() {
  CCC_CHECK(mode == Mode::kExplore, "next_execution outside explore mode");
  if (!first_execution_) {
    // Advance the DFS: drop exhausted trailing choices, bump the deepest
    // live one. An empty path means the reads-from space is exhausted.
    while (!path_.empty() && path_.back().chosen == path_.back().max)
      path_.pop_back();
    if (path_.empty()) return false;
    ++path_.back().chosen;
  }
  first_execution_ = false;
  CCC_CHECK(executions_ < kMaxExecutions,
            "reads-from exploration exceeded the execution bound");
  ++executions_;
  view_.clear();
  pending_.clear();
  read_floor_ = 0;
  depth_ = 0;
  return true;
}

std::uint64_t ModelContext::explore_load(LocationId loc, bool acquire) {
  const LocationHistory& history = locations_[loc];
  const StoreIndex lo = view_.floor(loc);
  const StoreIndex hi = history.stores.size() - 1;
  CCC_CHECK(lo <= hi, "coherence floor above the latest store");
  if (depth_ == path_.size()) {
    // First time this execution reaches this decision point: take the
    // oldest admissible store; later executions will sweep to `hi`.
    path_.push_back(Choice{lo, hi});
  } else {
    // Replayed prefix: the candidate range is a function of the earlier
    // choices, so it must be identical to when the choice was recorded.
    CCC_CHECK(path_[depth_].chosen >= lo && path_[depth_].max == hi,
              "nondeterministic replay of the reader under exploration");
  }
  const StoreIndex chosen = path_[depth_].chosen;
  ++depth_;
  const StoreRec& rec = history.stores[chosen];
  view_.raise(loc, chosen);  // coherence: never read backwards
  if (acquire) {
    view_.join(rec.sync);
  } else {
    pending_.join(rec.sync);
  }
  if (read_floor_ < rec.global_seq) read_floor_ = rec.global_seq;
  return rec.value;
}

void ModelContext::explore_acquire_fence() {
  // Pairs with the writer's release fences: everything stashed by
  // relaxed loads becomes ordering-effective now.
  view_.join(pending_);
}

}  // namespace ccc::interleave
