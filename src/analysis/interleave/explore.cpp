#include "analysis/interleave/explore.hpp"

#include <utility>

namespace ccc::interleave {

LitmusOp load(LocationId loc, std::size_t reg, LitmusOp::Order order) {
  LitmusOp op;
  op.kind = LitmusOp::Kind::kLoad;
  op.loc = loc;
  op.reg = reg;
  op.order = order;
  return op;
}

LitmusOp store(LocationId loc, std::uint64_t value, LitmusOp::Order order) {
  LitmusOp op;
  op.kind = LitmusOp::Kind::kStore;
  op.loc = loc;
  op.value = value;
  op.order = order;
  return op;
}

LitmusOp fence_acquire() {
  LitmusOp op;
  op.kind = LitmusOp::Kind::kFenceAcquire;
  return op;
}

LitmusOp fence_release() {
  LitmusOp op;
  op.kind = LitmusOp::Kind::kFenceRelease;
  return op;
}

std::set<std::vector<std::uint64_t>> LitmusExplorer::explore(
    const LitmusProgram& program, std::size_t num_locations,
    const std::vector<std::size_t>& num_registers) {
  CCC_REQUIRE(num_registers.size() == program.size(),
              "one register count per thread");
  outcomes_.clear();
  seen_.clear();
  pruned_ = 0;
  visited_ = 0;
  State initial;
  initial.memory.resize(num_locations);
  for (LocationHistory& history : initial.memory) {
    StoreRec init;  // all locations start at 0, visible to everyone
    history.stores.push_back(std::move(init));
  }
  initial.threads.resize(program.size());
  for (std::size_t t = 0; t < program.size(); ++t)
    initial.threads[t].registers.assign(num_registers[t], 0);
  dfs(program, initial);
  return outcomes_;
}

void LitmusExplorer::dfs(const LitmusProgram& program, const State& state) {
  // Exact-state memo: a revisited state reaches exactly the same set of
  // outcomes, so the whole subtree can be pruned.
  if (!seen_.insert(fingerprint(state)).second) {
    ++pruned_;
    return;
  }
  ++visited_;
  CCC_CHECK(visited_ < (1u << 24),
            "litmus exploration exceeded the node bound — program too big");
  bool done = true;
  for (std::size_t t = 0; t < program.size(); ++t) {
    if (state.threads[t].pc >= program[t].size()) continue;
    done = false;
    const LitmusOp& op = program[t][state.threads[t].pc];
    switch (op.kind) {
      case LitmusOp::Kind::kStore: {
        State next = state;
        ThreadState& self = next.threads[t];
        LocationHistory& history = next.memory[op.loc];
        StoreRec rec;
        rec.value = op.value;
        // Modification order is the order stores are executed in this
        // schedule; with multiple writers per location every order shows
        // up as some schedule, so outcomes are not lost (DESIGN.md §11).
        rec.sync = op.order == LitmusOp::Order::kSync ? self.view
                                                      : self.release_fence;
        const StoreIndex index = history.stores.size();
        if (op.order == LitmusOp::Order::kSync) rec.sync.raise(op.loc, index);
        history.stores.push_back(std::move(rec));
        self.view.raise(op.loc, index);  // a thread sees its own stores
        ++self.pc;
        dfs(program, next);
        break;
      }
      case LitmusOp::Kind::kLoad: {
        // Branch over every store coherence + happens-before admit.
        const LocationHistory& history = state.memory[op.loc];
        const StoreIndex lo = state.threads[t].view.floor(op.loc);
        for (StoreIndex i = lo; i < history.stores.size(); ++i) {
          State next = state;
          ThreadState& self = next.threads[t];
          const StoreRec& rec = next.memory[op.loc].stores[i];
          self.registers[op.reg] = rec.value;
          self.view.raise(op.loc, i);
          if (op.order == LitmusOp::Order::kSync) {
            self.view.join(rec.sync);
          } else {
            self.pending.join(rec.sync);
          }
          ++self.pc;
          dfs(program, next);
        }
        break;
      }
      case LitmusOp::Kind::kFenceAcquire: {
        State next = state;
        ThreadState& self = next.threads[t];
        self.view.join(self.pending);
        ++self.pc;
        dfs(program, next);
        break;
      }
      case LitmusOp::Kind::kFenceRelease: {
        State next = state;
        ThreadState& self = next.threads[t];
        self.release_fence = self.view;
        ++self.pc;
        dfs(program, next);
        break;
      }
    }
  }
  if (done) {
    std::vector<std::uint64_t> outcome;
    for (const ThreadState& thread : state.threads)
      outcome.insert(outcome.end(), thread.registers.begin(),
                     thread.registers.end());
    outcomes_.insert(std::move(outcome));
  }
}

std::string LitmusExplorer::fingerprint(const State& state) {
  // Exact serialization of the full state — used as the memo key.
  std::string key;
  const auto put = [&key](std::uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (const LocationHistory& history : state.memory) {
    put(history.stores.size());
    for (const StoreRec& rec : history.stores) {
      put(rec.value);
      for (std::size_t l = 0; l < state.memory.size(); ++l)
        put(rec.sync.floor(l));
    }
  }
  for (const ThreadState& thread : state.threads) {
    put(thread.pc);
    for (std::size_t l = 0; l < state.memory.size(); ++l) {
      put(thread.view.floor(l));
      put(thread.pending.floor(l));
      put(thread.release_fence.floor(l));
    }
    for (const std::uint64_t reg : thread.registers) put(reg);
  }
  return key;
}

}  // namespace ccc::interleave
