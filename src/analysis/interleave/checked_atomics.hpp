#pragma once
/// \file checked_atomics.hpp
/// \brief Model-checked atomics policy for SeqlockResidencyTable: a
///        drop-in replacement for StdAtomics whose loads/stores run
///        against the operational memory model in memory_model.hpp.
///
/// Usage (see seqlock_model.hpp for the full harness):
///   1. Create a ModelContext and make it current (ScopedModelContext).
///   2. Construct `SeqlockResidencyTable<CheckedAtomics, Config>` — every
///      Atomic member registers itself as a model location.
///   3. kRecord mode: run the writer script; each store appends to its
///      location's modification order with the proper sync clock; loads
///      return the latest value (the writer is the only mutator, exactly
///      as in production where it holds the shard mutex).
///   4. kExplore mode: run the reader (`try_fresh_hit`) repeatedly via
///      ModelContext::next_execution(); each load *branches* over every
///      store the memory model permits, driven by a DFS choice stack, so
///      the set of runs is exactly the set of reads-from assignments a
///      real concurrent reader could observe.
///
/// Why this is exhaustive without a thread scheduler: the seqlock writer
/// is mutex-serialized and never loads anything a reader writes, so its
/// store history is the same in every interleaving — recording it once
/// loses nothing. All reader/writer nondeterminism is then *which* store
/// each reader load reads, which the DFS enumerates completely (timing is
/// subsumed by staleness). Readers are mutually independent (the only
/// cross-reader state, the lockfree-hit tally, lives outside the table),
/// so one reader suffices. DESIGN.md §11 spells out the reduction.
///
/// CheckedAtomics::Atomic deliberately implements ONLY the operations the
/// protocol uses (load/store); if the protocol ever grows an RMW, this
/// policy stops compiling — the cue to extend the model rather than
/// silently under-check (the model has no RMW semantics).

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/interleave/memory_model.hpp"
#include "util/check.hpp"

namespace ccc::interleave {

/// Recording/exploration state for one checked table instance.
class ModelContext {
 public:
  enum class Mode { kRecord, kExplore };

  ModelContext() = default;
  ModelContext(const ModelContext&) = delete;
  ModelContext& operator=(const ModelContext&) = delete;

  // -- location registry (Atomic constructors, any mode) -------------- //
  LocationId register_location(std::uint64_t initial);

  // -- writer side (kRecord) ------------------------------------------ //
  [[nodiscard]] std::uint64_t record_load(LocationId loc) const;
  void record_store(LocationId loc, std::uint64_t value, bool release);
  void record_release_fence();

  /// Global store-order position the *next* store will get. The harness
  /// snapshots this before each writer op to timestamp truth changes.
  [[nodiscard]] std::uint64_t next_global() const { return next_global_; }

  // -- reader side (kExplore) ----------------------------------------- //
  /// Switches to explore mode and resets the DFS (the recorded store
  /// histories are kept — they are what the reader explores against).
  void begin_exploration();
  /// Starts (or advances to) the next unexplored reader execution.
  /// Returns false when the reads-from space is exhausted. Call in a
  /// loop, running the reader function after each true return.
  [[nodiscard]] bool next_execution();
  [[nodiscard]] std::uint64_t explore_load(LocationId loc, bool acquire);
  void explore_acquire_fence();
  /// max global_seq over all stores this execution's loads read — the
  /// earliest writer-history instant the reader may serialize at.
  [[nodiscard]] std::uint64_t read_floor() const { return read_floor_; }
  /// Number of completed reader executions (diagnostics / bound checks).
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

  Mode mode = Mode::kRecord;

 private:
  struct Choice {
    StoreIndex chosen;
    StoreIndex max;  // inclusive upper bound at decision time
  };

  std::vector<LocationHistory> locations_;
  std::uint64_t next_global_ = 1;  // 0 is reserved for initial values

  // Writer (kRecord): its clock is simply "sees everything it stored",
  // i.e. the latest index per location; kept incrementally.
  Clock writer_clock_;
  Clock writer_release_fence_;  // snapshot at the last release fence

  // Reader (kExplore): per-execution state, reset by next_execution().
  Clock view_;
  Clock pending_;
  std::uint64_t read_floor_ = 0;
  std::vector<Choice> path_;
  std::size_t depth_ = 0;
  bool first_execution_ = true;
  std::uint64_t executions_ = 0;
};

/// Installs a ModelContext as the thread's current one for the duration
/// of a scope; CheckedAtomics::Atomic operations route to it.
class ScopedModelContext {
 public:
  explicit ScopedModelContext(ModelContext& ctx);
  ~ScopedModelContext();
  ScopedModelContext(const ScopedModelContext&) = delete;
  ScopedModelContext& operator=(const ScopedModelContext&) = delete;

  [[nodiscard]] static ModelContext& current();

 private:
  ModelContext* previous_;
};

/// Atomics policy plugging SeqlockResidencyTable into the model.
struct CheckedAtomics {
  template <typename T>
  class Atomic {
    static_assert(sizeof(T) == sizeof(std::uint64_t),
                  "the model tracks 64-bit locations only");

   public:
    Atomic() : loc_(ScopedModelContext::current().register_location(0)) {}

    [[nodiscard]] T load(std::memory_order mo) const {
      ModelContext& ctx = ScopedModelContext::current();
      if (ctx.mode == ModelContext::Mode::kRecord)
        return static_cast<T>(ctx.record_load(loc_));
      // seq_cst would be modeled as acquire (documented divergence); the
      // protocol never uses it on loads, so keep the model honest.
      CCC_CHECK(mo != std::memory_order_seq_cst,
                "seq_cst loads are not modeled");
      // Anything stronger than relaxed synchronizes (seq_cst excluded
      // above; consume is not used by the protocol).
      return static_cast<T>(
          ctx.explore_load(loc_, mo != std::memory_order_relaxed));
    }

    void store(T value, std::memory_order mo) {
      ModelContext& ctx = ScopedModelContext::current();
      CCC_CHECK(ctx.mode == ModelContext::Mode::kRecord,
                "the explored reader must not store (try_fresh_hit is "
                "read-only by construction)");
      // Release-or-stronger carries the writer clock; seq_cst is modeled
      // as release on the store side (documented divergence).
      const bool release = mo == std::memory_order_release ||
                           mo == std::memory_order_seq_cst ||
                           mo == std::memory_order_acq_rel;
      ctx.record_store(loc_, static_cast<std::uint64_t>(value), release);
    }

   private:
    LocationId loc_;
  };

  static void fence_acquire() {
    ModelContext& ctx = ScopedModelContext::current();
    CCC_CHECK(ctx.mode == ModelContext::Mode::kExplore,
              "the recorded writer issues no acquire fences");
    ctx.explore_acquire_fence();
  }

  static void fence_release() {
    ModelContext& ctx = ScopedModelContext::current();
    CCC_CHECK(ctx.mode == ModelContext::Mode::kRecord,
              "the explored reader issues no release fences");
    ctx.record_release_fence();
  }
};

}  // namespace ccc::interleave
