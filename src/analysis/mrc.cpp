#include "analysis/mrc.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace ccc {

namespace {

/// Fenwick tree over request positions; position p holds 1 iff it is the
/// last access (so far) of some page.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t index, int delta) {
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] += delta;
  }

  /// Sum over [0, index].
  [[nodiscard]] std::int64_t prefix(std::size_t index) const {
    std::int64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

 private:
  std::vector<std::int64_t> tree_;
};

std::vector<std::uint64_t> suffix_sums(const std::vector<std::uint64_t>& h) {
  std::vector<std::uint64_t> suffix(h.size() + 1, 0);
  for (std::size_t d = h.size(); d-- > 0;)
    suffix[d] = suffix[d + 1] + h[d];
  return suffix;
}

}  // namespace

MissRateCurve compute_mrc(const Trace& trace) {
  MissRateCurve curve;
  curve.num_requests_ = trace.size();
  curve.num_tenants_ = trace.num_tenants();
  curve.cold_per_tenant_.assign(trace.num_tenants(), 0);
  curve.per_tenant_.assign(trace.num_tenants(), {});

  Fenwick marks(trace.size());
  std::unordered_map<PageId, std::size_t> last_access;
  last_access.reserve(trace.distinct_pages());

  const auto bump = [](std::vector<std::uint64_t>& h, std::size_t d) {
    if (h.size() <= d) h.resize(d + 1, 0);
    ++h[d];
  };

  for (std::size_t t = 0; t < trace.size(); ++t) {
    const Request& req = trace[t];
    const auto it = last_access.find(req.page);
    if (it == last_access.end()) {
      ++curve.cold_per_tenant_[req.tenant];
    } else {
      // Distinct pages touched strictly between the two accesses = number
      // of last-access marks in (prev, t).
      const std::size_t prev = it->second;
      const std::int64_t between =
          marks.prefix(t - 1) - marks.prefix(prev);
      CCC_CHECK(between >= 0, "negative stack distance");
      const auto d = static_cast<std::size_t>(between);
      bump(curve.histogram_, d);
      bump(curve.per_tenant_[req.tenant], d);
      marks.add(prev, -1);
    }
    marks.add(t, +1);
    last_access[req.page] = t;
  }

  curve.suffix_ = suffix_sums(curve.histogram_);
  curve.suffix_per_tenant_.reserve(curve.per_tenant_.size());
  for (const auto& h : curve.per_tenant_)
    curve.suffix_per_tenant_.push_back(suffix_sums(h));
  return curve;
}

std::uint64_t MissRateCurve::misses_at(std::size_t k) const {
  CCC_REQUIRE(k >= 1, "cache size must be positive");
  std::uint64_t cold = 0;
  for (const std::uint64_t c : cold_per_tenant_) cold += c;
  // A re-reference at distance d hits iff d < k.
  const std::uint64_t far =
      k < suffix_.size() ? suffix_[k] : 0;
  return cold + far;
}

double MissRateCurve::miss_ratio_at(std::size_t k) const {
  if (num_requests_ == 0) return 0.0;
  return static_cast<double>(misses_at(k)) /
         static_cast<double>(num_requests_);
}

std::uint64_t MissRateCurve::tenant_misses_at(std::size_t k,
                                              TenantId tenant) const {
  CCC_REQUIRE(k >= 1, "cache size must be positive");
  CCC_REQUIRE(tenant < num_tenants_, "tenant id out of range");
  const auto& suffix = suffix_per_tenant_[tenant];
  const std::uint64_t far = k < suffix.size() ? suffix[k] : 0;
  return cold_per_tenant_[tenant] + far;
}

double MissRateCurve::cost_at(
    std::size_t k, const std::vector<CostFunctionPtr>& costs) const {
  CCC_REQUIRE(costs.size() >= num_tenants_,
              "need one cost function per tenant");
  double total = 0.0;
  for (TenantId i = 0; i < num_tenants_; ++i)
    total += costs[i]->value(static_cast<double>(tenant_misses_at(k, i)));
  return total;
}

}  // namespace ccc
