#pragma once
/// \file mrc.hpp
/// \brief Exact LRU miss-rate curves via Mattson stack distances.
///
/// LRU obeys the stack (inclusion) property, so one pass over the trace
/// yields its miss count for *every* cache size simultaneously: a request
/// hits in a cache of size k iff fewer than k distinct pages were touched
/// since the page's previous access. Distances are computed in O(T log T)
/// with a Fenwick tree over last-access positions.
///
/// Used by experiment E8 to draw cost-vs-capacity curves (the provider's
/// capacity-planning "figure"): expected per-tenant misses at every k feed
/// the convex cost functions, exposing where each tenant's SLA knee sits.

#include <cstdint>
#include <vector>

#include "cost/cost_function.hpp"
#include "trace/trace.hpp"

namespace ccc {

/// Result of the single-pass Mattson analysis.
class MissRateCurve {
 public:
  /// Total LRU misses with a cache of `k` pages (k >= 1).
  [[nodiscard]] std::uint64_t misses_at(std::size_t k) const;

  /// Miss ratio (misses / requests) at cache size k.
  [[nodiscard]] double miss_ratio_at(std::size_t k) const;

  /// Per-tenant LRU misses at cache size k (global shared LRU stack).
  [[nodiscard]] std::uint64_t tenant_misses_at(std::size_t k,
                                               TenantId tenant) const;

  /// Σ_i f_i(misses_i(k)) — the paper's objective as a function of k.
  [[nodiscard]] double cost_at(std::size_t k,
                               const std::vector<CostFunctionPtr>& costs) const;

  [[nodiscard]] std::size_t num_requests() const noexcept {
    return num_requests_;
  }
  /// Largest finite stack distance observed (curve is flat beyond it).
  [[nodiscard]] std::size_t max_useful_size() const noexcept {
    return histogram_.empty() ? 1 : histogram_.size();
  }

 private:
  friend MissRateCurve compute_mrc(const Trace& trace);

  std::size_t num_requests_ = 0;
  std::uint32_t num_tenants_ = 0;
  /// histogram_[d] = number of re-references with stack distance d
  /// (d distinct other pages touched since the previous access).
  std::vector<std::uint64_t> histogram_;
  std::vector<std::uint64_t> cold_per_tenant_;
  /// per_tenant_[i][d] like histogram_ but restricted to tenant i.
  std::vector<std::vector<std::uint64_t>> per_tenant_;
  /// Suffix sums, built lazily-ish at construction for O(1) queries.
  std::vector<std::uint64_t> suffix_;                 ///< Σ_{d>=k} histogram
  std::vector<std::vector<std::uint64_t>> suffix_per_tenant_;
};

/// One-pass Mattson analysis of `trace`.
[[nodiscard]] MissRateCurve compute_mrc(const Trace& trace);

}  // namespace ccc
