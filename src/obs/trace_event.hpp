#pragma once
/// \file trace_event.hpp
/// \brief Chrome `trace_event` JSON span exporter (chrome://tracing /
///        Perfetto "JSON Array Format").
///
/// Opt-in: `TraceEventWriter::from_env()` returns a writer only when the
/// `CCC_OBS_TRACE` environment variable names an output path, so ordinary
/// runs never pay for span serialization. `SimObserver` feeds it spans for
/// evictions, window rollovers, index rebuilds and shard rebalances; load
/// the file in chrome://tracing or ui.perfetto.dev to see the eviction
/// cascade on a timeline.
///
/// Event timestamps are microseconds since writer construction (steady
/// clock). Writes are mutex-serialized — tracing is a debugging tool, not
/// a hot-path fixture — and capped at `max_events` (dropped spans are
/// counted and recorded as a final metadata event so truncation is never
/// silent).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ccc::obs {

class TraceEventWriter {
 public:
  /// Key/value pairs attached to an event's "args" object.
  using Args =
      std::initializer_list<std::pair<std::string_view, std::uint64_t>>;

  /// Writes the event stream to `os` (kept alive by the caller).
  explicit TraceEventWriter(std::ostream& os,
                            std::uint64_t max_events = kDefaultMaxEvents);

  /// Opens `path` and owns the stream; throws std::runtime_error when the
  /// file cannot be created.
  explicit TraceEventWriter(const std::string& path,
                            std::uint64_t max_events = kDefaultMaxEvents);

  /// Reads `CCC_OBS_TRACE`; empty/unset returns nullptr (tracing off).
  [[nodiscard]] static std::unique_ptr<TraceEventWriter> from_env();

  TraceEventWriter(const TraceEventWriter&) = delete;
  TraceEventWriter& operator=(const TraceEventWriter&) = delete;
  ~TraceEventWriter();

  /// Complete event ("ph":"X"): a span of `dur_us` microseconds starting
  /// at `ts_us`.
  void complete_event(std::string_view name, std::string_view category,
                      std::uint64_t ts_us, std::uint64_t dur_us, Args args);

  /// Instant event ("ph":"i", thread scope).
  void instant_event(std::string_view name, std::string_view category,
                     std::uint64_t ts_us, Args args);

  /// Runtime toggle (the server's /debug/trace endpoint): a disabled
  /// writer drops events without touching the mutex or the counters, so
  /// flipping it off stops all trace I/O immediately and cheaply. Starts
  /// enabled — constructing a writer means tracing was requested.
  void set_enabled(bool on) noexcept {
    // Relaxed: the flag is an independent on/off switch — event bodies are
    // serialized by mutex_, and a racing emit seeing the stale value only
    // writes/drops one more span, which the toggle semantics allow.
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    // Relaxed: see set_enabled — stale reads are benign by design.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds elapsed since the writer was constructed.
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Events accepted so far (diagnostics/tests). Takes the writer mutex —
  /// the pre-annotation version read the counter unlocked, which the
  /// thread-safety analysis rightly rejects (a concurrent emit could be
  /// mid-increment).
  [[nodiscard]] std::uint64_t emitted() const CCC_EXCLUDES(mutex_);
  /// Events rejected by the cap (locked, as above).
  [[nodiscard]] std::uint64_t dropped() const CCC_EXCLUDES(mutex_);

  /// Closes the JSON array (also done by the destructor; idempotent).
  void finish() CCC_EXCLUDES(mutex_);

  static constexpr std::uint64_t kDefaultMaxEvents = 1ULL << 20;

 private:
  void write_prefix(std::string_view name, std::string_view category,
                    char phase, std::uint64_t ts_us) CCC_REQUIRES(mutex_);
  void write_args_and_close(Args args) CCC_REQUIRES(mutex_);
  [[nodiscard]] bool admit_locked() CCC_REQUIRES(mutex_);

  std::unique_ptr<std::ostream> owned_;
  /// /debug/trace toggle; read before taking the mutex on every emit.
  std::atomic<bool> enabled_{true};
  /// Set once at construction; the *stream* it points at is written only
  /// under `mutex_`.
  std::ostream* os_ CCC_PT_GUARDED_BY(mutex_);
  mutable util::Mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t max_events_;
  std::uint64_t emitted_ CCC_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ CCC_GUARDED_BY(mutex_) = 0;
  bool first_ CCC_GUARDED_BY(mutex_) = true;
  bool finished_ CCC_GUARDED_BY(mutex_) = false;
};

}  // namespace ccc::obs
