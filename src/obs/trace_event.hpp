#pragma once
/// \file trace_event.hpp
/// \brief Chrome `trace_event` JSON span exporter (chrome://tracing /
///        Perfetto "JSON Array Format").
///
/// Opt-in: `TraceEventWriter::from_env()` returns a writer only when the
/// `CCC_OBS_TRACE` environment variable names an output path, so ordinary
/// runs never pay for span serialization. `SimObserver` feeds it spans for
/// evictions, window rollovers, index rebuilds and shard rebalances; load
/// the file in chrome://tracing or ui.perfetto.dev to see the eviction
/// cascade on a timeline.
///
/// Event timestamps are microseconds since writer construction (steady
/// clock). Writes are mutex-serialized — tracing is a debugging tool, not
/// a hot-path fixture — and capped at `max_events` (dropped spans are
/// counted and recorded as a final metadata event so truncation is never
/// silent).

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ccc::obs {

class TraceEventWriter {
 public:
  /// Key/value pairs attached to an event's "args" object.
  using Args =
      std::initializer_list<std::pair<std::string_view, std::uint64_t>>;

  /// Writes the event stream to `os` (kept alive by the caller).
  explicit TraceEventWriter(std::ostream& os,
                            std::uint64_t max_events = kDefaultMaxEvents);

  /// Opens `path` and owns the stream; throws std::runtime_error when the
  /// file cannot be created.
  explicit TraceEventWriter(const std::string& path,
                            std::uint64_t max_events = kDefaultMaxEvents);

  /// Reads `CCC_OBS_TRACE`; empty/unset returns nullptr (tracing off).
  [[nodiscard]] static std::unique_ptr<TraceEventWriter> from_env();

  TraceEventWriter(const TraceEventWriter&) = delete;
  TraceEventWriter& operator=(const TraceEventWriter&) = delete;
  ~TraceEventWriter();

  /// Complete event ("ph":"X"): a span of `dur_us` microseconds starting
  /// at `ts_us`.
  void complete_event(std::string_view name, std::string_view category,
                      std::uint64_t ts_us, std::uint64_t dur_us, Args args);

  /// Instant event ("ph":"i", thread scope).
  void instant_event(std::string_view name, std::string_view category,
                     std::uint64_t ts_us, Args args);

  /// Microseconds elapsed since the writer was constructed.
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Events accepted so far (diagnostics/tests).
  [[nodiscard]] std::uint64_t emitted() const noexcept;
  /// Events rejected by the cap.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Closes the JSON array (also done by the destructor; idempotent).
  void finish();

  static constexpr std::uint64_t kDefaultMaxEvents = 1ULL << 20;

 private:
  void write_prefix(std::string_view name, std::string_view category,
                    char phase, std::uint64_t ts_us);
  void write_args_and_close(Args args);
  [[nodiscard]] bool admit_locked();

  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
  std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t max_events_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  bool first_ = true;
  bool finished_ = false;
};

}  // namespace ccc::obs
