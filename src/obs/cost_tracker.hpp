#pragma once
/// \file cost_tracker.hpp
/// \brief Live competitive-ratio telemetry: per-tenant ALG cost next to a
///        certified online lower bound on OPT, assembled from the dual
///        mass ALG-DISCRETE banks on every eviction.
///
/// The policy layer maintains the ingredients incrementally (one double
/// add per eviction, nothing on hits — see
/// ConvexCachingPolicy::dual_mass_by_tenant); `collect()` snapshots them
/// across shards under the usual one-lock-at-a-time aggregation, and
/// `snapshot()` turns them into gauges:
///
///   - `tenant_cost[i]` — f_i(a_i), the tenant's share of the paper
///     objective (exactly `ccc_tenant_miss_cost`, recomputed from the
///     merged books so the two can be cross-checked).
///   - `dual_lower_bound` — a *feasible dual objective*, hence by weak
///     duality a lower bound on the fractional optimum of every schedule
///     that respects the shard partition and capacity split. Per shard s:
///
///         LB_s = max_{u > 0} [ u·Σ_i Y_{i,s}  −  Σ_i f_i*(u·f_i'(m_{i,s})) ]
///
///     where Y_{i,s} is the banked y-mass (Σ B(victim) over tenant i's
///     evictions), m_{i,s} the eviction count, f* the Fenchel conjugate,
///     and u a free dual scaling (duals scale homogeneously, so every u
///     yields a valid bound — the maximizer just gives the tightest one).
///     DESIGN.md §13 has the full feasibility argument; property tests
///     check LB ≤ OPT against the exact offline DP and the formula
///     against the ALG-CONT transcript.
///   - `competitive_ratio` — cost_total / dual_lower_bound (0 until a
///     positive certificate exists), plus the Theorem 1.1 predictions
///     `α·k` and the value-domain ratio cap Σ-max f_i(αk·x)/f_i(x)
///     (= β^β·k^β for monomials, Corollary 1.2) to compare against.
///
/// Merging: per-tenant miss counts add element-wise (exact integers, like
/// `Metrics::merge`); dual accounts are kept *separate* per shard — the
/// conjugate correction is nonlinear in m, so summing two shards' masses
/// element-wise would misprice it. Accounts are keyed and kept sorted by
/// `id`, making merge associative and commutative bit-for-bit.
///
/// Thread-safety: a CostTracker is a snapshot value type, externally
/// synchronized like MetricsRegistry (built and read by one thread).

#include <cstdint>
#include <vector>

#include "cost/cost_function.hpp"
#include "shard/sharded_cache.hpp"

namespace ccc::obs {

/// One shard's dual account (ShardDualAccount) plus the ordering key that
/// makes CostTracker::merge canonical.
struct DualAccount {
  std::uint64_t id = 0;  ///< unique per account within a tracker
  bool valid = false;
  std::vector<double> mass;              ///< Σ B(victim) per tenant
  std::vector<std::uint64_t> evictions;  ///< m(i, s) per tenant
};

/// Everything the gauges need, computed once per exposition.
struct CostSnapshot {
  std::vector<double> tenant_cost;         ///< f_i(a_i)
  std::vector<double> tenant_lower_bound;  ///< dual share; may be negative
  std::vector<double> tenant_ratio;        ///< cost/share, 0 = no certificate
  double cost_total = 0.0;
  double dual_lower_bound = 0.0;     ///< certified; 0 until positive
  double competitive_ratio = 0.0;    ///< cost_total / LB, 0 = no certificate
  double theorem_alpha_k = 0.0;      ///< Theorem 1.1 argument blow-up α·k
  double theorem_ratio_bound = 0.0;  ///< value-domain cap; β^β·k^β for x^β
  bool certified = false;  ///< all accounts carry a valid dual certificate
};

class CostTracker {
 public:
  CostTracker() = default;
  explicit CostTracker(std::uint32_t num_tenants);

  /// Snapshots `cache`'s books and per-shard dual accounts (account id =
  /// shard index). Locks shards one at a time; never nests locks.
  [[nodiscard]] static CostTracker collect(const ShardedCache& cache);

  /// Element-wise add of per-tenant miss counts (sizes must match).
  void add_misses(const std::vector<std::uint64_t>& misses);

  /// Adds one dual account. Throws std::invalid_argument on a duplicate
  /// id — two accounts describing the same shard must never be summed.
  void add_account(DualAccount account);

  /// Exact, associative and commutative: miss counts add element-wise,
  /// accounts interleave by id. Throws on tenant-count mismatch or
  /// duplicate account ids.
  void merge(const CostTracker& other);

  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return static_cast<std::uint32_t>(misses_.size());
  }
  [[nodiscard]] const std::vector<std::uint64_t>& misses() const noexcept {
    return misses_;
  }
  [[nodiscard]] const std::vector<DualAccount>& accounts() const noexcept {
    return accounts_;
  }

  /// Evaluates costs, lower bound and ratio gauges. `costs` must hold one
  /// function per tenant; `capacity` is the total cache size k feeding the
  /// Theorem 1.1 gauges. Pure function of the tracker state — never
  /// touches live caches.
  [[nodiscard]] CostSnapshot snapshot(
      const std::vector<CostFunctionPtr>& costs, std::size_t capacity) const;

 private:
  std::vector<std::uint64_t> misses_;
  std::vector<DualAccount> accounts_;  ///< sorted by id
};

}  // namespace ccc::obs
