#pragma once
/// \file slow_ring.hpp
/// \brief Lock-free ring of the N slowest requests seen by the server:
///        tenant, page, per-stage latency breakdown and batch size.
///
/// Single-writer, multi-reader. The server's event-loop thread is the only
/// writer (it owns all connections, server.hpp), so offer() needs no RMW
/// atomics at all: each slot is published under a per-slot seqlock —
/// version bumped to odd, payload stored, version bumped back to even —
/// and a reader that observes an odd or changed version discards the slot.
/// This mirrors the shard seqlock hit path (DESIGN.md §9/§13) in miniature;
/// the memory-order reasoning lives next to each fence below and is
/// enforced by scripts/check_memory_order_lint.py.
///
/// Replacement policy: a new sample evicts the current minimum total only
/// when strictly slower, so the ring converges to the top-N by total
/// latency. The writer keeps a plain shadow of the totals — readers never
/// write, so the shadow needs no synchronization.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccc::obs {

/// One slow request: all stage durations in nanoseconds. `total_ns` is the
/// attributed end-to-end time (queue + cache + encode — the stages with
/// per-batch stamps; decode and flush are chunk-, not request-scoped).
struct SlowRequest {
  std::uint64_t total_ns = 0;
  std::uint64_t page = 0;
  std::uint32_t tenant = 0;
  std::uint32_t batch_size = 0;
  std::uint64_t queue_ns = 0;   ///< first enqueue → batch start
  std::uint64_t cache_ns = 0;   ///< access_batch service time
  std::uint64_t encode_ns = 0;  ///< response serialization
};

class SlowRequestRing {
 public:
  static constexpr std::size_t kDefaultSlots = 32;

  explicit SlowRequestRing(std::size_t slots = kDefaultSlots)
      : slots_(slots), shadow_total_(slots, 0) {}

  SlowRequestRing(const SlowRequestRing&) = delete;
  SlowRequestRing& operator=(const SlowRequestRing&) = delete;

  /// Writer-only (event-loop thread). Inserts `request` if it is slower
  /// than the current minimum resident total; otherwise drops it. O(N)
  /// scan over the plain shadow array — N is tiny and offers happen at
  /// batch, not request, granularity.
  void offer(const SlowRequest& request) noexcept {
    std::size_t victim = 0;
    std::uint64_t victim_total = shadow_total_[0];
    for (std::size_t i = 1; i < shadow_total_.size(); ++i) {
      if (shadow_total_[i] < victim_total) {
        victim_total = shadow_total_[i];
        victim = i;
      }
    }
    if (request.total_ns <= victim_total) return;
    Slot& slot = slots_[victim];
    // Writer-private read: we are the only mutator of version words.
    const std::uint64_t seq = slot.version.load(std::memory_order_relaxed);
    // Odd window open: relaxed store + release fence (the shard seqlock
    // idiom, seqlock_table.hpp) — the fence orders the odd version before
    // every payload store below, so a reader that observes any payload
    // byte of this offer also observes the window was open.
    slot.version.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.payload = request;
    // Window close: release store carries the payload stores above — a
    // reader acquiring this even value sees the complete request.
    slot.version.store(seq + 2, std::memory_order_release);
    shadow_total_[victim] = request.total_ns;
  }

  /// Reader-safe snapshot: every slot whose seqlock was stable during the
  /// copy, slowest first. Concurrent offers may hide at most the slots
  /// they are touching.
  [[nodiscard]] std::vector<SlowRequest> snapshot() const {
    std::vector<SlowRequest> out;
    out.reserve(slots_.size());
    for (const Slot& slot : slots_) {
      // Acquire pairs with the writer's even release store: a stable even
      // version sandwiching the copy proves the payload bytes are from one
      // complete offer().
      const std::uint64_t before =
          slot.version.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) continue;
      const SlowRequest copy = slot.payload;
      // The fence keeps the payload reads above the re-check load — same
      // discipline as the shard seqlock readers (DESIGN.md §9).
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t after =
          slot.version.load(std::memory_order_relaxed);
      if (after != before) continue;
      out.push_back(copy);
    }
    std::sort(out.begin(), out.end(),
              [](const SlowRequest& a, const SlowRequest& b) {
                return a.total_ns > b.total_ns;
              });
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }

 private:
  struct Slot {
    /// 0 = never written; odd = write in flight; even > 0 = stable.
    std::atomic<std::uint64_t> version{0};
    SlowRequest payload;
  };

  std::vector<Slot> slots_;
  /// Writer-private copy of each slot's resident total (readers never see
  /// it, so no atomics needed).
  std::vector<std::uint64_t> shadow_total_;
};

}  // namespace ccc::obs
