#include "obs/registry.hpp"

#include <ostream>
#include <stdexcept>

#include "shard/sharded_cache.hpp"
#include "util/string_util.hpp"

namespace ccc::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void write_label_block(std::ostream& os, const LabelSet& labels) {
  if (labels.empty()) return;
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ',';
    os << labels[i].first << "=\"" << prom_escape(labels[i].second) << '"';
  }
  os << '}';
}

/// As write_label_block but with one extra label appended (histogram le=).
void write_label_block_le(std::ostream& os, const LabelSet& labels,
                          const std::string& le) {
  os << '{';
  for (const auto& [key, value] : labels)
    os << key << "=\"" << prom_escape(value) << "\",";
  os << "le=\"" << le << "\"}";
}

void write_json_labels(std::ostream& os, const LabelSet& labels) {
  os << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) os << ", ";
    os << '"' << json_escape(labels[i].first) << "\": \""
       << json_escape(labels[i].second) << '"';
  }
  os << '}';
}

}  // namespace

MetricFamily& MetricsRegistry::family(const std::string& name,
                                      const std::string& help,
                                      MetricKind kind) {
  for (MetricFamily& f : families_) {
    if (f.name != name) continue;
    if (f.kind != kind)
      throw std::invalid_argument("metric family '" + name +
                                  "' re-registered with a different kind");
    return f;
  }
  families_.push_back(MetricFamily{name, help, kind, {}, {}});
  return families_.back();
}

const MetricFamily* MetricsRegistry::find(const std::string& name) const {
  for (const MetricFamily& f : families_)
    if (f.name == name) return &f;
  return nullptr;
}

void MetricsRegistry::set_counter(const std::string& name,
                                  const std::string& help, LabelSet labels,
                                  double value) {
  family(name, help, MetricKind::kCounter)
      .scalars.push_back(ScalarSample{std::move(labels), value});
}

void MetricsRegistry::set_gauge(const std::string& name,
                                const std::string& help, LabelSet labels,
                                double value) {
  family(name, help, MetricKind::kGauge)
      .scalars.push_back(ScalarSample{std::move(labels), value});
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const std::string& help, LabelSet labels,
                                    HistogramSnapshot snapshot) {
  family(name, help, MetricKind::kHistogram)
      .histograms.push_back(
          HistogramSample{std::move(labels), std::move(snapshot)});
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const MetricFamily& f : families_) {
    if (!f.help.empty()) os << "# HELP " << f.name << ' ' << f.help << '\n';
    os << "# TYPE " << f.name << ' ' << kind_name(f.kind) << '\n';
    for (const ScalarSample& s : f.scalars) {
      os << f.name;
      write_label_block(os, s.labels);
      os << ' ' << s.value << '\n';
    }
    for (const HistogramSample& h : f.histograms) {
      // Cumulative buckets over the occupied range only; `le` is the
      // bucket's inclusive upper value bound.
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.snapshot.buckets.size(); ++i) {
        if (h.snapshot.buckets[i] == 0) continue;
        cumulative += h.snapshot.buckets[i];
        os << f.name << "_bucket";
        write_label_block_le(os, h.labels,
                             std::to_string(Histogram::bucket_high(i)));
        os << ' ' << cumulative << '\n';
      }
      os << f.name << "_bucket";
      write_label_block_le(os, h.labels, "+Inf");
      os << ' ' << h.snapshot.count << '\n';
      os << f.name << "_sum";
      write_label_block(os, h.labels);
      os << ' ' << h.snapshot.sum << '\n';
      os << f.name << "_count";
      write_label_block(os, h.labels);
      os << ' ' << h.snapshot.count << '\n';
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"metrics\": [\n";
  for (std::size_t fi = 0; fi < families_.size(); ++fi) {
    const MetricFamily& f = families_[fi];
    os << "    {\"name\": \"" << json_escape(f.name) << "\", \"kind\": \""
       << kind_name(f.kind) << "\", \"help\": \"" << json_escape(f.help)
       << "\", \"samples\": [";
    bool first = true;
    for (const ScalarSample& s : f.scalars) {
      if (!first) os << ", ";
      first = false;
      os << "{\"labels\": ";
      write_json_labels(os, s.labels);
      os << ", \"value\": " << s.value << '}';
    }
    for (const HistogramSample& h : f.histograms) {
      if (!first) os << ", ";
      first = false;
      const HistogramSnapshot& snap = h.snapshot;
      os << "{\"labels\": ";
      write_json_labels(os, h.labels);
      os << ", \"count\": " << snap.count << ", \"sum\": " << snap.sum
         << ", \"min\": " << snap.min << ", \"max\": " << snap.max
         << ", \"mean\": " << snap.mean()
         << ", \"p50\": " << snap.quantile(0.50)
         << ", \"p90\": " << snap.quantile(0.90)
         << ", \"p99\": " << snap.quantile(0.99)
         << ", \"p999\": " << snap.quantile(0.999) << ", \"buckets\": [";
      bool first_bucket = true;
      for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        if (snap.buckets[i] == 0) continue;
        if (!first_bucket) os << ", ";
        first_bucket = false;
        os << '[' << Histogram::bucket_high(i) << ", " << snap.buckets[i]
           << ']';
      }
      os << "]}";
    }
    os << "]}" << (fi + 1 < families_.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

void snapshot_metrics(MetricsRegistry& registry, const Metrics& metrics,
                      const std::vector<CostFunctionPtr>* costs,
                      const LabelSet& extra) {
  for (TenantId t = 0; t < metrics.num_tenants(); ++t) {
    LabelSet labels = extra;
    labels.emplace_back("tenant", std::to_string(t));
    registry.set_counter("ccc_tenant_hits_total", "Cache hits per tenant",
                         labels, static_cast<double>(metrics.hits(t)));
    registry.set_counter("ccc_tenant_misses_total",
                         "Cache misses (fetches) per tenant", labels,
                         static_cast<double>(metrics.misses(t)));
    registry.set_counter("ccc_tenant_evictions_total",
                         "Evictions charged per tenant", labels,
                         static_cast<double>(metrics.evictions(t)));
    if (costs != nullptr && t < costs->size())
      registry.set_gauge(
          "ccc_tenant_miss_cost",
          "f_i(misses_i) — the tenant's share of the paper objective",
          labels,
          (*costs)[t]->value(static_cast<double>(metrics.misses(t))));
  }
}

void snapshot_perf(MetricsRegistry& registry, const PerfCounters& perf,
                   const LabelSet& extra) {
  registry.set_counter("ccc_perf_requests_total", "Requests processed",
                       extra, static_cast<double>(perf.requests));
  registry.set_counter("ccc_perf_evictions_total", "Victims chosen", extra,
                       static_cast<double>(perf.evictions));
  registry.set_counter("ccc_perf_heap_pops_total",
                       "Entries popped from victim-index heaps", extra,
                       static_cast<double>(perf.heap_pops));
  registry.set_counter("ccc_perf_stale_skips_total",
                       "Popped index entries that were stale", extra,
                       static_cast<double>(perf.stale_skips));
  registry.set_counter("ccc_perf_index_rebuilds_total",
                       "Full victim-index rebuilds", extra,
                       static_cast<double>(perf.index_rebuilds));
  registry.set_counter("ccc_perf_window_rollovers_total",
                       "Accounting-window boundary crossings", extra,
                       static_cast<double>(perf.window_rollovers));
  registry.set_counter("ccc_perf_lockfree_hits_total",
                       "Hits served by the optimistic seqlock path", extra,
                       static_cast<double>(perf.lockfree_hits));
  registry.set_gauge("ccc_perf_wall_seconds",
                     "Wall-clock time of the measured request loop", extra,
                     perf.wall_seconds);
}

void snapshot_sharded(MetricsRegistry& registry, const ShardedCache& cache,
                      const LabelSet& extra) {
  const std::vector<ShardStats> stats = cache.shard_stats();
  for (std::size_t s = 0; s < stats.size(); ++s) {
    LabelSet labels = extra;
    labels.emplace_back("shard", std::to_string(s));
    registry.set_gauge("ccc_shard_capacity_pages",
                       "Capacity currently assigned to the shard", labels,
                       static_cast<double>(stats[s].capacity));
    registry.set_gauge("ccc_shard_resident_pages",
                       "Pages resident in the shard", labels,
                       static_cast<double>(stats[s].resident));
    registry.set_counter("ccc_shard_hits_total", "Hits served by the shard",
                         labels, static_cast<double>(stats[s].hits));
    registry.set_counter("ccc_shard_misses_total",
                         "Misses served by the shard", labels,
                         static_cast<double>(stats[s].misses));
    registry.set_counter("ccc_shard_evictions_total",
                         "Evictions performed by the shard", labels,
                         static_cast<double>(stats[s].evictions));
  }
  snapshot_metrics(registry, cache.aggregated_metrics(), cache.costs(),
                   extra);
  snapshot_perf(registry, cache.aggregated_perf(), extra);
  if (cache.has_costs()) {
    registry.set_gauge("ccc_global_miss_cost",
                       "Σ_i f_i(Σ_s misses_{i,s}) across all shards", extra,
                       cache.global_miss_cost());
    snapshot_costs(registry,
                   CostTracker::collect(cache).snapshot(
                       *cache.costs(), cache.total_capacity()),
                   extra);
  }
}

void snapshot_costs(MetricsRegistry& registry, const CostSnapshot& snap,
                    const LabelSet& extra) {
  for (std::size_t t = 0; t < snap.tenant_cost.size(); ++t) {
    LabelSet labels = extra;
    labels.emplace_back("tenant", std::to_string(t));
    registry.set_gauge("ccc_cost_total",
                       "Running ALG cost f_i(a_i) per tenant", labels,
                       snap.tenant_cost[t]);
    registry.set_gauge(
        "ccc_dual_lower_bound",
        "Per-tenant share of the certified online dual lower bound on OPT "
        "(may be negative; only the total is a certificate)",
        labels, snap.tenant_lower_bound[t]);
    registry.set_gauge(
        "ccc_competitive_ratio",
        "f_i(a_i) over the tenant's dual share; 0 = no certificate yet",
        labels, snap.tenant_ratio[t]);
  }
  registry.set_gauge("ccc_cost_total", "Running ALG cost f_i(a_i)", extra,
                     snap.cost_total);
  registry.set_gauge(
      "ccc_dual_lower_bound",
      "Certified online lower bound on the partition-respecting OPT", extra,
      snap.dual_lower_bound);
  registry.set_gauge(
      "ccc_competitive_ratio",
      "Total ALG cost over the certified lower bound; 0 = no certificate",
      extra, snap.competitive_ratio);
  registry.set_gauge("ccc_theorem11_alpha_k",
                     "Theorem 1.1 argument blow-up α·k", extra,
                     snap.theorem_alpha_k);
  registry.set_gauge(
      "ccc_theorem11_ratio_bound",
      "Theorem 1.1 value-domain ratio cap (β^β·k^β for monomials)", extra,
      snap.theorem_ratio_bound);
}

}  // namespace ccc::obs
