#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ccc::obs {

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value < kSubBucketCount) return static_cast<std::size_t>(value);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = msb - kSubBucketBits;
  const std::uint64_t sub = (value >> shift) & (kSubBucketCount - 1);
  return static_cast<std::size_t>(
      ((static_cast<std::uint64_t>(msb - kSubBucketBits) + 1)
       << kSubBucketBits) + sub);
}

std::uint64_t Histogram::bucket_low(std::size_t index) noexcept {
  if (index < kSubBucketCount) return index;
  const unsigned range = static_cast<unsigned>(index >> kSubBucketBits);
  const std::uint64_t sub = index & (kSubBucketCount - 1);
  return (kSubBucketCount + sub) << (range - 1);
}

std::uint64_t Histogram::bucket_high(std::size_t index) noexcept {
  if (index < kSubBucketCount) return index;
  const unsigned range = static_cast<unsigned>(index >> kSubBucketBits);
  return bucket_low(index) + ((std::uint64_t{1} << (range - 1)) - 1);
}

void Histogram::record(std::uint64_t value) noexcept {
  // Relaxed: buckets/sum/min/max are independent accumulators with no
  // cross-field invariant; readers tolerate torn views (histogram.hpp).
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  // Skip the RMW when it would be a no-op — zero is the common case for
  // work histograms of index-less policies.
  if (value != 0) sum_.fetch_add(value, std::memory_order_relaxed);
  // Relaxed CAS loops: the monotone extremum update needs only atomicity
  // of the min_/max_ word itself — no other field is ordered against it.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  // Same single-word extremum argument as min_ above.
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) noexcept {
  // Relaxed: each word is read/added atomically on its own; merge makes
  // no cross-field claim, matching the record()/snapshot() contract.
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  // Relaxed: sum_ is an independent accumulator, same rule as the buckets.
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  // Relaxed loads: min_/max_ are single words with no ordering ties.
  const std::uint64_t other_min = other.min_.load(std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  // The monotone CAS needs only atomicity of the min_ word, as in record().
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  // Same single-word extremum rule for max_.
  const std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  // Atomicity of the max_ word is all the monotone CAS needs.
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  // Relaxed: monotone per-bucket counters; a torn cross-bucket total only
  // lags concurrent writers, which the read-side contract allows.
  for (const auto& bucket : buckets_)
    total += bucket.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount);
  std::uint64_t total = 0;
  // Relaxed bucket reads: the snapshot is torn-but-sane by contract —
  // every word is read atomically and the totals derive from those reads.
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
  }
  // Count comes from the bucket reads themselves, so the snapshot is
  // self-consistent even when racing writers.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t lo = min_.load(std::memory_order_relaxed);
  snap.min = total == 0 ? 0 : lo;
  snap.max = max_.load(std::memory_order_relaxed);  // torn-but-sane read
  return snap;
}

std::uint64_t HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based: the smallest value v such that
  // at least ceil(q·count) samples are ≤ v.
  const auto target = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      const std::uint64_t low = Histogram::bucket_low(i);
      const std::uint64_t high = Histogram::bucket_high(i);
      const std::uint64_t mid = low + (high - low) / 2;
      return std::clamp(mid, min, max);
    }
  }
  return max;  // unreachable when buckets/count agree
}

}  // namespace ccc::obs
