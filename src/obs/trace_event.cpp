#include "obs/trace_event.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "util/string_util.hpp"

namespace ccc::obs {

namespace {

/// Stable small id for the calling thread ("tid" field).
std::uint64_t thread_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffu;
}

}  // namespace

TraceEventWriter::TraceEventWriter(std::ostream& os, std::uint64_t max_events)
    : os_(&os), start_(std::chrono::steady_clock::now()),
      max_events_(max_events) {
  // No other thread has the writer yet; the lock satisfies the analysis
  // for the guarded stream write.
  const util::MutexLock lock(mutex_);
  *os_ << "[";
}

TraceEventWriter::TraceEventWriter(const std::string& path,
                                   std::uint64_t max_events)
    : owned_(std::make_unique<std::ofstream>(path)),
      os_(owned_.get()), start_(std::chrono::steady_clock::now()),
      max_events_(max_events) {
  const util::MutexLock lock(mutex_);  // pre-publication, as above
  if (!*os_)
    throw std::runtime_error("CCC_OBS_TRACE: cannot write trace file " +
                             path);
  *os_ << "[";
}

std::unique_ptr<TraceEventWriter> TraceEventWriter::from_env() {
  // getenv is racy only against setenv; this process never calls setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* path = std::getenv("CCC_OBS_TRACE");
  if (path == nullptr || *path == '\0') return nullptr;
  return std::make_unique<TraceEventWriter>(std::string(path));
}

TraceEventWriter::~TraceEventWriter() { finish(); }

std::uint64_t TraceEventWriter::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::uint64_t TraceEventWriter::emitted() const {
  const util::MutexLock lock(mutex_);
  return emitted_;
}

std::uint64_t TraceEventWriter::dropped() const {
  const util::MutexLock lock(mutex_);
  return dropped_;
}

bool TraceEventWriter::admit_locked() {
  if (finished_) return false;
  if (emitted_ >= max_events_) {
    ++dropped_;
    return false;
  }
  ++emitted_;
  if (!first_) *os_ << ",";
  first_ = false;
  *os_ << "\n";
  return true;
}

void TraceEventWriter::write_prefix(std::string_view name,
                                    std::string_view category, char phase,
                                    std::uint64_t ts_us) {
  *os_ << "{\"name\": \"" << json_escape(name) << "\", \"cat\": \""
       << json_escape(category) << "\", \"ph\": \"" << phase
       << "\", \"ts\": " << ts_us << ", \"pid\": 1, \"tid\": "
       << thread_tid();
}

void TraceEventWriter::write_args_and_close(Args args) {
  *os_ << ", \"args\": {";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) *os_ << ", ";
    first = false;
    *os_ << '"' << json_escape(key) << "\": " << value;
  }
  *os_ << "}}";
}

void TraceEventWriter::complete_event(std::string_view name,
                                      std::string_view category,
                                      std::uint64_t ts_us,
                                      std::uint64_t dur_us, Args args) {
  if (!enabled()) return;
  const util::MutexLock lock(mutex_);
  if (!admit_locked()) return;
  write_prefix(name, category, 'X', ts_us);
  *os_ << ", \"dur\": " << dur_us;
  write_args_and_close(args);
}

void TraceEventWriter::instant_event(std::string_view name,
                                     std::string_view category,
                                     std::uint64_t ts_us, Args args) {
  if (!enabled()) return;
  const util::MutexLock lock(mutex_);
  if (!admit_locked()) return;
  write_prefix(name, category, 'i', ts_us);
  *os_ << ", \"s\": \"t\"";
  write_args_and_close(args);
}

void TraceEventWriter::finish() {
  const util::MutexLock lock(mutex_);
  if (finished_) return;
  // Truncation is recorded in-band so a capped trace is self-describing.
  if (dropped_ > 0) {
    if (!first_) *os_ << ",";
    *os_ << "\n{\"name\": \"trace_truncated\", \"cat\": \"obs\", "
         << "\"ph\": \"i\", \"ts\": " << now_us()
         << ", \"pid\": 1, \"tid\": 0, \"s\": \"g\", \"args\": {\"dropped\": "
         << dropped_ << "}}";
    first_ = false;
  }
  *os_ << "\n]\n";
  os_->flush();
  finished_ = true;
}

}  // namespace ccc::obs
