#pragma once
/// \file histogram.hpp
/// \brief Lock-free fixed-bucket log-linear histograms (HdrHistogram-style)
///        for latency and work distributions.
///
/// Values are non-negative 64-bit integers (nanoseconds, heap pops, bytes —
/// whatever the caller counts). The bucket layout is log-linear: values
/// below 2^kSubBucketBits land in their own exact bucket; above that, each
/// power-of-two range is divided into 2^kSubBucketBits linear sub-buckets,
/// so every recorded value is represented with relative error at most
/// 2^-kSubBucketBits (6.25% with the default 4 bits) using a fixed ~1k
/// buckets over the full 64-bit range — no allocation, ever.
///
/// record() is two relaxed atomic adds — bucket and sum — plus relaxed
/// min/max CAS loops that only fire when the extremum moves, so any number
/// of threads — e.g. all shards of a
/// ShardedCache sharing one SimObserver — can record concurrently without
/// locks. Histograms merge bucket-wise like `Metrics::merge`; merging is
/// exact (integer adds), hence associative and commutative, which the
/// tests assert.
///
/// Reading while writers are active gives a torn-but-sane view (each
/// bucket individually consistent); take a snapshot() for quantiles.

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace ccc::obs {

/// Immutable copy of a histogram's state; quantile queries live here so
/// they operate on one consistent view.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;

  /// Value at quantile `q` in [0,1] — the representative (midpoint) value
  /// of the bucket holding the ceil(q·count)-th smallest sample, clamped
  /// to the observed [min, max]. Relative error bounded by the bucket
  /// width (≤ 2^-kSubBucketBits). Returns 0 on an empty snapshot.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Histogram {
 public:
  /// Linear sub-buckets per power-of-two range (and the exact-value range
  /// below 2^kSubBucketBits).
  static constexpr unsigned kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBucketCount = 1ULL << kSubBucketBits;
  /// Total bucket count covering every uint64 value.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>((64 - kSubBucketBits) * kSubBucketCount)
      + kSubBucketCount;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index of `value` — exact below kSubBucketCount, log-linear
  /// above. Branch + shift + mask; no loops.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;

  /// Inclusive [low, high] value range represented by bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_low(std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_high(std::size_t index) noexcept;

  /// Records one value. Wait-free: relaxed increment + bounded CAS loops.
  void record(std::uint64_t value) noexcept;

  /// Adds `other`'s state into this histogram (cross-shard aggregation).
  /// Exact, associative, commutative. `other` may be concurrently written;
  /// each of its buckets is read once.
  void merge(const Histogram& other) noexcept;

  /// Consistent copy for quantile queries and exposition. Safe to call
  /// concurrently with writers (the copy is torn only across buckets).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Total recorded values, derived by summing the buckets — O(kBucketCount)
  /// loads, so an accessor for reporting, not for hot paths. Keeping no
  /// separate count atomic saves one RMW per record().
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace ccc::obs
