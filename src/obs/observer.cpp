#include "obs/observer.hpp"

#include <algorithm>
#include <numeric>

namespace ccc::obs {

SimObserver::SimObserver(SimObserverOptions options) : options_(options) {
  options_.latency_sample_period =
      std::max<std::uint64_t>(1, options_.latency_sample_period);
}

void SimObserver::on_step(const StepEvent& event, std::uint64_t latency_ns,
                          const PerfCounters& before,
                          const PerfCounters& after) {
  // `requests` delta, not +1: on_step only fires on eviction and sampled
  // steps; the delta covers the skipped hit steps in between.
  steps_.fetch_add(after.requests - before.requests,
                   std::memory_order_relaxed);
  if (latency_ns != 0) step_latency_ns_.record(latency_ns);

  if (event.victim.has_value()) {
    // Index work billed to this eviction: pops + stale skips this step.
    const std::uint64_t work = (after.heap_pops - before.heap_pops) +
                               (after.stale_skips - before.stale_skips);
    eviction_index_work_.record(work);
    if (options_.trace != nullptr)
      options_.trace->complete_event(
          "eviction", "cache", options_.trace->now_us(), latency_ns / 1000,
          {{"victim_page", *event.victim},
           {"victim_tenant", event.victim_owner.value_or(0)},
           {"index_work", work}});
  }

  const std::uint64_t rollovers =
      after.window_rollovers - before.window_rollovers;
  if (rollovers != 0) {
    // Relaxed: independent monotone counter, read only by reporting.
    rollovers_.fetch_add(rollovers, std::memory_order_relaxed);
    if (options_.trace != nullptr)
      options_.trace->instant_event("window_rollover", "cache",
                                    options_.trace->now_us(),
                                    {{"tenant", event.request.tenant}});
  }
  const std::uint64_t rebuilds = after.index_rebuilds - before.index_rebuilds;
  if (rebuilds != 0) {
    // Relaxed: independent monotone counter, read only by reporting.
    rebuilds_.fetch_add(rebuilds, std::memory_order_relaxed);
    if (options_.trace != nullptr)
      options_.trace->complete_event("index_rebuild", "index",
                                     options_.trace->now_us(),
                                     latency_ns / 1000, {});
  }
}

void SimObserver::on_rebalance(std::span<const std::size_t> before,
                               std::span<const std::size_t> after,
                               std::uint64_t duration_ns) {
  // Relaxed: independent monotone counter, read only by reporting.
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace != nullptr)
    options_.trace->complete_event(
        "shard_rebalance", "shard", options_.trace->now_us(),
        duration_ns / 1000,
        {{"shards", after.size()},
         {"moved_pages",
          std::inner_product(
              before.begin(), before.end(), after.begin(), std::uint64_t{0},
              std::plus<>{},
              [](std::size_t a, std::size_t b) {
                return static_cast<std::uint64_t>(a > b ? a - b : b - a);
              }) /
              2}});
}

void SimObserver::merge(const SimObserver& other) noexcept {
  step_latency_ns_.merge(other.step_latency_ns_);
  eviction_index_work_.merge(other.eviction_index_work_);
  // Relaxed load/add pairs: counters are independent accumulators and the
  // source observer is quiescent by the merge contract (observer.hpp).
  steps_.fetch_add(other.steps_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  rollovers_.fetch_add(other.rollovers_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);  // same rule as steps_
  rebuilds_.fetch_add(other.rebuilds_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);  // same rule as steps_
  rebalances_.fetch_add(other.rebalances_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);  // same rule as steps_
}

void SimObserver::fill(MetricsRegistry& registry, const LabelSet& extra)
    const {
  registry.set_histogram(
      "ccc_step_latency_ns",
      "Wall-clock nanoseconds per simulator step (sampled)", extra,
      step_latency_ns_.snapshot());
  registry.set_histogram(
      "ccc_eviction_index_work",
      "Heap pops + stale skips charged to one eviction", extra,
      eviction_index_work_.snapshot());
  registry.set_counter("ccc_obs_steps_total", "Steps observed", extra,
                       static_cast<double>(steps_observed()));
  registry.set_counter("ccc_obs_evictions_total", "Evictions observed",
                       extra, static_cast<double>(evictions_observed()));
  registry.set_counter("ccc_obs_window_rollovers_total",
                       "Window rollovers observed", extra,
                       static_cast<double>(rollovers_observed()));
  registry.set_counter("ccc_obs_index_rebuilds_total",
                       "Index rebuilds observed", extra,
                       static_cast<double>(rebuilds_observed()));
  registry.set_counter("ccc_obs_rebalances_total",
                       "Shard rebalances observed", extra,
                       static_cast<double>(rebalances_observed()));
}

}  // namespace ccc::obs
