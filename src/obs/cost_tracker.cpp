#include "obs/cost_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/theory.hpp"
#include "util/check.hpp"

namespace ccc::obs {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Scaled dual objective of one shard account at scaling u:
///   g(u) = u·Σ_i Y_i − Σ_i f_i*(u·f_i'(m_i)).
/// Every u > 0 yields a feasible scaled dual (y/γ, z/γ with γ = 1/u), so
/// every evaluation is a valid lower bound on that shard's OPT — the
/// search below only has to find a *good* u, never a "correct" one.
/// Returns −∞ when a conjugate is unbounded at this scaling (linear
/// tenants cap u at slope/f'(m)). `shares`, when non-null, receives the
/// per-tenant decomposition Y_i·u − f_i*(u·λ_i).
double scaled_dual(const DualAccount& account,
                   const std::vector<CostFunctionPtr>& costs, double u,
                   std::vector<double>* shares) {
  double total = 0.0;
  if (shares != nullptr) shares->assign(account.mass.size(), 0.0);
  for (std::size_t t = 0; t < account.mass.size(); ++t) {
    const CostFunction& f = *costs[t];
    const double lambda =
        f.derivative(static_cast<double>(account.evictions[t]));
    const double conj = f.conjugate(u * lambda);
    if (!std::isfinite(conj)) return kNegInf;
    const double share = account.mass[t] * u - conj;
    if (shares != nullptr) (*shares)[t] = share;
    total += share;
  }
  return total;
}

/// Maximizes the concave g(u) over u > 0: bracket by doubling from u = 1,
/// then ternary-search. Returns the best (u, g(u)) seen — by the argument
/// above, any evaluated point would do; the maximizer is just tightest.
std::pair<double, double> best_scaling(
    const DualAccount& account, const std::vector<CostFunctionPtr>& costs) {
  const auto g = [&](double u) {
    return scaled_dual(account, costs, u, nullptr);
  };
  double lo = 1e-9;
  double hi = 1.0;
  double best_u = 1.0;
  double best_g = g(1.0);
  for (int i = 0; i < 60; ++i) {
    const double v = g(hi * 2.0);
    if (!(v > best_g)) break;  // past the peak (or infeasible): bracketed
    best_g = v;
    hi *= 2.0;
    best_u = hi;
  }
  hi *= 2.0;
  for (int i = 0; i < 120; ++i) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    const double g1 = g(m1);
    const double g2 = g(m2);
    if (g1 > best_g) {
      best_g = g1;
      best_u = m1;
    }
    if (g2 > best_g) {
      best_g = g2;
      best_u = m2;
    }
    if (g1 < g2) {
      lo = m1;
    } else {
      hi = m2;
    }
  }
  return {best_u, best_g};
}

}  // namespace

CostTracker::CostTracker(std::uint32_t num_tenants)
    : misses_(num_tenants, 0) {}

CostTracker CostTracker::collect(const ShardedCache& cache) {
  CostTracker tracker(cache.num_tenants());
  tracker.add_misses(cache.aggregated_metrics().miss_vector());
  std::vector<ShardDualAccount> accounts = cache.dual_accounts();
  for (std::size_t s = 0; s < accounts.size(); ++s) {
    DualAccount account;
    account.id = s;
    account.valid = accounts[s].valid;
    account.mass = std::move(accounts[s].mass);
    account.evictions = std::move(accounts[s].evictions);
    // Policies without a dual certificate report empty vectors; size them
    // so snapshot() can stay branch-free over tenants.
    account.mass.resize(cache.num_tenants(), 0.0);
    account.evictions.resize(cache.num_tenants(), 0);
    tracker.add_account(std::move(account));
  }
  return tracker;
}

void CostTracker::add_misses(const std::vector<std::uint64_t>& misses) {
  if (misses.size() != misses_.size())
    throw std::invalid_argument(
        "CostTracker::add_misses: tenant count mismatch");
  for (std::size_t t = 0; t < misses_.size(); ++t) misses_[t] += misses[t];
}

void CostTracker::add_account(DualAccount account) {
  if (account.mass.size() != misses_.size() ||
      account.evictions.size() != misses_.size())
    throw std::invalid_argument(
        "CostTracker::add_account: tenant count mismatch");
  const auto pos = std::lower_bound(
      accounts_.begin(), accounts_.end(), account.id,
      [](const DualAccount& a, std::uint64_t id) { return a.id < id; });
  if (pos != accounts_.end() && pos->id == account.id)
    throw std::invalid_argument(
        "CostTracker::add_account: duplicate account id " +
        std::to_string(account.id) +
        " — accounts of the same shard must never be summed");
  accounts_.insert(pos, std::move(account));
}

void CostTracker::merge(const CostTracker& other) {
  add_misses(other.misses_);
  for (const DualAccount& account : other.accounts_) add_account(account);
}

CostSnapshot CostTracker::snapshot(const std::vector<CostFunctionPtr>& costs,
                                   std::size_t capacity) const {
  CCC_REQUIRE(costs.size() >= misses_.size(),
              "CostTracker::snapshot needs one cost function per tenant");
  CostSnapshot snap;
  const std::size_t n = misses_.size();
  snap.tenant_cost.resize(n, 0.0);
  snap.tenant_lower_bound.resize(n, 0.0);
  snap.tenant_ratio.resize(n, 0.0);

  double total_misses = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    snap.tenant_cost[t] =
        costs[t]->value(static_cast<double>(misses_[t]));
    snap.cost_total += snap.tenant_cost[t];
    total_misses += static_cast<double>(misses_[t]);
  }

  snap.certified = !accounts_.empty();
  for (const DualAccount& account : accounts_)
    snap.certified = snap.certified && account.valid;

  if (snap.certified) {
    double lb = 0.0;
    std::vector<double> shares;
    for (const DualAccount& account : accounts_) {
      const auto [u, g] = best_scaling(account, costs);
      // A non-positive account bound is replaced by the trivial OPT_s ≥ 0
      // (and contributes no per-tenant shares, keeping Σ shares == LB).
      if (g <= 0.0) continue;
      lb += g;
      scaled_dual(account, costs, u, &shares);
      for (std::size_t t = 0; t < n; ++t)
        snap.tenant_lower_bound[t] += shares[t];
    }
    snap.dual_lower_bound = std::max(0.0, lb);
    if (snap.dual_lower_bound > 0.0) {
      snap.competitive_ratio = snap.cost_total / snap.dual_lower_bound;
      for (std::size_t t = 0; t < n; ++t)
        if (snap.tenant_lower_bound[t] > 0.0)
          snap.tenant_ratio[t] =
              snap.tenant_cost[t] / snap.tenant_lower_bound[t];
    }
  }

  // Theorem 1.1 predictions for the dashboards: the argument-domain
  // blow-up α·k, and its value-domain ratio cap max_i f_i(αk·x)/f_i(x)
  // evaluated at each tenant's own scale — exact (and x-independent) for
  // monomials, where it equals Corollary 1.2's β^β·k^β.
  const double x_max = std::max(1.0, total_misses);
  const double alpha = curvature_alpha(costs, x_max);
  snap.theorem_alpha_k = alpha * static_cast<double>(capacity);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = std::max(1.0, static_cast<double>(misses_[t]));
    const double denom = costs[t]->value(x);
    if (denom <= 0.0) continue;  // flat-at-x SLA region: ratio undefined
    snap.theorem_ratio_bound = std::max(
        snap.theorem_ratio_bound,
        costs[t]->value(snap.theorem_alpha_k * x) / denom);
  }
  return snap;
}

}  // namespace ccc::obs
