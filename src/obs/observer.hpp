#pragma once
/// \file observer.hpp
/// \brief The standard `StepObserver` implementation: lock-free latency /
///        index-work histograms plus optional Chrome trace spans.
///
/// One `SimObserver` may be attached to a single `SimulatorSession`
/// (`SimOptions.step_observer`) or shared by every shard of a
/// `ShardedCache` (`ShardedCacheOptions.step_observer`): all recording
/// paths are thread-safe (relaxed atomics into `Histogram` buckets and
/// counters; the trace writer serializes on its own mutex and is opt-in).
/// Pairs of observers merge like `Metrics::merge`, so per-thread or
/// per-shard observers can also be aggregated after the fact.
///
/// Recorded signals:
///  - `step_latency_ns`: wall-clock of one simulator step, sampled every
///    `latency_sample_period` steps (1 = every step; raise it to push the
///    observation overhead down — unsampled non-eviction steps then cost
///    the session only a countdown decrement).
///  - `eviction_index_work`: heap pops + stale skips charged to each
///    eviction — the per-eviction price of the lazy index. Exact per
///    eviction regardless of the sample period (every eviction step is
///    observed).
///  - counters for steps, evictions, window rollovers, index rebuilds and
///    shard rebalances, derived from `PerfCounters` deltas. Totals are
///    exact up to the last observed step; with a sample period > 1, up to
///    period-1 trailing hit steps of each session may not be counted yet.
///  - optional spans (evictions, rollovers, rebuilds, rebalances) to a
///    `TraceEventWriter`, typically `TraceEventWriter::from_env()`
///    (`CCC_OBS_TRACE=trace.json`).
///
/// Attachment requires a `CCC_OBS=ON` build; see `StepObserver`.

#include <atomic>
#include <cstdint>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace_event.hpp"
#include "sim/simulator.hpp"

namespace ccc::obs {

struct SimObserverOptions {
  /// Time (two steady_clock reads) every Nth step; counters and the
  /// eviction histogram are recorded on every step regardless.
  std::uint64_t latency_sample_period = 1;
  /// Span sink; nullptr = no span export. Not owned.
  TraceEventWriter* trace = nullptr;
};

class SimObserver final : public StepObserver {
 public:
  explicit SimObserver(SimObserverOptions options = {});

  void on_step(const StepEvent& event, std::uint64_t latency_ns,
               const PerfCounters& before,
               const PerfCounters& after) override;
  void on_rebalance(std::span<const std::size_t> before,
                    std::span<const std::size_t> after,
                    std::uint64_t duration_ns) override;
  [[nodiscard]] std::uint64_t latency_sample_period()
      const noexcept override {
    return options_.latency_sample_period;
  }

  [[nodiscard]] const Histogram& step_latency_ns() const noexcept {
    return step_latency_ns_;
  }
  [[nodiscard]] const Histogram& eviction_index_work() const noexcept {
    return eviction_index_work_;
  }

  // Relaxed accessor loads throughout: each counter is an independent
  // monotone accumulator, so a reporting read needs no ordering.
  [[nodiscard]] std::uint64_t steps_observed() const noexcept {
    return steps_.load(std::memory_order_relaxed);
  }
  /// Every eviction records exactly one value into the index-work
  /// histogram, so its count doubles as the eviction count — one fewer
  /// atomic on the eviction path. O(buckets), reporting-only.
  [[nodiscard]] std::uint64_t evictions_observed() const noexcept {
    return eviction_index_work_.count();
  }
  [[nodiscard]] std::uint64_t rollovers_observed() const noexcept {
    return rollovers_.load(std::memory_order_relaxed);  // reporting read
  }
  [[nodiscard]] std::uint64_t rebuilds_observed() const noexcept {
    return rebuilds_.load(std::memory_order_relaxed);  // reporting read
  }
  [[nodiscard]] std::uint64_t rebalances_observed() const noexcept {
    return rebalances_.load(std::memory_order_relaxed);  // reporting read
  }

  /// Adds another observer's histograms and counters into this one
  /// (per-shard / per-thread aggregation).
  void merge(const SimObserver& other) noexcept;

  /// Dumps both histograms and all counters into `registry`, labeled with
  /// `extra`.
  void fill(MetricsRegistry& registry, const LabelSet& extra = {}) const;

 private:
  SimObserverOptions options_;
  Histogram step_latency_ns_;
  Histogram eviction_index_work_;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> rollovers_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
  std::atomic<std::uint64_t> rebalances_{0};
};

}  // namespace ccc::obs
