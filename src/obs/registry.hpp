#pragma once
/// \file registry.hpp
/// \brief Named counter/gauge/histogram registry with Prometheus
///        text-exposition and JSON writers.
///
/// The registry is a *snapshot* container, not a live instrumentation
/// surface: the hot path records into lock-free `Histogram`s and plain
/// counters owned by `SimObserver`; at exposition time a snapshot of
/// everything — per-tenant hits/misses/cost, per-shard capacity/residency,
/// all `PerfCounters`, the histograms — is dumped into a registry and
/// serialized. That keeps string handling and maps entirely off the
/// request path.
///
/// Families are emitted in registration order. Within a family, samples
/// keep insertion order too, so output is deterministic and diffable.
///
/// Thread-safety contract: externally synchronized. A registry is built
/// and serialized by one thread at a time (snapshot-at-exposition by
/// design, see above), so it carries no mutex and no CCC_GUARDED_BY
/// annotations — adding a lock here would suggest the hot path may touch
/// it concurrently, which is exactly what the design rules out
/// (DESIGN.md §11).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/cost_tracker.hpp"
#include "obs/histogram.hpp"
#include "sim/metrics.hpp"

namespace ccc {
class ShardedCache;
}  // namespace ccc

namespace ccc::obs {

/// Ordered label set, e.g. {{"tenant","3"},{"policy","convex"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

struct ScalarSample {
  LabelSet labels;
  double value = 0.0;
};

struct HistogramSample {
  LabelSet labels;
  HistogramSnapshot snapshot;
};

/// One named metric family: all samples of one name share a kind and help.
struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kGauge;
  std::vector<ScalarSample> scalars;       ///< counter/gauge samples
  std::vector<HistogramSample> histograms; ///< histogram samples
};

class MetricsRegistry {
 public:
  /// Adds a sample to the named family, creating it on first use. A name
  /// must keep one kind for its lifetime (throws std::invalid_argument on
  /// a kind clash — Prometheus rejects mixed families).
  void set_counter(const std::string& name, const std::string& help,
                   LabelSet labels, double value);
  void set_gauge(const std::string& name, const std::string& help,
                 LabelSet labels, double value);
  void set_histogram(const std::string& name, const std::string& help,
                     LabelSet labels, HistogramSnapshot snapshot);

  [[nodiscard]] const std::vector<MetricFamily>& families() const noexcept {
    return families_;
  }
  /// The family registered under `name`, or nullptr.
  [[nodiscard]] const MetricFamily* find(const std::string& name) const;

  /// Prometheus text exposition format 0.0.4: `# HELP` / `# TYPE` headers,
  /// one line per sample; histograms expand to cumulative `_bucket{le=}`
  /// lines plus `_sum` and `_count`. Only non-empty buckets up to the
  /// highest occupied one are listed (plus the mandatory `+Inf`).
  void write_prometheus(std::ostream& os) const;

  /// JSON document: {"metrics":[{name, kind, help, samples:[...]}]}.
  /// Histogram samples carry count/sum/min/max/mean, p50/p90/p99/p999 and
  /// the non-empty buckets as [upper_bound, count] pairs.
  void write_json(std::ostream& os) const;

 private:
  MetricFamily& family(const std::string& name, const std::string& help,
                       MetricKind kind);

  std::vector<MetricFamily> families_;
};

/// Per-tenant books: hits/misses/evictions counters and — when `costs` is
/// non-null — each tenant's share f_i(misses_i) of the paper objective,
/// all labeled {tenant=}. `extra` labels are appended to every sample.
void snapshot_metrics(MetricsRegistry& registry, const Metrics& metrics,
                      const std::vector<CostFunctionPtr>* costs,
                      const LabelSet& extra = {});

/// Every PerfCounters field as a counter (wall_seconds as a gauge in
/// seconds), labeled with `extra`.
void snapshot_perf(MetricsRegistry& registry, const PerfCounters& perf,
                   const LabelSet& extra = {});

/// Per-shard capacity/residency/hits/misses/evictions gauges {shard=},
/// the aggregated per-tenant books, the aggregated PerfCounters and —
/// when the cache carries cost functions — the live competitive-ratio
/// gauges of snapshot_costs, all for a sharded frontend.
void snapshot_sharded(MetricsRegistry& registry, const ShardedCache& cache,
                      const LabelSet& extra = {});

/// Live competitive-ratio telemetry from an evaluated CostSnapshot:
/// per-tenant `ccc_cost_total` / `ccc_dual_lower_bound` /
/// `ccc_competitive_ratio` gauges {tenant=}, their unlabeled totals, and
/// the Theorem 1.1 prediction gauges `ccc_theorem11_alpha_k` /
/// `ccc_theorem11_ratio_bound`. Ratio gauges read 0 while no positive
/// dual certificate exists — dashboards and the nightly bound check skip
/// zeros instead of dividing by nothing.
void snapshot_costs(MetricsRegistry& registry, const CostSnapshot& snap,
                    const LabelSet& extra = {});

}  // namespace ccc::obs
