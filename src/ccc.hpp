#pragma once
/// \file ccc.hpp
/// \brief Umbrella header for the convex-cost caching library.
///
/// Reproduction of "Online Caching with Convex Costs" (Menache & Singh,
/// SPAA 2015). Pull in everything a typical application needs:
///
///   #include "ccc.hpp"
///   using namespace ccc;
///
///   auto costs = uniform_costs(MonomialCost(2.0), /*tenants=*/2);
///   Rng rng(42);
///   Trace trace = random_uniform_trace(2, 64, 100'000, rng);
///   ConvexCachingPolicy policy;                  // the paper's algorithm
///   SimResult result = run_trace(trace, /*k=*/32, policy, &costs);
///   double cost = total_cost(result.metrics.miss_vector(), costs);
///
/// Individual headers remain includable piecemeal; this file is purely a
/// convenience for applications and examples.

// Cost model (per-tenant convex miss costs, §1.2).
#include "cost/combinators.hpp"
#include "cost/cost_function.hpp"
#include "cost/exponential.hpp"
#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "cost/polynomial.hpp"
#include "cost/spec.hpp"

// Workloads.
#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/transforms.hpp"
#include "trace/types.hpp"

// Simulation engine.
#include "sim/cache_state.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/simulator.hpp"

// The paper's contribution (Figs. 1–3) and its theory.
#include "core/convex_caching.hpp"
#include "core/convex_program.hpp"
#include "core/fractional.hpp"
#include "core/invariants.hpp"
#include "core/naive_convex_caching.hpp"
#include "core/primal_dual.hpp"
#include "core/theory.hpp"

// Baselines.
#include "policies/arc.hpp"
#include "policies/belady.hpp"
#include "policies/clock.hpp"
#include "policies/fifo.hpp"
#include "policies/landlord.hpp"
#include "policies/lfu.hpp"
#include "policies/lru.hpp"
#include "policies/lru_k.hpp"
#include "policies/marking.hpp"
#include "policies/random_policy.hpp"
#include "policies/randomized_marking.hpp"
#include "policies/static_partition.hpp"
#include "policies/two_q.hpp"

// Offline optima and bounds.
#include "offline/batch_balance.hpp"
#include "offline/exact_opt.hpp"
#include "offline/opt_bounds.hpp"
#include "offline/weighted_belady.hpp"

// Analysis, substrates and experiment helpers.
#include "analysis/mrc.hpp"
#include "bufferpool/buffer_pool.hpp"
#include "exp/adversary.hpp"
#include "exp/policy_factory.hpp"
#include "exp/ratio.hpp"
#include "multipool/multi_pool.hpp"
