#pragma once
/// \file buffer_pool.hpp
/// \brief SQLVM-style multi-tenant buffer-pool facade (substitute for the
///        proprietary system of [14]/[15], see DESIGN.md §2).
///
/// A BufferPool binds together: the shared page cache of size k, a
/// replacement policy, per-tenant SLA cost functions, and windowed refund
/// accounting. It exposes exactly what a DaaS operator would read off a
/// dashboard: per-tenant hit rates, miss counts per window, and the total
/// refund owed under each tenant's SLA.

#include <memory>
#include <string>
#include <vector>

#include "bufferpool/window_accounting.hpp"
#include "sim/simulator.hpp"

namespace ccc {

/// One tenant's contract with the provider.
struct TenantContract {
  std::string name;
  CostFunctionPtr sla;  ///< refund as a function of misses per window
};

struct BufferPoolReport {
  std::vector<std::string> tenant_names;
  std::vector<std::uint64_t> hits;
  std::vector<std::uint64_t> misses;
  std::vector<double> refunds;  ///< per-tenant windowed SLA cost
  double total_refund = 0.0;
  std::string policy_name;
};

class BufferPool {
 public:
  /// `window_length` = 0 selects the paper's whole-run accounting.
  BufferPool(std::size_t capacity, std::vector<TenantContract> contracts,
             std::unique_ptr<ReplacementPolicy> policy,
             std::size_t window_length, std::uint64_t seed = 1);

  /// Serves one page access from `tenant`.
  void access(TenantId tenant, PageId page);

  /// Replays an entire trace (tenant count must match the contracts).
  void replay(const Trace& trace);

  /// Closes accounting and produces the operator report. Call once at the
  /// end of the run; further access() calls are rejected.
  [[nodiscard]] BufferPoolReport report();

  [[nodiscard]] const Metrics& metrics() const noexcept {
    return session_->metrics();
  }
  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return static_cast<std::uint32_t>(contracts_.size());
  }

 private:
  std::vector<TenantContract> contracts_;
  std::vector<CostFunctionPtr> costs_;  ///< cloned from contracts for policies
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<SimulatorSession> session_;
  WindowAccounting accounting_;
  TimeStep clock_ = 0;
};

}  // namespace ccc
