#pragma once
/// \file window_accounting.hpp
/// \brief Time-windowed SLA cost accounting, after the SQLVM companion
///        paper [14]: the provider's refund to tenant i is f_i applied to
///        the tenant's miss count *per accounting window* (not over the
///        whole run). The paper's model (§1.2) is the single-window special
///        case; both modes are supported so E4 can report provider refunds
///        the way a DaaS operator bills them.

#include <cstdint>
#include <vector>

#include "cost/cost_function.hpp"
#include "trace/types.hpp"

namespace ccc {

class WindowAccounting {
 public:
  /// `window_length` in requests; 0 means a single run-length window
  /// (the paper's total-miss model).
  WindowAccounting(std::uint32_t num_tenants, std::size_t window_length);

  /// Records a miss of `tenant` at step `time` (global request index).
  void record_miss(TenantId tenant, TimeStep time);

  /// Closes the current window (call once after the run).
  void finish();

  /// Σ over closed windows of f_i(misses in window), for one tenant.
  [[nodiscard]] double tenant_cost(TenantId tenant,
                                   const CostFunction& f) const;

  /// Σ over tenants of tenant_cost.
  [[nodiscard]] double total_cost(
      const std::vector<CostFunctionPtr>& costs) const;

  /// Per-window miss counts for a tenant (diagnostics / plotting).
  [[nodiscard]] const std::vector<std::uint64_t>& windows(
      TenantId tenant) const;

  [[nodiscard]] std::size_t window_length() const noexcept {
    return window_length_;
  }

 private:
  void roll_to(TimeStep time);

  std::size_t window_length_;
  std::size_t current_window_ = 0;
  bool finished_ = false;
  std::vector<std::uint64_t> current_counts_;          ///< per tenant
  std::vector<std::vector<std::uint64_t>> closed_;     ///< [tenant][window]
};

}  // namespace ccc
