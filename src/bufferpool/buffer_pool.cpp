#include "bufferpool/buffer_pool.hpp"

#include "util/check.hpp"

namespace ccc {

BufferPool::BufferPool(std::size_t capacity,
                       std::vector<TenantContract> contracts,
                       std::unique_ptr<ReplacementPolicy> policy,
                       std::size_t window_length, std::uint64_t seed)
    : contracts_(std::move(contracts)),
      policy_(std::move(policy)),
      accounting_(static_cast<std::uint32_t>(contracts_.size()),
                  window_length) {
  CCC_REQUIRE(!contracts_.empty(), "a buffer pool needs at least one tenant");
  CCC_REQUIRE(policy_ != nullptr, "a buffer pool needs a policy");
  costs_.reserve(contracts_.size());
  for (const TenantContract& contract : contracts_) {
    CCC_REQUIRE(contract.sla != nullptr,
                "every tenant contract needs an SLA cost function");
    costs_.push_back(contract.sla->clone());
  }
  SimOptions options;
  options.seed = seed;
  session_ = std::make_unique<SimulatorSession>(
      capacity, num_tenants(), *policy_, &costs_, options);
}

void BufferPool::access(TenantId tenant, PageId page) {
  CCC_REQUIRE(tenant < num_tenants(), "tenant id out of range");
  const StepEvent event = session_->step(Request{tenant, page});
  if (!event.hit) accounting_.record_miss(tenant, clock_);
  ++clock_;
}

void BufferPool::replay(const Trace& trace) {
  CCC_REQUIRE(trace.num_tenants() <= num_tenants(),
              "trace has more tenants than contracts");
  policy_->preview(trace);  // offline policies (Belady) need the future
  for (const Request& request : trace) access(request.tenant, request.page);
}

BufferPoolReport BufferPool::report() {
  accounting_.finish();
  BufferPoolReport out;
  out.policy_name = policy_->name();
  const Metrics& m = session_->metrics();
  for (TenantId i = 0; i < num_tenants(); ++i) {
    out.tenant_names.push_back(contracts_[i].name);
    out.hits.push_back(m.hits(i));
    out.misses.push_back(m.misses(i));
    const double refund = accounting_.tenant_cost(i, *contracts_[i].sla);
    out.refunds.push_back(refund);
    out.total_refund += refund;
  }
  return out;
}

}  // namespace ccc
