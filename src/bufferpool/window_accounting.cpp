#include "bufferpool/window_accounting.hpp"

#include "util/check.hpp"

namespace ccc {

WindowAccounting::WindowAccounting(std::uint32_t num_tenants,
                                   std::size_t window_length)
    : window_length_(window_length),
      current_counts_(num_tenants, 0),
      closed_(num_tenants) {
  CCC_REQUIRE(num_tenants > 0, "need at least one tenant");
}

void WindowAccounting::roll_to(TimeStep time) {
  if (window_length_ == 0) return;  // single-window mode
  const std::size_t window = time / window_length_;
  while (current_window_ < window) {
    for (std::uint32_t i = 0; i < current_counts_.size(); ++i) {
      closed_[i].push_back(current_counts_[i]);
      current_counts_[i] = 0;
    }
    ++current_window_;
  }
}

void WindowAccounting::record_miss(TenantId tenant, TimeStep time) {
  CCC_REQUIRE(tenant < current_counts_.size(), "tenant id out of range");
  CCC_REQUIRE(!finished_, "accounting already finished");
  roll_to(time);
  ++current_counts_[tenant];
}

void WindowAccounting::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::uint32_t i = 0; i < current_counts_.size(); ++i) {
    closed_[i].push_back(current_counts_[i]);
    current_counts_[i] = 0;
  }
}

double WindowAccounting::tenant_cost(TenantId tenant,
                                     const CostFunction& f) const {
  CCC_REQUIRE(tenant < closed_.size(), "tenant id out of range");
  CCC_REQUIRE(finished_, "call finish() before reading costs");
  double total = 0.0;
  for (const std::uint64_t misses : closed_[tenant])
    total += f.value(static_cast<double>(misses));
  return total;
}

double WindowAccounting::total_cost(
    const std::vector<CostFunctionPtr>& costs) const {
  CCC_REQUIRE(costs.size() >= closed_.size(),
              "need one cost function per tenant");
  double total = 0.0;
  for (TenantId i = 0; i < closed_.size(); ++i)
    total += tenant_cost(i, *costs[i]);
  return total;
}

const std::vector<std::uint64_t>& WindowAccounting::windows(
    TenantId tenant) const {
  CCC_REQUIRE(tenant < closed_.size(), "tenant id out of range");
  return closed_[tenant];
}

}  // namespace ccc
