#pragma once
/// \file batch_balance.hpp
/// \brief The offline batch-balancing scheme from the Theorem 1.4 proof
///        (§4): split the sequence into batches of length ⌈(n−1)/2⌉; on a
///        miss, evict a page not requested again until after the current
///        batch, choosing among those candidates the page with the fewest
///        evictions so far. On the §4 adversarial instance this yields at
///        most one eviction per batch, spread evenly across pages, so its
///        cost is ≈ n·(4T/n²)^β — the denominator of the Ω(k)^β lower
///        bound. Implemented lazily (evictions happen at the triggering
///        miss) which only improves on the proof's proactive version.

#include <unordered_map>
#include <vector>

#include "sim/policy.hpp"

namespace ccc {

class BatchBalancePolicy final : public ReplacementPolicy {
 public:
  /// `batch_length` = ⌈(n−1)/2⌉ for the §4 instance; any positive length
  /// is accepted for experimentation.
  explicit BatchBalancePolicy(std::size_t batch_length);

  void reset(const PolicyContext& ctx) override;
  void preview(const Trace& trace) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t batch_length_;
  std::unordered_map<PageId, std::vector<TimeStep>> occurrences_;
  std::unordered_map<PageId, std::size_t> cursor_;
  std::unordered_map<PageId, std::uint64_t> eviction_count_;
  std::vector<PageId> resident_;
  bool previewed_ = false;
};

}  // namespace ccc
