#include "offline/batch_balance.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace ccc {

BatchBalancePolicy::BatchBalancePolicy(std::size_t batch_length)
    : batch_length_(batch_length) {
  CCC_REQUIRE(batch_length >= 1, "batch length must be positive");
}

void BatchBalancePolicy::reset(const PolicyContext& /*ctx*/) {
  occurrences_.clear();
  cursor_.clear();
  eviction_count_.clear();
  resident_.clear();
  previewed_ = false;
}

void BatchBalancePolicy::preview(const Trace& trace) {
  for (TimeStep t = 0; t < trace.size(); ++t)
    occurrences_[trace[t].page].push_back(t);
  previewed_ = true;
}

PageId BatchBalancePolicy::choose_victim(const Request& /*request*/,
                                         TimeStep time) {
  CCC_CHECK(previewed_, "BatchBalance requires preview()");
  CCC_CHECK(!resident_.empty(),
            "BatchBalance asked for a victim with an empty cache");
  // End of the current batch (exclusive).
  const TimeStep batch_end = ((time / batch_length_) + 1) * batch_length_;

  // Candidates: resident pages with no request before batch_end. Among
  // them pick the fewest-evicted (the balancing rule of §4). If no page
  // qualifies (never happens on the §4 instance) fall back to
  // furthest-in-future.
  PageId best_candidate = 0;
  std::uint64_t best_count = std::numeric_limits<std::uint64_t>::max();
  bool have_candidate = false;
  PageId fallback_page = resident_.front();
  TimeStep fallback_next = 0;
  for (const PageId page : resident_) {
    const auto& occs = occurrences_.at(page);
    std::size_t& cur = cursor_[page];
    while (cur < occs.size() && occs[cur] <= time) ++cur;
    const TimeStep next = cur < occs.size()
                              ? occs[cur]
                              : std::numeric_limits<TimeStep>::max();
    if (next >= fallback_next) {
      fallback_next = next;
      fallback_page = page;
    }
    if (next >= batch_end) {
      const std::uint64_t count = eviction_count_[page];
      if (!have_candidate || count < best_count ||
          (count == best_count && page < best_candidate)) {
        have_candidate = true;
        best_candidate = page;
        best_count = count;
      }
    }
  }
  return have_candidate ? best_candidate : fallback_page;
}

void BatchBalancePolicy::on_evict(PageId victim, TenantId /*owner*/,
                                  TimeStep /*time*/) {
  const auto it = std::find(resident_.begin(), resident_.end(), victim);
  CCC_CHECK(it != resident_.end(), "BatchBalance evicting an untracked page");
  resident_.erase(it);
  ++eviction_count_[victim];
}

void BatchBalancePolicy::on_insert(const Request& request,
                                   TimeStep /*time*/) {
  resident_.push_back(request.page);
}

std::string BatchBalancePolicy::name() const {
  return "BatchBalance(" + std::to_string(batch_length_) + ")";
}

}  // namespace ccc
