#pragma once
/// \file weighted_belady.hpp
/// \brief Offline cost-aware heuristic: Belady generalized with per-tenant
///        weights, iterated to a fixed point.
///
/// A single weighted-Belady pass evicts the resident page minimizing
/// w_{i(p)} / d(p), where d(p) is the forward distance to p's next request
/// (pages never used again go first, cheapest tenant first). Iteration:
/// start from unit weights (plain Belady), then repeatedly set
/// w_i = f_i'(b_i + 1) from the previous pass's miss vector and re-run,
/// keeping the best schedule seen. This provides a strong *upper bound* on
/// OPT's cost on instances too large for the exact DP — always labelled as
/// an upper bound in reports (see opt_bounds.hpp).

#include <vector>

#include "cost/cost_function.hpp"
#include "offline/exact_opt.hpp"
#include "sim/policy.hpp"

namespace ccc {

/// One weighted-Belady pass as a policy (preview required).
class WeightedBeladyPolicy final : public ReplacementPolicy {
 public:
  /// `weights[i]` scales tenant i's eviction reluctance; all positive.
  explicit WeightedBeladyPolicy(std::vector<double> weights);

  void reset(const PolicyContext& ctx) override;
  void preview(const Trace& trace) override;
  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep time) override;
  void on_evict(PageId victim, TenantId owner, TimeStep time) override;
  void on_insert(const Request& request, TimeStep time) override;
  [[nodiscard]] std::string name() const override {
    return "WeightedBelady";
  }

 private:
  std::vector<double> weights_;
  std::unordered_map<PageId, std::vector<TimeStep>> occurrences_;
  std::unordered_map<PageId, std::size_t> cursor_;
  std::vector<PageId> resident_;
  std::vector<TenantId> resident_tenant_;
  bool previewed_ = false;
};

/// Iterated reweighting (see file comment). Returns the best (lowest-cost)
/// schedule's cost and miss vector. `max_iterations` bounds the loop.
[[nodiscard]] OptResult iterated_weighted_belady(
    const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs, std::size_t max_iterations = 8);

}  // namespace ccc
