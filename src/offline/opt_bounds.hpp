#pragma once
/// \file opt_bounds.hpp
/// \brief Certified bracketing of the offline optimum's cost.
///
/// Competitive-ratio experiments need OPT. On small instances the exact DP
/// delivers it; on large ones we report a bracket:
///   * upper bound — best schedule found (Belady, iterated weighted
///     Belady): a real algorithm's cost, so OPT ≤ upper;
///   * lower bound — Belady minimizes the *total* miss count M over all
///     schedules; the cheapest way any schedule could distribute ≥ M misses
///     across tenants is min Σ_i f_i(b_i) s.t. Σ b_i = M (convex
///     water-filling, computed greedily on integer marginals), so
///     OPT ≥ lower.
/// Ratios against `upper` underestimate the true competitive ratio; ratios
/// against `lower` overestimate it. Reports always print which is used.

#include <vector>

#include "cost/cost_function.hpp"
#include "offline/exact_opt.hpp"
#include "trace/trace.hpp"

namespace ccc {

struct OptEstimate {
  bool exact = false;     ///< true ⇒ upper == lower == OPT
  double upper_cost = 0.0;
  double lower_cost = 0.0;
  /// Miss vector of the best known schedule (the exact one when exact).
  std::vector<std::uint64_t> upper_misses;
};

/// Cheapest distribution of exactly `total_misses` misses across tenants:
/// min Σ f_i(b_i) s.t. Σ b_i = total, by greedy integer water-filling
/// (optimal for convex f_i).
[[nodiscard]] OptResult cheapest_distribution(
    std::uint64_t total_misses, const std::vector<CostFunctionPtr>& costs,
    std::uint32_t num_tenants);

/// Brackets OPT. Attempts the exact DP when the instance looks small
/// (distinct pages ≤ `exact_page_limit` and the DP stays within its state
/// budget); otherwise falls back to the heuristic bracket.
[[nodiscard]] OptEstimate estimate_opt(const Trace& trace,
                                       std::size_t capacity,
                                       const std::vector<CostFunctionPtr>& costs,
                                       std::size_t exact_page_limit = 10);

}  // namespace ccc
