#pragma once
/// \file exact_opt.hpp
/// \brief The optimal offline algorithm of Theorems 1.1/1.3, computed
///        exactly (for instances small enough to enumerate).
///
/// OPT minimizes Σ_i f_i(b_i) knowing the whole sequence. Because the
/// objective is a non-linear function of the per-tenant miss vector, plain
/// Belady is not optimal; we run a layered dynamic program over
/// (cache contents, per-tenant miss vector) states, pruning miss vectors
/// that are Pareto-dominated (f_i increasing ⇒ dominated vectors can never
/// win). Exponential in general — guarded by a state budget — but exact,
/// which is what the competitive-ratio experiments need (E1/E2).
///
/// Misses are fetch-accounted (a_i in Theorem 1.1): a miss of tenant i's
/// page charges tenant i, matching the theorem statement.

#include <cstdint>
#include <vector>

#include "cost/cost_function.hpp"
#include "trace/trace.hpp"

namespace ccc {

struct OptResult {
  double cost = 0.0;
  std::vector<std::uint64_t> misses;  ///< b_i(σ) of the optimal solution
};

/// Exact optimum. Throws std::runtime_error if the reachable state count
/// exceeds `state_budget` (instance too large to solve exactly).
[[nodiscard]] OptResult exact_opt(const Trace& trace, std::size_t capacity,
                                  const std::vector<CostFunctionPtr>& costs,
                                  std::size_t state_budget = 2'000'000);

/// Plain recursive enumeration over all victim choices — exponential in the
/// number of misses; only for tiny cross-check instances in tests.
[[nodiscard]] OptResult exact_opt_bruteforce(
    const Trace& trace, std::size_t capacity,
    const std::vector<CostFunctionPtr>& costs);

}  // namespace ccc
