#include "offline/opt_bounds.hpp"

#include <queue>
#include <stdexcept>

#include "offline/weighted_belady.hpp"
#include "policies/belady.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace ccc {

OptResult cheapest_distribution(std::uint64_t total_misses,
                                const std::vector<CostFunctionPtr>& costs,
                                std::uint32_t num_tenants) {
  CCC_REQUIRE(num_tenants > 0, "need at least one tenant");
  CCC_REQUIRE(costs.size() >= num_tenants,
              "need one cost function per tenant");
  OptResult result;
  result.misses.assign(num_tenants, 0);

  // Greedy: hand each successive miss to the tenant with the smallest
  // marginal cost — optimal because convex marginals are non-decreasing.
  using Entry = std::pair<double, std::uint32_t>;  // (marginal, tenant)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::uint32_t i = 0; i < num_tenants; ++i)
    heap.emplace(costs[i]->marginal(0), i);
  for (std::uint64_t step = 0; step < total_misses; ++step) {
    const auto [marginal, tenant] = heap.top();
    heap.pop();
    result.cost += marginal;
    const std::uint64_t m = ++result.misses[tenant];
    heap.emplace(costs[tenant]->marginal(m), tenant);
  }
  return result;
}

OptEstimate estimate_opt(const Trace& trace, std::size_t capacity,
                         const std::vector<CostFunctionPtr>& costs,
                         std::size_t exact_page_limit) {
  OptEstimate estimate;

  if (trace.distinct_pages() <= exact_page_limit) {
    try {
      const OptResult exact = exact_opt(trace, capacity, costs);
      estimate.exact = true;
      estimate.upper_cost = estimate.lower_cost = exact.cost;
      estimate.upper_misses = exact.misses;
      return estimate;
    } catch (const std::runtime_error&) {
      // State budget exceeded — fall through to the heuristic bracket.
    }
  }

  // Upper bound: best of plain Belady and iterated weighted Belady.
  BeladyPolicy belady;
  const SimResult belady_run = run_trace(trace, capacity, belady, &costs);
  const double belady_cost =
      total_cost(belady_run.metrics.miss_vector(), costs);
  const OptResult reweighted =
      iterated_weighted_belady(trace, capacity, costs);

  if (belady_cost <= reweighted.cost) {
    estimate.upper_cost = belady_cost;
    estimate.upper_misses = belady_run.metrics.miss_vector();
  } else {
    estimate.upper_cost = reweighted.cost;
    estimate.upper_misses = reweighted.misses;
  }

  // Lower bound: Belady's total miss count is the minimum achievable by any
  // schedule; the cheapest convex distribution of that many misses bounds
  // every schedule's cost from below.
  estimate.lower_cost =
      cheapest_distribution(belady_run.metrics.total_misses(), costs,
                            trace.num_tenants())
          .cost;
  return estimate;
}

}  // namespace ccc
