#include "offline/exact_opt.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "util/check.hpp"

namespace ccc {

namespace {

using CacheKey = std::vector<PageId>;    // sorted resident set
using MissVec = std::vector<std::uint32_t>;  // per-tenant miss counts

/// True if a dominates b componentwise (a never worse).
bool dominates(const MissVec& a, const MissVec& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

/// Inserts `v` into the Pareto front `front` (dominated-vector pruning).
/// Returns false if `v` was itself dominated.
bool pareto_insert(std::vector<MissVec>& front, const MissVec& v) {
  for (const MissVec& existing : front)
    if (dominates(existing, v)) return false;
  std::erase_if(front, [&](const MissVec& existing) {
    return dominates(v, existing);
  });
  front.push_back(v);
  return true;
}

double vector_cost(const MissVec& v,
                   const std::vector<CostFunctionPtr>& costs) {
  double total = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i)
    total += costs[i]->value(static_cast<double>(v[i]));
  return total;
}

}  // namespace

OptResult exact_opt(const Trace& trace, std::size_t capacity,
                    const std::vector<CostFunctionPtr>& costs,
                    std::size_t state_budget) {
  CCC_REQUIRE(capacity > 0, "cache capacity must be positive");
  CCC_REQUIRE(costs.size() >= trace.num_tenants(),
              "need one cost function per tenant");

  std::map<CacheKey, std::vector<MissVec>> states;
  states.emplace(CacheKey{}, std::vector<MissVec>{
                                 MissVec(trace.num_tenants(), 0)});

  for (const Request& req : trace) {
    std::map<CacheKey, std::vector<MissVec>> next;
    std::size_t state_count = 0;

    const auto add_state = [&](CacheKey key, const MissVec& v) {
      auto& front = next[std::move(key)];
      if (pareto_insert(front, v)) ++state_count;
    };

    for (const auto& [cache, front] : states) {
      const bool resident =
          std::binary_search(cache.begin(), cache.end(), req.page);
      if (resident) {
        for (const MissVec& v : front) add_state(cache, v);
        continue;
      }
      for (const MissVec& v : front) {
        MissVec missed = v;
        ++missed[req.tenant];
        if (cache.size() < capacity) {
          CacheKey grown = cache;
          grown.insert(
              std::lower_bound(grown.begin(), grown.end(), req.page),
              req.page);
          add_state(std::move(grown), missed);
        } else {
          for (std::size_t victim = 0; victim < cache.size(); ++victim) {
            CacheKey swapped = cache;
            swapped.erase(swapped.begin() + static_cast<std::ptrdiff_t>(victim));
            swapped.insert(
                std::lower_bound(swapped.begin(), swapped.end(), req.page),
                req.page);
            add_state(std::move(swapped), missed);
          }
        }
      }
    }
    if (state_count > state_budget)
      throw std::runtime_error(
          "exact_opt: state budget exceeded (" + std::to_string(state_count) +
          " states) — instance too large for exact solution");
    states = std::move(next);
  }

  OptResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (const auto& [cache, front] : states) {
    (void)cache;
    for (const MissVec& v : front) {
      const double c = vector_cost(v, costs);
      if (c < best.cost) {
        best.cost = c;
        best.misses.assign(v.begin(), v.end());
      }
    }
  }
  CCC_CHECK(!best.misses.empty() || trace.empty(),
            "exact_opt produced no terminal state");
  if (trace.empty()) {
    best.cost = 0.0;
    best.misses.assign(trace.num_tenants(), 0);
  }
  return best;
}

namespace {

void bruteforce_rec(const Trace& trace, std::size_t capacity,
                    const std::vector<CostFunctionPtr>& costs, TimeStep t,
                    CacheKey& cache, MissVec& misses, OptResult& best) {
  if (t == trace.size()) {
    const double c = vector_cost(misses, costs);
    if (c < best.cost) {
      best.cost = c;
      best.misses.assign(misses.begin(), misses.end());
    }
    return;
  }
  const Request& req = trace[t];
  if (std::binary_search(cache.begin(), cache.end(), req.page)) {
    bruteforce_rec(trace, capacity, costs, t + 1, cache, misses, best);
    return;
  }
  ++misses[req.tenant];
  if (cache.size() < capacity) {
    cache.insert(std::lower_bound(cache.begin(), cache.end(), req.page),
                 req.page);
    bruteforce_rec(trace, capacity, costs, t + 1, cache, misses, best);
    cache.erase(std::find(cache.begin(), cache.end(), req.page));
  } else {
    const CacheKey snapshot = cache;
    for (const PageId victim : snapshot) {
      cache = snapshot;
      cache.erase(std::find(cache.begin(), cache.end(), victim));
      cache.insert(std::lower_bound(cache.begin(), cache.end(), req.page),
                   req.page);
      bruteforce_rec(trace, capacity, costs, t + 1, cache, misses, best);
    }
    cache = snapshot;
  }
  --misses[req.tenant];
}

}  // namespace

OptResult exact_opt_bruteforce(const Trace& trace, std::size_t capacity,
                               const std::vector<CostFunctionPtr>& costs) {
  OptResult best;
  best.cost = std::numeric_limits<double>::infinity();
  CacheKey cache;
  MissVec misses(trace.num_tenants(), 0);
  bruteforce_rec(trace, capacity, costs, 0, cache, misses, best);
  if (trace.empty()) {
    best.cost = 0.0;
    best.misses.assign(trace.num_tenants(), 0);
  }
  return best;
}

}  // namespace ccc
