#include "offline/weighted_belady.hpp"

#include <algorithm>
#include <limits>

#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace ccc {

WeightedBeladyPolicy::WeightedBeladyPolicy(std::vector<double> weights)
    : weights_(std::move(weights)) {
  CCC_REQUIRE(!weights_.empty(), "WeightedBelady needs tenant weights");
  for (const double w : weights_)
    CCC_REQUIRE(w > 0.0, "WeightedBelady weights must be positive");
}

void WeightedBeladyPolicy::reset(const PolicyContext& ctx) {
  CCC_REQUIRE(weights_.size() >= ctx.num_tenants,
              "need one weight per tenant");
  occurrences_.clear();
  cursor_.clear();
  resident_.clear();
  resident_tenant_.clear();
  previewed_ = false;
}

void WeightedBeladyPolicy::preview(const Trace& trace) {
  for (TimeStep t = 0; t < trace.size(); ++t)
    occurrences_[trace[t].page].push_back(t);
  previewed_ = true;
}

PageId WeightedBeladyPolicy::choose_victim(const Request& /*request*/,
                                           TimeStep time) {
  CCC_CHECK(previewed_, "WeightedBelady requires preview()");
  CCC_CHECK(!resident_.empty(),
            "WeightedBelady asked for a victim with an empty cache");
  // Score = weight / forward-distance: low weight and far future ⇒ evict.
  // Never-used-again pages are split by weight (then page id).
  bool best_never = false;
  double best_score = 0.0;
  PageId best_page = 0;
  bool found = false;
  for (std::size_t idx = 0; idx < resident_.size(); ++idx) {
    const PageId page = resident_[idx];
    const auto& occs = occurrences_.at(page);
    std::size_t& cur = cursor_[page];
    while (cur < occs.size() && occs[cur] <= time) ++cur;
    const bool never = cur >= occs.size();
    const double weight = weights_[resident_tenant_[idx]];
    const double distance =
        never ? 1.0 : static_cast<double>(occs[cur] - time);
    const double score = weight / distance;
    const bool better = [&] {
      if (!found) return true;
      if (never != best_never) return never;
      if (never) {
        if (weight != best_score) return weight < best_score;
        return page < best_page;
      }
      if (score != best_score) return score < best_score;
      return page < best_page;
    }();
    if (better) {
      found = true;
      best_never = never;
      best_score = never ? weight : score;
      best_page = page;
    }
  }
  return best_page;
}

void WeightedBeladyPolicy::on_evict(PageId victim, TenantId /*owner*/,
                                    TimeStep /*time*/) {
  const auto it = std::find(resident_.begin(), resident_.end(), victim);
  CCC_CHECK(it != resident_.end(),
            "WeightedBelady evicting an untracked page");
  const auto idx = static_cast<std::size_t>(it - resident_.begin());
  resident_[idx] = resident_.back();
  resident_tenant_[idx] = resident_tenant_.back();
  resident_.pop_back();
  resident_tenant_.pop_back();
}

void WeightedBeladyPolicy::on_insert(const Request& request,
                                     TimeStep /*time*/) {
  resident_.push_back(request.page);
  resident_tenant_.push_back(request.tenant);
}

OptResult iterated_weighted_belady(const Trace& trace, std::size_t capacity,
                                   const std::vector<CostFunctionPtr>& costs,
                                   std::size_t max_iterations) {
  CCC_REQUIRE(max_iterations >= 1, "need at least one iteration");
  std::vector<double> weights(trace.num_tenants(), 1.0);
  OptResult best;
  best.cost = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    WeightedBeladyPolicy policy(weights);
    const SimResult result = run_trace(trace, capacity, policy, &costs);
    const double cost = total_cost(result.metrics.miss_vector(), costs);
    if (cost < best.cost) {
      best.cost = cost;
      best.misses = result.metrics.miss_vector();
    }
    // Reweight by the marginal cost of each tenant's next miss.
    std::vector<double> next_weights(trace.num_tenants());
    bool changed = false;
    for (std::uint32_t i = 0; i < trace.num_tenants(); ++i) {
      const double w = std::max(
          1e-12, costs[i]->derivative(
                     static_cast<double>(result.metrics.misses(i)) + 1.0));
      next_weights[i] = w;
      changed = changed || w != weights[i];
    }
    if (!changed) break;
    weights = std::move(next_weights);
  }
  return best;
}

}  // namespace ccc
