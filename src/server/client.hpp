#pragma once
/// \file client.hpp
/// \brief Blocking pipelined client for the cache-server protocol, plus a
///        one-shot HTTP GET helper — the client side of tests and the e11
///        loopback load generator.
///
/// The client is deliberately dumb: it buffers encoded requests until
/// flush(), then reads responses through the same FrameDecoder the server
/// uses. Pipelining discipline (bounding requests in flight so neither
/// side's socket buffers fill with unread data) is the caller's job — e11
/// sends a window of W requests, reads W responses, repeats.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "server/protocol.hpp"

namespace ccc::server {

class BlockingClient {
 public:
  /// Connects to `address:port` (blocking, TCP_NODELAY, 30 s receive
  /// timeout so a wedged server fails tests instead of hanging them).
  /// `max_response_body` bounds the response bodies this client will
  /// buffer — it must cover the STATS payload for the server's tenant
  /// count. Throws std::runtime_error on connect failure.
  explicit BlockingClient(const std::string& address, std::uint16_t port,
                          std::size_t max_response_body = std::size_t{1}
                                                          << 20);
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  // ---- pipelined interface ----

  void enqueue_get(TenantId tenant, PageId page);
  void enqueue_set(TenantId tenant, PageId page);
  void enqueue_stats();
  void enqueue_rebalance();
  /// Appends raw bytes to the outbox verbatim (tests: malformed frames).
  void append_raw(std::string_view bytes);
  [[nodiscard]] std::size_t outbox_bytes() const noexcept {
    return out_.size();
  }

  /// Writes the whole outbox to the socket (blocking until accepted).
  void flush();

  /// Blocks until at least `count` responses have been delivered to `sink`
  /// since this call began. Pipelined responses decoded in the same read
  /// are delivered in order as they arrive (possibly more than `count` if
  /// the caller over-sent; never beyond what was requested on the wire).
  /// Throws on EOF, receive timeout, or a framing error from the server.
  void read_responses(std::size_t count,
                      const std::function<void(const ResponseMsg&)>& sink);

  // ---- lockstep conveniences (tests) ----

  /// enqueue + flush + read one response; returns its status byte.
  std::uint8_t call(Opcode opcode, TenantId tenant, PageId page);
  /// STATS round-trip; throws if the payload does not parse.
  StatsPayload stats();
  /// REBALANCE round-trip; throws unless the server answers kOk. Returns
  /// only after the server has applied the new capacity split, so the
  /// caller can treat it as a synchronization point (e11's segment
  /// boundaries rely on that).
  void rebalance();

  /// Half-close: no more requests, but responses still flow — how a
  /// well-behaved client signals "done" before draining its tail.
  void shutdown_write();
  void close();
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::string out_;
  FrameDecoder decoder_;
};

/// One-shot HTTP/1.1 GET: connects, requests `target`, reads to EOF and
/// returns the entire response (status line, headers, body). Throws on
/// connect/IO failure.
std::string http_get(const std::string& address, std::uint16_t port,
                     const std::string& target);

}  // namespace ccc::server
