/// \file client.cpp
/// \brief Blocking pipelined protocol client (see client.hpp).

#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace ccc::server {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

int connect_blocking(const std::string& address, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address: " + address);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  timeval timeout{};
  timeout.tv_sec = 30;  // a wedged server should fail tests, not hang them
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  return fd;
}

void write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

BlockingClient::BlockingClient(const std::string& address, std::uint16_t port,
                               std::size_t max_response_body)
    : fd_(connect_blocking(address, port)), decoder_(max_response_body) {}

BlockingClient::~BlockingClient() { close(); }

void BlockingClient::enqueue_get(TenantId tenant, PageId page) {
  append_request(out_, Opcode::kGet, tenant, page);
}

void BlockingClient::enqueue_set(TenantId tenant, PageId page) {
  append_request(out_, Opcode::kSet, tenant, page);
}

void BlockingClient::enqueue_stats() {
  append_request(out_, Opcode::kStats, 0, 0);
}

void BlockingClient::enqueue_rebalance() {
  append_request(out_, Opcode::kRebalance, 0, 0);
}

void BlockingClient::append_raw(std::string_view bytes) { out_ += bytes; }

void BlockingClient::flush() {
  if (out_.empty()) return;
  write_all(fd_, out_.data(), out_.size());
  out_.clear();
}

void BlockingClient::read_responses(
    std::size_t count, const std::function<void(const ResponseMsg&)>& sink) {
  std::size_t delivered = 0;
  std::vector<char> chunk(std::size_t{64} << 10);
  while (delivered < count) {
    const ssize_t n = ::read(fd_, chunk.data(), chunk.size());
    if (n == 0) throw std::runtime_error("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("receive timeout");
      throw_errno("read");
    }
    const DecodeError err = decoder_.feed(
        std::string_view(chunk.data(), static_cast<std::size_t>(n)),
        [&](const FrameView& frame) {
          const std::optional<ResponseMsg> msg = parse_response(frame);
          if (!msg.has_value())
            throw std::runtime_error("short response body");
          ++delivered;
          sink(*msg);
        });
    if (err != DecodeError::kNone)
      throw std::runtime_error("response framing error " +
                               std::to_string(static_cast<int>(err)));
  }
}

std::uint8_t BlockingClient::call(Opcode opcode, TenantId tenant,
                                  PageId page) {
  append_request(out_, opcode, tenant, page);
  flush();
  std::uint8_t status = 0;
  read_responses(1, [&](const ResponseMsg& msg) { status = msg.status; });
  return status;
}

StatsPayload BlockingClient::stats() {
  enqueue_stats();
  flush();
  std::optional<StatsPayload> payload;
  std::uint8_t status = 0;
  read_responses(1, [&](const ResponseMsg& msg) {
    status = msg.status;
    payload = parse_stats_body(msg.tail);
  });
  if (status != static_cast<std::uint8_t>(Status::kOk) ||
      !payload.has_value())
    throw std::runtime_error("bad STATS response");
  return std::move(*payload);
}

void BlockingClient::rebalance() {
  const std::uint8_t status = call(Opcode::kRebalance, 0, 0);
  if (status != static_cast<std::uint8_t>(Status::kOk))
    throw std::runtime_error("bad REBALANCE response: status " +
                             std::to_string(status));
}

void BlockingClient::shutdown_write() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string http_get(const std::string& address, std::uint16_t port,
                     const std::string& target) {
  const int fd = connect_blocking(address, port);
  try {
    const std::string request = "GET " + target +
                                " HTTP/1.1\r\nHost: " + address +
                                "\r\nConnection: close\r\n\r\n";
    write_all(fd, request.data(), request.size());
    std::string response;
    std::vector<char> chunk(std::size_t{64} << 10);
    while (true) {
      const ssize_t n = ::read(fd, chunk.data(), chunk.size());
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("read");
      }
      response.append(chunk.data(), static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace ccc::server
