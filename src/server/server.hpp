#pragma once
/// \file server.hpp
/// \brief Networked cache-server frontend: an epoll event loop serving the
///        pipelined binary protocol (protocol.hpp) over TCP on one port and
///        Prometheus metrics over HTTP on another, wrapping a ShardedCache.
///
/// Threading model: one event-loop thread owns every connection and all
/// server-side counters; the ShardedCache underneath is internally
/// synchronized, so `request_stop()` (and the signal glue) are the only
/// cross-thread entry points — both just write one byte to a wake pipe.
/// The single loop keeps request handling deterministic and the metrics
/// snapshot race-free; horizontal scale comes from running more shards
/// inside the cache (and, later, more server processes), not from sharing
/// connections across threads.
///
/// Batching: each readiness event drains one connection's socket, decodes
/// every complete frame, and folds the contiguous run of GET/SET requests
/// into a single ShardedCache::access_batch call (bounded by
/// `batch_limit`). Responses are emitted in request order per connection,
/// so pipelining needs no sequence numbers. Determinism: access_batch
/// preserves per-shard request order within a batch, and batches from one
/// connection are processed in arrival order — so as long as each shard's
/// pages arrive via a single connection (how e11 partitions its trace),
/// the server-side books are bit-identical to a direct single-threaded
/// replay of the same trace, no matter how the event loop interleaves
/// connections (DESIGN.md §12).
///
/// Backpressure: a connection whose pending output exceeds
/// `max_output_backlog` stops being read (its EPOLLIN is masked) until the
/// peer drains half of it — a slow reader throttles itself, not the server.
///
/// Shutdown: SIGTERM/SIGINT (via stop_on_signals) or request_stop() wakes
/// the loop; the server stops accepting, performs one final read-drain per
/// connection (serving everything already in socket buffers), flushes all
/// pending responses under a deadline, prints the books, and run() returns
/// 0. In-flight pipelined requests are therefore answered, not dropped.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/slow_ring.hpp"
#include "obs/trace_event.hpp"
#include "shard/sharded_cache.hpp"

namespace ccc::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;          ///< cache protocol port; 0 = ephemeral
  bool metrics = true;             ///< serve HTTP /metrics
  std::uint16_t metrics_port = 0;  ///< 0 = ephemeral
  /// Cache-protocol connections beyond this are accepted and immediately
  /// closed (counted in `connections_rejected`).
  std::size_t max_connections = 1024;
  /// Upper bound on requests folded into one access_batch call.
  std::size_t batch_limit = 1024;
  /// Pending-output bytes beyond which a connection's reads are paused.
  std::size_t max_output_backlog = std::size_t{4} << 20;
  /// Bytes read per read() call on a ready connection.
  std::size_t read_chunk = std::size_t{64} << 10;
  /// SO_SNDBUF for accepted cache connections; 0 keeps the kernel default.
  /// A small value makes send() hit EAGAIN early, forcing the backpressure
  /// machinery to engage — the lifecycle tests rely on that determinism.
  std::size_t so_sndbuf = 0;
  /// Seconds allowed for the shutdown flush of pending responses.
  double drain_deadline_seconds = 5.0;
};

/// Plain counters owned by the event-loop thread. Snapshot via
/// CacheServer::counters() — exact once run() has returned; advisory (the
/// loop may be mid-update) while it is still running.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t connections_closed = 0;
  std::uint64_t frames = 0;           ///< well-formed frames decoded
  std::uint64_t requests = 0;         ///< GET/SET served through the cache
  std::uint64_t stats_requests = 0;   ///< STATS frames answered
  std::uint64_t rebalance_requests = 0;  ///< REBALANCE frames applied
  std::uint64_t bad_requests = 0;     ///< well-framed but unserviceable
  std::uint64_t protocol_errors = 0;  ///< framing errors (connection fatal)
  std::uint64_t batches = 0;          ///< access_batch calls
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t metrics_scrapes = 0;  ///< /metrics responses served
  std::uint64_t debug_requests = 0;   ///< /debug/* responses served
  std::uint64_t reads_paused = 0;     ///< backpressure activations
};

class CacheServer {
 public:
  /// `factory`/`costs` as in ShardedCache: nullptr selects ALG-DISCRETE;
  /// `costs`, when given, must outlive the server.
  CacheServer(ServerOptions options, ShardedCacheOptions cache_options,
              PolicyFactory factory = nullptr,
              const std::vector<CostFunctionPtr>* costs = nullptr);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Binds and listens on both ports. After start() returns, port() and
  /// metrics_port() are final and a client may connect (the backlog queues
  /// until run() begins servicing). Throws std::runtime_error on any
  /// socket failure.
  void start();

  /// Runs the event loop until a stop request arrives; returns 0 after a
  /// graceful drain (the only non-throwing way out). Call start() first.
  int run();

  /// Thread-safe stop request: wakes the loop via the wake pipe. Safe to
  /// call from any thread, any number of times, before or during run().
  void request_stop() noexcept;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint16_t metrics_port() const noexcept {
    return metrics_port_;
  }

  [[nodiscard]] const ShardedCache& cache() const noexcept { return cache_; }
  [[nodiscard]] ServerCounters counters() const noexcept { return counters_; }

  /// Builds the same registry the /metrics endpoint serializes: server
  /// counters, batch-size/latency and per-connection-lifetime histograms,
  /// the per-stage request-latency attribution histograms
  /// (`ccc_server_stage_latency_ns{stage=decode|queue|cache|encode|flush}`),
  /// plus the full sharded-cache snapshot (per-tenant books, per-shard
  /// occupancy, perf counters, live competitive-ratio gauges).
  void fill_metrics(obs::MetricsRegistry& registry) const;

  /// Attaches a span writer for per-batch server spans, togglable at
  /// runtime via `GET /debug/trace?on|off`. The writer must outlive the
  /// server; call before run(). nullptr (the default) disables both the
  /// spans and the toggle endpoint.
  void set_trace_writer(obs::TraceEventWriter* writer) noexcept {
    trace_writer_ = writer;
  }

  /// The N slowest attributed requests (what /debug/slow serves).
  [[nodiscard]] const obs::SlowRequestRing& slow_ring() const noexcept {
    return slow_ring_;
  }

  /// Write end of the wake pipe — what the signal glue writes to. Owned by
  /// the server; do not close.
  [[nodiscard]] int wake_fd() const noexcept { return wake_write_fd_; }

 private:
  struct Connection;

  void event_loop();
  void accept_ready(int listener_fd, bool metrics_listener);
  void handle_readable(Connection& conn);
  void handle_cache_bytes(Connection& conn, std::string_view bytes);
  void handle_metrics_bytes(Connection& conn, std::string_view bytes);
  /// Routes one parsed HTTP request (GET/HEAD mux: /metrics, /debug/*).
  void handle_http_request(Connection& conn, const std::string& method,
                           const std::string& target);
  [[nodiscard]] std::string debug_costs_json() const;
  [[nodiscard]] std::string debug_slow_json() const;
  /// Full bucket dump of one named histogram family, or a 404 body
  /// listing the valid names (the bool distinguishes the two).
  [[nodiscard]] std::pair<bool, std::string> debug_hist_json(
      std::string_view name) const;
  /// Runs the pending GET/SET batch (if any) and queues the responses.
  void flush_pending_batch(Connection& conn);
  void queue_stats_response(Connection& conn);
  /// Opportunistic write; arms EPOLLOUT when the socket would block, and
  /// applies the backpressure read-pause policy.
  void flush_output(Connection& conn);
  void close_connection(Connection& conn);
  void update_epoll(Connection& conn);
  void drain_and_exit();

  ServerOptions options_;
  ShardedCache cache_;
  const std::vector<CostFunctionPtr>* costs_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;
  bool started_ = false;
  bool stopping_ = false;

  std::vector<std::unique_ptr<Connection>> connections_;
  std::size_t cache_connections_ = 0;

  ServerCounters counters_;
  obs::Histogram batch_size_hist_;
  obs::Histogram batch_latency_ns_hist_;
  obs::Histogram connection_requests_hist_;  ///< requests per closed conn

  /// Request-latency attribution (DESIGN.md §13): stage deltas recorded by
  /// the loop thread at the stage boundaries — decode per read chunk,
  /// queue/cache/encode per batch, flush per non-empty flush_output call.
  obs::Histogram stage_decode_ns_hist_;
  obs::Histogram stage_queue_ns_hist_;
  obs::Histogram stage_cache_ns_hist_;
  obs::Histogram stage_encode_ns_hist_;
  obs::Histogram stage_flush_ns_hist_;
  obs::SlowRequestRing slow_ring_;
  obs::TraceEventWriter* trace_writer_ = nullptr;  ///< not owned
  /// Batch wall time spent inside the current decode chunk (loop thread
  /// only) — subtracted so the decode stage excludes nested batch flushes.
  std::uint64_t chunk_batch_ns_ = 0;
};

/// Installs SIGTERM and SIGINT handlers that stop `server` through its
/// wake pipe (one async-signal-safe write). One server per process at a
/// time: installing for a second server retargets the handlers.
void stop_on_signals(CacheServer& server);

}  // namespace ccc::server
