#pragma once
/// \file http.hpp
/// \brief Just enough HTTP/1.1 for a Prometheus scrape target: parse a
///        request head, build a response. Pure string handling — no
///        sockets — so the parser is unit-testable and fuzz-friendly.
///
/// The metrics endpoint speaks the smallest useful dialect: the request
/// body is ignored (scrapes are GETs), every response carries
/// `Connection: close` and an explicit Content-Length, HEAD is answered
/// with the GET headers and an empty body, and anything that is not a
/// known target (`/metrics`, `/debug/*` — server.cpp routes) earns a 404
/// (or 405 for methods other than GET/HEAD). That is the entire contract
/// Prometheus, curl and the debug tooling need.

#include <cstddef>
#include <string>
#include <string_view>

namespace ccc::server {

/// Parsed request line of an HTTP/1.x head.
struct HttpRequest {
  std::string method;
  std::string target;
};

/// Outcome of scanning a receive buffer for a complete request head.
enum class HttpParse : std::uint8_t {
  kNeedMore,  ///< no blank line yet — keep reading
  kOk,        ///< head complete; `request` is filled
  kBad,       ///< malformed request line, or head exceeds kMaxHeadBytes
};

/// A request head larger than this is rejected outright — a scrape request
/// is a few dozen bytes, so multi-kilobyte heads are noise or abuse.
inline constexpr std::size_t kMaxHeadBytes = 8 * 1024;

/// Scans `in` for a complete head (terminated by CRLFCRLF or LFLF). On
/// kOk, `consumed` is the head's byte length, so callers can drop it from
/// their buffer; on other outcomes `consumed` is 0.
[[nodiscard]] HttpParse parse_http_head(std::string_view in,
                                        HttpRequest& request,
                                        std::size_t& consumed);

/// Serializes a complete response with status line, Content-Type,
/// Content-Length and Connection: close headers. With `head_only` the
/// headers (including the real Content-Length of `body`) are emitted but
/// the body is omitted — the HEAD-request contract of RFC 9110 §9.3.2.
[[nodiscard]] std::string make_http_response(int status,
                                             std::string_view content_type,
                                             std::string_view body,
                                             bool head_only = false);

/// Content type mandated by the Prometheus text exposition format 0.0.4.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace ccc::server
