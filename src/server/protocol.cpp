/// \file protocol.cpp
/// \brief Implementation of the frame codec (see protocol.hpp for layout).

#include "server/protocol.hpp"

#include <cstring>

namespace ccc::server {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void put_prefix(std::string& out, std::uint32_t body_bytes, std::uint8_t code) {
  put_u32(out, static_cast<std::uint32_t>(kFramePrefixBytes) + body_bytes);
  put_u32(out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(code));
  put_u16(out, 0);  // reserved
}

}  // namespace

FrameDecoder::FrameDecoder(std::size_t max_body_bytes)
    : max_body_bytes_(max_body_bytes) {}

DecodeError FrameDecoder::feed(std::span<const std::uint8_t> bytes,
                               const Sink& sink) {
  if (error_ != DecodeError::kNone) return error_;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());

  while (true) {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < 4) break;
    const std::uint8_t* base = buffer_.data() + consumed_;
    const std::uint32_t length = get_u32(base);
    // The length field is validated before waiting for the frame: a
    // poisoned length must not make the decoder buffer (or wait for)
    // gigabytes that will never be accepted.
    if (length < kFramePrefixBytes) {
      error_ = DecodeError::kBadLength;
      return error_;
    }
    if (length - kFramePrefixBytes > max_body_bytes_) {
      error_ = DecodeError::kOversized;
      return error_;
    }
    if (avail < 4 + static_cast<std::size_t>(length)) break;
    if (get_u32(base + 4) != kMagic) {
      error_ = DecodeError::kBadMagic;
      return error_;
    }
    if (base[8] != kVersion) {
      error_ = DecodeError::kBadVersion;
      return error_;
    }
    if (get_u16(base + 10) != 0) {
      error_ = DecodeError::kBadReserved;
      return error_;
    }
    FrameView frame;
    frame.code = base[9];
    frame.body = std::span<const std::uint8_t>(
        base + 4 + kFramePrefixBytes, length - kFramePrefixBytes);
    sink(frame);
    consumed_ += 4 + static_cast<std::size_t>(length);
  }

  // Compact once the emitted prefix dominates the buffer, so a long-lived
  // pipelined connection costs amortized O(bytes), not O(bytes²).
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 64 * 1024)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return DecodeError::kNone;
}

DecodeError FrameDecoder::feed(std::string_view bytes, const Sink& sink) {
  return feed(std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(bytes.data()),
                  bytes.size()),
              sink);
}

void append_request(std::string& out, Opcode opcode, TenantId tenant,
                    PageId page) {
  put_prefix(out, static_cast<std::uint32_t>(kRequestBodyBytes),
             static_cast<std::uint8_t>(opcode));
  put_u32(out, tenant);
  put_u64(out, page);
}

void append_response(std::string& out, Status status, std::uint64_t value,
                     std::span<const std::uint8_t> tail) {
  put_prefix(out,
             static_cast<std::uint32_t>(kResponseBodyBytes + tail.size()),
             static_cast<std::uint8_t>(status));
  put_u64(out, value);
  out.append(reinterpret_cast<const char*>(tail.data()), tail.size());
}

void append_stats_body(std::string& out, const StatsPayload& stats) {
  put_u32(out, stats.num_tenants);
  put_u32(out, stats.num_shards);
  put_u64(out, stats.capacity);
  put_u64(out, stats.lockfree_hits);
  for (std::uint32_t t = 0; t < stats.num_tenants; ++t) {
    put_u64(out, stats.hits[t]);
    put_u64(out, stats.misses[t]);
    put_u64(out, stats.evictions[t]);
  }
}

std::optional<RequestMsg> parse_request(const FrameView& frame) {
  if (frame.body.size() != kRequestBodyBytes) return std::nullopt;
  RequestMsg msg;
  msg.opcode = frame.code;
  msg.tenant = get_u32(frame.body.data());
  msg.page = get_u64(frame.body.data() + 4);
  return msg;
}

std::optional<ResponseMsg> parse_response(const FrameView& frame) {
  if (frame.body.size() < kResponseBodyBytes) return std::nullopt;
  ResponseMsg msg;
  msg.status = frame.code;
  msg.value = get_u64(frame.body.data());
  msg.tail = frame.body.subspan(kResponseBodyBytes);
  return msg;
}

std::optional<StatsPayload> parse_stats_body(
    std::span<const std::uint8_t> tail) {
  constexpr std::size_t kHeader = 4 + 4 + 8 + 8;
  if (tail.size() < kHeader) return std::nullopt;
  StatsPayload stats;
  stats.num_tenants = get_u32(tail.data());
  stats.num_shards = get_u32(tail.data() + 4);
  stats.capacity = get_u64(tail.data() + 8);
  stats.lockfree_hits = get_u64(tail.data() + 16);
  const std::size_t expected =
      kHeader + std::size_t{24} * stats.num_tenants;
  if (tail.size() != expected) return std::nullopt;
  stats.hits.resize(stats.num_tenants);
  stats.misses.resize(stats.num_tenants);
  stats.evictions.resize(stats.num_tenants);
  const std::uint8_t* p = tail.data() + kHeader;
  for (std::uint32_t t = 0; t < stats.num_tenants; ++t) {
    stats.hits[t] = get_u64(p);
    stats.misses[t] = get_u64(p + 8);
    stats.evictions[t] = get_u64(p + 16);
    p += 24;
  }
  return stats;
}

}  // namespace ccc::server
