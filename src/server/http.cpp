/// \file http.cpp
/// \brief Minimal HTTP head parsing / response building (see http.hpp).

#include "server/http.hpp"

#include <sstream>

namespace ccc::server {

HttpParse parse_http_head(std::string_view in, HttpRequest& request,
                          std::size_t& consumed) {
  consumed = 0;
  // The head ends at the first blank line; tolerate bare-LF clients.
  std::size_t end = in.find("\r\n\r\n");
  std::size_t terminator = 4;
  if (end == std::string_view::npos) {
    end = in.find("\n\n");
    terminator = 2;
  }
  if (end == std::string_view::npos)
    return in.size() > kMaxHeadBytes ? HttpParse::kBad : HttpParse::kNeedMore;
  if (end + terminator > kMaxHeadBytes) return HttpParse::kBad;

  std::string_view line = in.substr(0, in.find_first_of("\r\n"));
  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParse::kBad;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return HttpParse::kBad;
  if (line.substr(sp2 + 1).substr(0, 5) != "HTTP/") return HttpParse::kBad;

  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  consumed = end + terminator;
  return HttpParse::kOk;
}

std::string make_http_response(int status, std::string_view content_type,
                               std::string_view body, bool head_only) {
  const char* reason = "OK";
  switch (status) {
    case 200: reason = "OK"; break;
    case 404: reason = "Not Found"; break;
    case 405: reason = "Method Not Allowed"; break;
    case 400: reason = "Bad Request"; break;
    default: reason = ""; break;
  }
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << "\r\n";
  // HEAD responses carry the headers of the corresponding GET — including
  // the real Content-Length — but no body (RFC 9110 §9.3.2).
  if (!head_only) os << body;
  return os.str();
}

}  // namespace ccc::server
