/// \file serverd_main.cpp
/// \brief ccc-serverd — the networked cache-server daemon: a ShardedCache
///        (ALG-DISCRETE per shard, seqlock hit path by default) behind the
///        pipelined binary protocol, with Prometheus /metrics on a second
///        port. SIGTERM/SIGINT drain gracefully and exit 0.
///
/// The first stdout line after startup is machine-readable:
///
///   ccc-serverd: listening cache=<addr>:<port> metrics=<addr>:<port>
///
/// so scripts launching with --port 0 (ephemeral) can scrape the actual
/// ports. The last line, printed during the graceful drain, carries the
/// final books (requests/hits/misses/evictions).

#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "server/server.hpp"
#include "util/cli.hpp"

namespace ccc {
namespace {

std::vector<CostFunctionPtr> make_costs(const std::string& family,
                                        std::uint32_t tenants) {
  std::vector<CostFunctionPtr> costs;
  if (family == "none") return costs;
  costs.reserve(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    const double w = 1.0 + static_cast<double>(t % 4);
    if (family == "mono2") {
      costs.push_back(std::make_unique<MonomialCost>(2.0, w));
    } else if (family == "mono3") {
      costs.push_back(std::make_unique<MonomialCost>(3.0, w));
    } else if (family == "linear") {
      costs.push_back(std::make_unique<MonomialCost>(1.0, w));
    } else if (family == "sla") {
      costs.push_back(std::make_unique<PiecewiseLinearCost>(
          PiecewiseLinearCost::sla(8.0 * w, w)));
    } else {
      throw std::invalid_argument("unknown cost family '" + family +
                                  "'; valid: mono2 mono3 linear sla none");
    }
  }
  return costs;
}

int run(int argc, const char* const* argv) {
  Cli cli(
      "ccc-serverd — networked cache server: pipelined binary protocol on "
      "the cache port, Prometheus /metrics over HTTP on the metrics port; "
      "SIGTERM drains in-flight requests and exits 0");
  cli.flag("bind", "127.0.0.1", "address to bind both listeners to")
      .flag("port", "0", "cache-protocol port (0 = ephemeral, printed)")
      .flag("metrics-port", "0", "HTTP /metrics port (0 = ephemeral)")
      .flag("metrics", "1", "serve /metrics (0 disables the second listener)")
      .flag("tenants", "16", "tenant count")
      .flag("shards", "4", "shard count of the backing ShardedCache")
      .flag("k-per-tenant", "8", "cache capacity = k-per-tenant × tenants")
      .flag("capacity", "0", "total capacity in pages (overrides k-per-tenant)")
      .flag("hitpath", "seqlock", "hit path: seqlock (default) or locked")
      .flag("costs", "mono2",
            "per-tenant convex cost family: mono2,mono3,linear,sla,none")
      .flag("seed", "1234", "policy seed (shard s uses seed + s)")
      .flag("max-connections", "1024",
            "cache-protocol connection limit; extras are closed on accept")
      .flag("batch-limit", "1024",
            "max requests folded into one access_batch call")
      .flag("max-output-backlog", std::to_string(std::size_t{4} << 20),
            "pending-output bytes before a connection's reads are paused")
      .flag("drain-deadline", "5.0",
            "seconds allowed to flush responses during graceful shutdown");
  if (!cli.parse(argc, argv)) return 0;

  const auto tenants = static_cast<std::uint32_t>(cli.get_u64("tenants"));
  const std::string hitpath = cli.get("hitpath");
  if (hitpath != "seqlock" && hitpath != "locked")
    throw std::invalid_argument("unknown hit path '" + hitpath +
                                "'; valid: seqlock locked");

  ShardedCacheOptions cache_options;
  cache_options.capacity =
      cli.get_u64("capacity") > 0
          ? static_cast<std::size_t>(cli.get_u64("capacity"))
          : static_cast<std::size_t>(cli.get_u64("k-per-tenant")) * tenants;
  cache_options.num_shards = static_cast<std::size_t>(cli.get_u64("shards"));
  cache_options.num_tenants = tenants;
  cache_options.seed = cli.get_u64("seed");
  cache_options.hit_path =
      hitpath == "seqlock" ? HitPath::kSeqlock : HitPath::kLocked;

  server::ServerOptions options;
  options.bind_address = cli.get("bind");
  options.port = static_cast<std::uint16_t>(cli.get_u64("port"));
  options.metrics = cli.get_bool("metrics");
  options.metrics_port =
      static_cast<std::uint16_t>(cli.get_u64("metrics-port"));
  options.max_connections =
      static_cast<std::size_t>(cli.get_u64("max-connections"));
  options.batch_limit = static_cast<std::size_t>(cli.get_u64("batch-limit"));
  options.max_output_backlog =
      static_cast<std::size_t>(cli.get_u64("max-output-backlog"));
  options.drain_deadline_seconds = cli.get_double("drain-deadline");

  const std::vector<CostFunctionPtr> costs =
      make_costs(cli.get("costs"), tenants);

  server::CacheServer server(options, cache_options, nullptr,
                             costs.empty() ? nullptr : &costs);
  // Per-batch server spans when CCC_OBS_TRACE names an output file; the
  // /debug/trace endpoint toggles the writer at runtime without a restart.
  const std::unique_ptr<obs::TraceEventWriter> trace_writer =
      obs::TraceEventWriter::from_env();
  if (trace_writer != nullptr) server.set_trace_writer(trace_writer.get());
  server.start();
  server::stop_on_signals(server);

  std::cout << "ccc-serverd: listening cache=" << options.bind_address << ":"
            << server.port();
  if (options.metrics)
    std::cout << " metrics=" << options.bind_address << ":"
              << server.metrics_port();
  std::cout << " shards=" << cache_options.num_shards
            << " tenants=" << tenants
            << " capacity=" << cache_options.capacity
            << " hitpath=" << hitpath << std::endl;  // flush: scripts pipe us

  return server.run();
}

}  // namespace
}  // namespace ccc

int main(int argc, char** argv) {
  try {
    return ccc::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "ccc-serverd: " << e.what() << "\n";
    return 1;
  }
}
