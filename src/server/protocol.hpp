#pragma once
/// \file protocol.hpp
/// \brief Wire codec of the cache-server's length-prefixed pipelined binary
///        protocol — a pure in-memory layer with no socket types, so unit
///        tests and the fuzzer drive it byte-for-byte without a network.
///
/// Every frame, request or response, has the same envelope (little-endian):
///
///   u32 length     — bytes that FOLLOW this field (prefix + body)
///   u32 magic      = kMagic ("CCP1")
///   u8  version    = kVersion
///   u8  code       — request: opcode (GET/SET/STATS/REBALANCE); response:
///                    status
///   u16 reserved   = 0
///   ... body ...
///
/// Request body (12 bytes): u32 tenant, u64 page. STATS and REBALANCE carry
/// the same body with both fields zero, so every v1 request frame is exactly
/// kRequestFrameBytes long and the decoder can reject any other length as
/// malformed before buffering a single body byte.
///
/// Response body: u64 value (opcode-specific; 0 for GET/SET/errors),
/// followed by an optional tail — STATS responses append the per-tenant
/// books (see StatsPayload). Responses are returned strictly in request
/// order per connection, which is what makes pipelining unambiguous
/// without per-frame sequence numbers.
///
/// Framing errors (bad magic/version/reserved, undersized or oversized
/// length) poison the stream: after garbage there is no way to re-find a
/// frame boundary, so the decoder reports the error for every subsequent
/// feed and the server answers with one kMalformed reply and closes that
/// connection — other connections are unaffected. Well-framed but invalid
/// requests (unknown opcode, tenant out of range, page/tenant mismatch)
/// are NOT framing errors: they earn an in-order kBadRequest response and
/// the connection lives on.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/types.hpp"

namespace ccc::server {

inline constexpr std::uint32_t kMagic = 0x31504343;  // "CCP1" little-endian
inline constexpr std::uint8_t kVersion = 1;

/// Bytes between the length field and the body: magic, version, code,
/// reserved.
inline constexpr std::size_t kFramePrefixBytes = 8;
/// Request body: u32 tenant + u64 page.
inline constexpr std::size_t kRequestBodyBytes = 12;
/// A complete request frame on the wire, length field included.
inline constexpr std::size_t kRequestFrameBytes =
    4 + kFramePrefixBytes + kRequestBodyBytes;
/// Response body prefix: u64 value (tail, if any, follows).
inline constexpr std::size_t kResponseBodyBytes = 8;

enum class Opcode : std::uint8_t {
  kGet = 1,    ///< access the page; response status reports hit or miss
  kSet = 2,    ///< ensure the page is resident; response status is kOk
  kStats = 3,  ///< fetch the per-tenant books; response carries StatsPayload
  /// Recompute the capacity split from live shard stats and apply it
  /// (ShardedCache::rebalance). Runs after the connection's pending batch
  /// flushes, so a client that pipelines requests before REBALANCE knows
  /// they are all in the books when the kOk response arrives. Body is the
  /// zero 12-byte request body, like STATS.
  kRebalance = 4,
};

enum class Status : std::uint8_t {
  kHit = 0,
  kMiss = 1,
  kOk = 2,
  /// Well-framed but unserviceable request (unknown opcode, tenant out of
  /// range, page not owned by the claimed tenant). Connection survives.
  kBadRequest = 3,
  /// Framing violation; this is the last frame on the connection.
  kMalformed = 4,
};

/// Why the decoder rejected the stream.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kBadLength,   ///< length field smaller than the frame prefix
  kOversized,   ///< length field exceeds the decoder's max body size
  kBadMagic,
  kBadVersion,
  kBadReserved,
};

/// A decoded frame. `body` points into the decoder's internal buffer and is
/// valid only for the duration of the sink callback.
struct FrameView {
  std::uint8_t code = 0;
  std::span<const std::uint8_t> body;
};

/// Incremental frame decoder for one byte stream. Feed it whatever the
/// socket produced — single bytes, half frames, ten pipelined frames at
/// once — and it emits each complete well-formed frame exactly once, in
/// order. The first framing error poisons the decoder permanently (see the
/// file comment for why resynchronization is impossible).
class FrameDecoder {
 public:
  using Sink = std::function<void(const FrameView&)>;

  /// `max_body_bytes` bounds the body size this peer is willing to buffer;
  /// a length field promising more is rejected as kOversized *immediately*,
  /// before any of the oversized body arrives.
  explicit FrameDecoder(std::size_t max_body_bytes);

  /// Appends `bytes` and invokes `sink` for every complete frame now
  /// available. Returns kNone while the stream is healthy; after an error,
  /// returns that error now and on every subsequent call without invoking
  /// the sink again.
  DecodeError feed(std::span<const std::uint8_t> bytes, const Sink& sink);
  DecodeError feed(std::string_view bytes, const Sink& sink);

  [[nodiscard]] DecodeError error() const noexcept { return error_; }
  /// Bytes buffered awaiting a complete frame (0 right after a frame ends).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }
  [[nodiscard]] std::size_t max_body_bytes() const noexcept {
    return max_body_bytes_;
  }

 private:
  std::size_t max_body_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already emitted
  DecodeError error_ = DecodeError::kNone;
};

/// One parsed request frame. `opcode` is the raw byte — the caller decides
/// how to answer unknown values (kBadRequest), so a new opcode added to one
/// side degrades gracefully instead of killing connections.
struct RequestMsg {
  std::uint8_t opcode = 0;
  TenantId tenant = 0;
  PageId page = 0;
};

/// One parsed response frame (client side). `tail` aliases the FrameView
/// body — copy it before the sink returns if it must outlive the frame.
struct ResponseMsg {
  std::uint8_t status = 0;
  std::uint64_t value = 0;
  std::span<const std::uint8_t> tail;
};

/// Per-tenant books carried by a STATS response, plus enough of the
/// server's configuration for a client to sanity-check its own.
struct StatsPayload {
  std::uint32_t num_tenants = 0;
  std::uint32_t num_shards = 0;
  std::uint64_t capacity = 0;
  std::uint64_t lockfree_hits = 0;  ///< hits served by the seqlock fast path
  std::vector<std::uint64_t> hits;       ///< one entry per tenant
  std::vector<std::uint64_t> misses;
  std::vector<std::uint64_t> evictions;
};

// ---- encoding (append to a byte string acting as an output buffer) ----

void append_request(std::string& out, Opcode opcode, TenantId tenant,
                    PageId page);
void append_response(std::string& out, Status status, std::uint64_t value = 0,
                     std::span<const std::uint8_t> tail = {});
/// Serializes the stats books into `out` (the tail of a kOk response).
void append_stats_body(std::string& out, const StatsPayload& stats);

// ---- parsing (body layout checks; framing is the decoder's job) ----

/// nullopt iff the body is not exactly kRequestBodyBytes.
[[nodiscard]] std::optional<RequestMsg> parse_request(const FrameView& frame);
/// nullopt iff the body is shorter than kResponseBodyBytes.
[[nodiscard]] std::optional<ResponseMsg> parse_response(const FrameView& frame);
/// nullopt unless `tail` is a complete, self-consistent stats serialization.
[[nodiscard]] std::optional<StatsPayload> parse_stats_body(
    std::span<const std::uint8_t> tail);

}  // namespace ccc::server
