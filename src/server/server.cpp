/// \file server.cpp
/// \brief epoll event loop, request batching, metrics endpoint, shutdown.

#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "server/http.hpp"
#include "server/protocol.hpp"

namespace ccc::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Monotonic nanoseconds for the stage stamps (steady clock, comparable
/// only within this process).
std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// epoll user-data sentinels for the non-connection fds; connection events
/// carry the Connection pointer instead (always > kSentinelMax).
constexpr std::uint64_t kCacheListener = 1;
constexpr std::uint64_t kMetricsListener = 2;
constexpr std::uint64_t kWakePipe = 3;
constexpr std::uint64_t kSentinelMax = 3;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

int make_listener(const std::string& address, std::uint16_t port,
                  std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address: " + address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd, 128) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("getsockname");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace

/// Per-connection state. `metrics` connections speak HTTP; the rest speak
/// the binary protocol. All fields are touched only by the loop thread.
struct CacheServer::Connection {
  int fd = -1;
  bool metrics = false;
  bool closed = false;
  bool close_after_flush = false;
  bool read_paused = false;
  std::uint32_t epoll_mask = 0;  ///< events currently registered

  FrameDecoder decoder{kRequestBodyBytes};
  /// Contiguous run of GET/SET requests awaiting one access_batch call;
  /// `pending_ops[i]` is the opcode that produced `pending[i]` (SET
  /// responses say kOk where GET says kHit/kMiss).
  std::vector<Request> pending;
  std::vector<std::uint8_t> pending_ops;

  std::string out;
  std::size_t out_off = 0;
  std::string http_in;
  std::uint64_t requests_served = 0;
  /// Decode stamp of the oldest request in `pending` (0 = none): the queue
  /// stage of the latency attribution measures from here to batch start.
  std::uint64_t first_enqueue_ns = 0;
};

CacheServer::CacheServer(ServerOptions options,
                         ShardedCacheOptions cache_options,
                         PolicyFactory factory,
                         const std::vector<CostFunctionPtr>* costs)
    : options_(std::move(options)),
      cache_(cache_options, std::move(factory), costs),
      costs_(costs) {}

CacheServer::~CacheServer() {
  for (auto& conn : connections_)
    if (conn->fd >= 0) ::close(conn->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_listen_fd_ >= 0) ::close(metrics_listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void CacheServer::start() {
  if (started_) throw std::runtime_error("CacheServer::start called twice");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) throw_errno("pipe2");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  listen_fd_ = make_listener(options_.bind_address, options_.port, port_);
  if (options_.metrics)
    metrics_listen_fd_ =
        make_listener(options_.bind_address, options_.metrics_port,
                      metrics_port_);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kCacheListener;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
    throw_errno("epoll_ctl(listener)");
  if (metrics_listen_fd_ >= 0) {
    ev.data.u64 = kMetricsListener;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, metrics_listen_fd_, &ev) != 0)
      throw_errno("epoll_ctl(metrics listener)");
  }
  ev.data.u64 = kWakePipe;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0)
    throw_errno("epoll_ctl(wake pipe)");

  started_ = true;
}

int CacheServer::run() {
  if (!started_) throw std::runtime_error("CacheServer::run without start");
  event_loop();
  drain_and_exit();
  return 0;
}

void CacheServer::request_stop() noexcept {
  if (wake_write_fd_ < 0) return;
  const char byte = 's';
  // A full pipe means a wake is already pending — mission accomplished.
  (void)!::write(wake_write_fd_, &byte, 1);
}

void CacheServer::event_loop() {
  std::array<epoll_event, 128> events{};
  while (!stopping_) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kWakePipe) {
        stopping_ = true;
        continue;
      }
      if (ev.data.u64 == kCacheListener) {
        accept_ready(listen_fd_, /*metrics_listener=*/false);
        continue;
      }
      if (ev.data.u64 == kMetricsListener) {
        accept_ready(metrics_listen_fd_, /*metrics_listener=*/true);
        continue;
      }
      auto* conn = static_cast<Connection*>(ev.data.ptr);
      if (conn == nullptr || conn->closed) continue;
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (ev.events & EPOLLIN) == 0) {
        close_connection(*conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) flush_output(*conn);
      if (!conn->closed && (ev.events & EPOLLIN) != 0) handle_readable(*conn);
    }
    // Reap closed connections after the event batch: an event later in the
    // batch may still reference a connection closed by an earlier one.
    std::erase_if(connections_,
                  [](const std::unique_ptr<Connection>& c) {
                    return c->closed;
                  });
  }
}

void CacheServer::accept_ready(int listener_fd, bool metrics_listener) {
  while (true) {
    const int fd = ::accept4(listener_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // transient accept failures shed load, they don't kill the loop
    }
    if (!metrics_listener &&
        cache_connections_ >= options_.max_connections) {
      ::close(fd);
      ++counters_.connections_rejected;
      continue;
    }
    if (!metrics_listener) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (options_.so_sndbuf > 0) {
        const int sndbuf = static_cast<int>(options_.so_sndbuf);
        (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof sndbuf);
      }
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->metrics = metrics_listener;
    conn->epoll_mask = EPOLLIN;
    epoll_event ev{};
    ev.events = conn->epoll_mask;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    ++counters_.connections_accepted;
    if (!metrics_listener) ++cache_connections_;
    connections_.push_back(std::move(conn));
  }
}

void CacheServer::handle_readable(Connection& conn) {
  // Read until EAGAIN, with a per-event byte cap so one firehose
  // connection cannot starve the rest (level-triggered epoll re-notifies).
  const std::size_t read_cap = options_.read_chunk * 16;
  std::size_t read_total = 0;
  static thread_local std::vector<char> chunk;
  chunk.resize(options_.read_chunk);
  while (read_total < read_cap && !conn.closed && !conn.close_after_flush) {
    const ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
    if (n == 0) {
      // Peer closed. Serve whatever complete frames arrived (the books
      // must reflect every request the kernel delivered), then drop the
      // connection and any half-frame with it.
      flush_pending_batch(conn);
      close_connection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn);
      return;
    }
    counters_.bytes_read += static_cast<std::uint64_t>(n);
    read_total += static_cast<std::size_t>(n);
    const std::string_view bytes(chunk.data(), static_cast<std::size_t>(n));
    if (conn.metrics)
      handle_metrics_bytes(conn, bytes);
    else
      handle_cache_bytes(conn, bytes);
  }
  if (!conn.closed) {
    flush_pending_batch(conn);
    flush_output(conn);
  }
}

void CacheServer::handle_cache_bytes(Connection& conn,
                                     std::string_view bytes) {
  // One stamp per read chunk: every request decoded from this chunk shares
  // it as its arrival time — cheap (two clock reads per chunk, not per
  // frame) and accurate to within one chunk's decode time. Batch-limit
  // flushes run *inside* the decoder callback; their wall time accumulates
  // in chunk_batch_ns_ and is excluded so the decode stage measures only
  // frame parsing.
  const std::uint64_t decode_start_ns = now_ns();
  chunk_batch_ns_ = 0;
  const DecodeError err = conn.decoder.feed(
      bytes, [this, &conn, decode_start_ns](const FrameView& frame) {
        ++counters_.frames;
        const std::optional<RequestMsg> msg = parse_request(frame);
        // A body-size mismatch cannot happen here (the decoder's max body
        // equals the request body size and shorter lengths parse as a
        // wrong-sized body), but keep the guard honest.
        if (!msg.has_value()) {
          flush_pending_batch(conn);
          append_response(conn.out, Status::kBadRequest);
          ++counters_.bad_requests;
          return;
        }
        switch (static_cast<Opcode>(msg->opcode)) {
          case Opcode::kGet:
          case Opcode::kSet: {
            // Reject what the cache would reject — out-of-range tenants
            // throw in ShardedCache, and a page id whose high bits do not
            // encode its claimed owner violates the paper's disjoint page
            // sets (types.hpp). ~0 is FlatMap's reserved key.
            if (msg->tenant >= cache_.num_tenants() ||
                page_owner(msg->page) != msg->tenant ||
                msg->page == ~PageId{0}) {
              flush_pending_batch(conn);
              append_response(conn.out, Status::kBadRequest);
              ++counters_.bad_requests;
              return;
            }
            if (conn.pending.empty()) conn.first_enqueue_ns = decode_start_ns;
            conn.pending.push_back(Request{msg->tenant, msg->page});
            conn.pending_ops.push_back(msg->opcode);
            if (conn.pending.size() >= options_.batch_limit)
              flush_pending_batch(conn);
            return;
          }
          case Opcode::kStats:
            flush_pending_batch(conn);
            queue_stats_response(conn);
            ++counters_.stats_requests;
            return;
          case Opcode::kRebalance:
            // Flush first so the split sees this connection's pipelined
            // requests; other connections' batches flush on their own
            // readiness events, so a client wanting a deterministic
            // boundary must quiesce them (how e11's segment barriers do
            // it). rebalance() resizes each shard under its mutex — under
            // kSeqlock the table rebuild runs in an odd seq window — so
            // serving it from the loop thread is safe mid-traffic.
            flush_pending_batch(conn);
            cache_.rebalance();
            append_response(conn.out, Status::kOk);
            ++counters_.rebalance_requests;
            return;
        }
        flush_pending_batch(conn);
        append_response(conn.out, Status::kBadRequest);
        ++counters_.bad_requests;
      });
  const std::uint64_t decode_elapsed_ns = now_ns() - decode_start_ns;
  stage_decode_ns_hist_.record(decode_elapsed_ns > chunk_batch_ns_
                                   ? decode_elapsed_ns - chunk_batch_ns_
                                   : 0);
  if (err != DecodeError::kNone) {
    // Framing is unrecoverable: answer everything decoded so far, send one
    // kMalformed marker and close — this connection only.
    flush_pending_batch(conn);
    append_response(conn.out, Status::kMalformed,
                    static_cast<std::uint64_t>(err));
    ++counters_.protocol_errors;
    conn.close_after_flush = true;
  }
}

void CacheServer::flush_pending_batch(Connection& conn) {
  if (conn.pending.empty()) return;
  static thread_local std::vector<StepEvent> events;
  events.clear();
  // Stage stamps: queue = first enqueue → here; cache = access_batch;
  // encode = response serialization. Four clock reads per *batch* — the
  // per-request hit path is untouched (gated by the e11 regression cells).
  const std::uint64_t batch_start_ns = now_ns();
  const std::uint64_t queue_ns =
      conn.first_enqueue_ns != 0 && batch_start_ns > conn.first_enqueue_ns
          ? batch_start_ns - conn.first_enqueue_ns
          : 0;
  cache_.access_batch(std::span<const Request>(conn.pending), events);
  const std::uint64_t cache_done_ns = now_ns();
  const std::uint64_t cache_ns = cache_done_ns - batch_start_ns;
  batch_latency_ns_hist_.record(cache_ns);
  batch_size_hist_.record(conn.pending.size());
  ++counters_.batches;
  counters_.requests += conn.pending.size();
  conn.requests_served += conn.pending.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (static_cast<Opcode>(conn.pending_ops[i]) == Opcode::kSet)
      append_response(conn.out, Status::kOk);
    else
      append_response(conn.out,
                      events[i].hit ? Status::kHit : Status::kMiss);
  }
  const std::uint64_t encode_done_ns = now_ns();
  const std::uint64_t encode_ns = encode_done_ns - cache_done_ns;
  stage_queue_ns_hist_.record(queue_ns);
  stage_cache_ns_hist_.record(cache_ns);
  stage_encode_ns_hist_.record(encode_ns);
  chunk_batch_ns_ += encode_done_ns - batch_start_ns;

  // Slow-request ring: attribute the batch to its oldest request (the one
  // that waited the full queue stage — the worst off in the batch).
  obs::SlowRequest slow;
  slow.queue_ns = queue_ns;
  slow.cache_ns = cache_ns;
  slow.encode_ns = encode_ns;
  slow.total_ns = queue_ns + cache_ns + encode_ns;
  slow.tenant = conn.pending.front().tenant;
  slow.page = conn.pending.front().page;
  slow.batch_size = static_cast<std::uint32_t>(conn.pending.size());
  slow_ring_.offer(slow);

  if (trace_writer_ != nullptr) {
    // complete_event drops the span itself when /debug/trace turned the
    // writer off — no second flag to keep in sync here. The span starts
    // at the first enqueue (queue + cache + encode ago).
    const std::uint64_t dur_us = slow.total_ns / 1000;
    const std::uint64_t end_us = trace_writer_->now_us();
    trace_writer_->complete_event(
        "batch", "server", end_us > dur_us ? end_us - dur_us : 0, dur_us,
        {{"size", conn.pending.size()},
         {"tenant", slow.tenant},
         {"queue_ns", queue_ns},
         {"cache_ns", cache_ns},
         {"encode_ns", encode_ns}});
  }

  conn.pending.clear();
  conn.pending_ops.clear();
  conn.first_enqueue_ns = 0;
}

void CacheServer::queue_stats_response(Connection& conn) {
  const Metrics metrics = cache_.aggregated_metrics();
  StatsPayload stats;
  stats.num_tenants = cache_.num_tenants();
  stats.num_shards = static_cast<std::uint32_t>(cache_.num_shards());
  stats.capacity = cache_.total_capacity();
  stats.lockfree_hits = cache_.aggregated_perf().lockfree_hits;
  stats.hits.reserve(stats.num_tenants);
  stats.misses.reserve(stats.num_tenants);
  stats.evictions.reserve(stats.num_tenants);
  for (TenantId t = 0; t < stats.num_tenants; ++t) {
    stats.hits.push_back(metrics.hits(t));
    stats.misses.push_back(metrics.misses(t));
    stats.evictions.push_back(metrics.evictions(t));
  }
  std::string body;
  append_stats_body(body, stats);
  append_response(conn.out, Status::kOk, 0,
                  std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(body.data()),
                      body.size()));
}

void CacheServer::handle_metrics_bytes(Connection& conn,
                                       std::string_view bytes) {
  conn.http_in.append(bytes);
  HttpRequest request;
  std::size_t consumed = 0;
  const HttpParse parse = parse_http_head(conn.http_in, request, consumed);
  if (parse == HttpParse::kNeedMore) return;
  if (parse == HttpParse::kBad) {
    conn.out += make_http_response(400, "text/plain", "bad request\n");
    conn.close_after_flush = true;
    return;
  }
  conn.http_in.erase(0, consumed);
  handle_http_request(conn, request.method, request.target);
  conn.close_after_flush = true;
}

void CacheServer::handle_http_request(Connection& conn,
                                      const std::string& method,
                                      const std::string& target) {
  // HEAD gets the GET headers and Content-Length, no body (http.hpp).
  const bool head = method == "HEAD";
  if (method != "GET" && !head) {
    conn.out +=
        make_http_response(405, "text/plain", "method not allowed\n");
    return;
  }
  const std::size_t query_at = target.find('?');
  const std::string path = target.substr(0, query_at);
  const std::string query =
      query_at == std::string::npos ? "" : target.substr(query_at + 1);

  if (path == "/metrics") {
    obs::MetricsRegistry registry;
    fill_metrics(registry);
    std::ostringstream page;
    registry.write_prometheus(page);
    conn.out += make_http_response(200, std::string(kPrometheusContentType),
                                  page.str(), head);
    ++counters_.metrics_scrapes;
    return;
  }
  if (path == "/debug/costs") {
    conn.out +=
        make_http_response(200, "application/json", debug_costs_json(), head);
    ++counters_.debug_requests;
    return;
  }
  if (path == "/debug/slow") {
    conn.out +=
        make_http_response(200, "application/json", debug_slow_json(), head);
    ++counters_.debug_requests;
    return;
  }
  if (path == "/debug/trace") {
    if (trace_writer_ == nullptr) {
      conn.out += make_http_response(
          400, "application/json",
          "{\"error\": \"tracing not configured — start with CCC_OBS_TRACE "
          "set\"}\n",
          head);
      return;
    }
    if (query == "on") trace_writer_->set_enabled(true);
    if (query == "off") trace_writer_->set_enabled(false);
    conn.out += make_http_response(
        200, "application/json",
        trace_writer_->enabled() ? "{\"tracing\": true}\n"
                                 : "{\"tracing\": false}\n",
        head);
    ++counters_.debug_requests;
    return;
  }
  if (path.rfind("/debug/hist/", 0) == 0) {
    const auto [found, body] =
        debug_hist_json(std::string_view(path).substr(12));
    conn.out += make_http_response(found ? 200 : 404, "application/json",
                                   body, head);
    ++counters_.debug_requests;
    return;
  }
  conn.out += make_http_response(404, "text/plain", "not found\n", head);
}

std::string CacheServer::debug_costs_json() const {
  std::ostringstream os;
  if (costs_ == nullptr) {
    os << "{\"error\": \"no cost functions configured\"}\n";
    return os.str();
  }
  const obs::CostSnapshot snap = obs::CostTracker::collect(cache_).snapshot(
      *costs_, cache_.total_capacity());
  os << "{\n  \"certified\": " << (snap.certified ? "true" : "false")
     << ",\n  \"cost_total\": " << snap.cost_total
     << ",\n  \"dual_lower_bound\": " << snap.dual_lower_bound
     << ",\n  \"competitive_ratio\": " << snap.competitive_ratio
     << ",\n  \"theorem_alpha_k\": " << snap.theorem_alpha_k
     << ",\n  \"theorem_ratio_bound\": " << snap.theorem_ratio_bound
     << ",\n  \"tenants\": [";
  for (std::size_t t = 0; t < snap.tenant_cost.size(); ++t) {
    if (t != 0) os << ",";
    os << "\n    {\"tenant\": " << t << ", \"cost\": " << snap.tenant_cost[t]
       << ", \"lower_bound\": " << snap.tenant_lower_bound[t]
       << ", \"ratio\": " << snap.tenant_ratio[t] << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string CacheServer::debug_slow_json() const {
  const std::vector<obs::SlowRequest> slow = slow_ring_.snapshot();
  std::ostringstream os;
  os << "{\n  \"capacity\": " << slow_ring_.capacity()
     << ",\n  \"requests\": [";
  for (std::size_t i = 0; i < slow.size(); ++i) {
    const obs::SlowRequest& r = slow[i];
    if (i != 0) os << ",";
    os << "\n    {\"total_ns\": " << r.total_ns
       << ", \"tenant\": " << r.tenant << ", \"page\": " << r.page
       << ", \"batch_size\": " << r.batch_size
       << ", \"queue_ns\": " << r.queue_ns
       << ", \"cache_ns\": " << r.cache_ns
       << ", \"encode_ns\": " << r.encode_ns << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::pair<bool, std::string> CacheServer::debug_hist_json(
    std::string_view name) const {
  obs::MetricsRegistry registry;
  fill_metrics(registry);
  const obs::MetricFamily* family = registry.find(std::string(name));
  if (family == nullptr || family->kind != obs::MetricKind::kHistogram) {
    // 404 body lists what *would* work, so the endpoint is discoverable.
    std::ostringstream os;
    os << "{\"error\": \"no histogram named '" << name
       << "'\", \"histograms\": [";
    bool first = true;
    for (const obs::MetricFamily& f : registry.families()) {
      if (f.kind != obs::MetricKind::kHistogram) continue;
      if (!first) os << ", ";
      first = false;
      os << '"' << f.name << '"';
    }
    os << "]}\n";
    return {false, os.str()};
  }
  std::ostringstream os;
  os << "{\n  \"name\": \"" << family->name << "\",\n  \"help\": \""
     << family->help << "\",\n  \"samples\": [";
  for (std::size_t s = 0; s < family->histograms.size(); ++s) {
    const obs::HistogramSample& sample = family->histograms[s];
    if (s != 0) os << ",";
    os << "\n    {\"labels\": {";
    for (std::size_t l = 0; l < sample.labels.size(); ++l) {
      if (l != 0) os << ", ";
      os << '"' << sample.labels[l].first << "\": \""
         << sample.labels[l].second << '"';
    }
    const obs::HistogramSnapshot& snap = sample.snapshot;
    os << "}, \"count\": " << snap.count << ", \"sum\": " << snap.sum
       << ", \"min\": " << snap.min << ", \"max\": " << snap.max
       << ", \"p50\": " << snap.quantile(0.50)
       << ", \"p99\": " << snap.quantile(0.99)
       << ", \"p999\": " << snap.quantile(0.999) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      if (!first_bucket) os << ", ";
      first_bucket = false;
      os << '[' << obs::Histogram::bucket_high(i) << ", " << snap.buckets[i]
         << ']';
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  return {true, os.str()};
}

void CacheServer::fill_metrics(obs::MetricsRegistry& registry) const {
  const ServerCounters& c = counters_;
  const auto counter = [&registry](const char* name, const char* help,
                                   std::uint64_t value) {
    registry.set_counter(name, help, {}, static_cast<double>(value));
  };
  counter("ccc_server_connections_accepted_total",
          "Connections accepted on the cache port", c.connections_accepted);
  counter("ccc_server_connections_rejected_total",
          "Connections refused over max_connections", c.connections_rejected);
  counter("ccc_server_connections_closed_total", "Connections closed",
          c.connections_closed);
  registry.set_gauge("ccc_server_connections_active",
                     "Cache-protocol connections currently open", {},
                     static_cast<double>(cache_connections_));
  counter("ccc_server_frames_total", "Well-formed frames decoded", c.frames);
  counter("ccc_server_requests_total", "GET/SET requests served", c.requests);
  counter("ccc_server_stats_requests_total", "STATS requests served",
          c.stats_requests);
  counter("ccc_server_rebalance_requests_total",
          "REBALANCE requests applied", c.rebalance_requests);
  counter("ccc_server_bad_requests_total",
          "Well-framed but unserviceable requests", c.bad_requests);
  counter("ccc_server_protocol_errors_total",
          "Framing errors (fatal per connection)", c.protocol_errors);
  counter("ccc_server_batches_total", "access_batch calls", c.batches);
  counter("ccc_server_bytes_read_total", "Bytes read from cache connections",
          c.bytes_read);
  counter("ccc_server_bytes_written_total", "Bytes written to clients",
          c.bytes_written);
  counter("ccc_server_metrics_scrapes_total", "/metrics responses served",
          c.metrics_scrapes);
  counter("ccc_server_debug_requests_total", "/debug/* responses served",
          c.debug_requests);
  counter("ccc_server_reads_paused_total",
          "Backpressure activations (output backlog over limit)",
          c.reads_paused);
  registry.set_histogram("ccc_server_batch_size",
                         "Requests folded into one access_batch call", {},
                         batch_size_hist_.snapshot());
  registry.set_histogram("ccc_server_batch_latency_ns",
                         "access_batch service time per batch", {},
                         batch_latency_ns_hist_.snapshot());
  registry.set_histogram("ccc_server_connection_requests",
                         "Requests served per closed connection", {},
                         connection_requests_hist_.snapshot());
  // One family, one sample per stage: decode (frame parsing per read
  // chunk), queue (first enqueue → batch start), cache (access_batch),
  // encode (response serialization), flush (socket writes).
  const auto stage = [&registry](const char* name,
                                 const obs::Histogram& hist) {
    registry.set_histogram("ccc_server_stage_latency_ns",
                           "Per-stage request latency attribution",
                           {{"stage", name}}, hist.snapshot());
  };
  stage("decode", stage_decode_ns_hist_);
  stage("queue", stage_queue_ns_hist_);
  stage("cache", stage_cache_ns_hist_);
  stage("encode", stage_encode_ns_hist_);
  stage("flush", stage_flush_ns_hist_);
  obs::snapshot_sharded(registry, cache_);
}

void CacheServer::flush_output(Connection& conn) {
  // Flush stage: recorded only when there is output to push, so idle
  // wakeups do not flood the histogram with zeros.
  const bool had_output = conn.out_off < conn.out.size();
  const std::uint64_t flush_start_ns = had_output ? now_ns() : 0;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn);
      return;
    }
    counters_.bytes_written += static_cast<std::uint64_t>(n);
    conn.out_off += static_cast<std::size_t>(n);
  }
  if (had_output) stage_flush_ns_hist_.record(now_ns() - flush_start_ns);
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      close_connection(conn);
      return;
    }
  }
  const std::size_t backlog = conn.out.size() - conn.out_off;
  if (!conn.read_paused && backlog > options_.max_output_backlog) {
    conn.read_paused = true;
    ++counters_.reads_paused;
  } else if (conn.read_paused && backlog <= options_.max_output_backlog / 2) {
    conn.read_paused = false;
  }
  update_epoll(conn);
}

void CacheServer::update_epoll(Connection& conn) {
  if (conn.closed) return;
  std::uint32_t mask = 0;
  if (!conn.read_paused && !conn.close_after_flush) mask |= EPOLLIN;
  if (conn.out_off < conn.out.size()) mask |= EPOLLOUT;
  if (mask == conn.epoll_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.ptr = &conn;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
    conn.epoll_mask = mask;
}

void CacheServer::close_connection(Connection& conn) {
  if (conn.closed) return;
  conn.closed = true;
  if (!conn.metrics) {
    --cache_connections_;
    connection_requests_hist_.record(conn.requests_served);
  }
  ++counters_.connections_closed;
  ::close(conn.fd);  // removes it from the epoll set too
  conn.fd = -1;
}

void CacheServer::drain_and_exit() {
  // 1. Stop accepting: new connections get RST/refused once the listeners
  //    close; already-accepted ones are served to completion below.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_listen_fd_ >= 0) {
    ::close(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
  }

  // 2. Final read-drain: serve every complete frame the kernel has already
  //    queued for us, so no pipelined in-flight request goes unanswered.
  for (auto& conn : connections_)
    if (!conn->closed && !conn->metrics) handle_readable(*conn);

  // 3. Flush pending responses under a deadline.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.drain_deadline_seconds));
  std::array<epoll_event, 64> events{};
  while (Clock::now() < deadline) {
    bool backlog = false;
    for (auto& conn : connections_)
      if (!conn->closed && conn->out_off < conn->out.size()) backlog = true;
    if (!backlog) break;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 <= kSentinelMax) continue;
      auto* conn = static_cast<Connection*>(ev.data.ptr);
      if (conn == nullptr || conn->closed) continue;
      if ((ev.events & EPOLLOUT) != 0) flush_output(*conn);
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) close_connection(*conn);
    }
  }

  for (auto& conn : connections_)
    if (!conn->closed) close_connection(*conn);
  connections_.clear();

  // 4. Flush the books: one parseable summary line on stdout.
  const Metrics metrics = cache_.aggregated_metrics();
  std::cout << "ccc-serverd: graceful shutdown — requests="
            << counters_.requests << " hits=" << metrics.total_hits()
            << " misses=" << metrics.total_misses()
            << " evictions=" << metrics.total_evictions()
            << " connections=" << counters_.connections_accepted
            << " protocol_errors=" << counters_.protocol_errors;
  if (cache_.has_costs())
    std::cout << " miss_cost=" << cache_.global_miss_cost();
  std::cout << "\n" << std::flush;
}

namespace {

// The signal glue: handlers may fire on any thread at any time, so all
// they do is write one byte to the registered wake fd (async-signal-safe).
std::atomic<int> g_signal_wake_fd{-1};

void signal_stop_handler(int /*signo*/) {
  const int fd = g_signal_wake_fd.load();
  if (fd >= 0) {
    const char byte = 's';
    (void)!::write(fd, &byte, 1);
  }
}

}  // namespace

void stop_on_signals(CacheServer& server) {
  g_signal_wake_fd.store(server.wake_fd());
  struct sigaction sa{};
  sa.sa_handler = signal_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  (void)::sigaction(SIGTERM, &sa, nullptr);
  (void)::sigaction(SIGINT, &sa, nullptr);
}

}  // namespace ccc::server
