/// \file fuzz_trace_io.cpp
/// \brief Fuzz harness for the trace loaders (text + binary).
///
/// The loaders' documented contract is: any malformed input — framing or
/// content — throws `std::runtime_error`, nothing else. The harness feeds
/// arbitrary bytes to both loaders and treats any *other* escaping
/// exception (or a crash/sanitizer report) as a finding. This is exactly
/// the bug class the loaders shipped with: out-of-range tenant ids and
/// non-disjoint page sets used to leak `std::invalid_argument` from the
/// Trace constructor.
///
/// Build modes (see fuzz/CMakeLists.txt, gated behind CCC_FUZZ):
///  - Clang: a real libFuzzer binary (`-fsanitize=fuzzer`, the
///    `CCC_FUZZ_LIBFUZZER` define suppresses the standalone main).
///  - Any other compiler: a standalone corpus runner whose main() replays
///    the files/directories given on the command line — enough for the
///    ctest smoke test and for reproducing a crashing input under gdb.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream is(bytes);
    try {
      (void)ccc::load_trace(is);
    } catch (const std::runtime_error&) {
      // Documented rejection of malformed input.
    }
  }
  {
    std::istringstream is(bytes);
    try {
      (void)ccc::load_trace_binary(is);
    } catch (const std::runtime_error&) {
    }
  }
  return 0;
}

#ifndef CCC_FUZZ_LIBFUZZER

#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "fuzz_trace_io: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  std::cout << "ok " << path.string() << " (" << bytes.size() << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fuzz_trace_io <corpus file or directory>...\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path))
        if (entry.is_regular_file()) rc |= replay_file(entry.path());
    } else {
      rc |= replay_file(path);
    }
  }
  return rc;
}

#endif  // CCC_FUZZ_LIBFUZZER
