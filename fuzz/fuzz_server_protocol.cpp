/// \file fuzz_server_protocol.cpp
/// \brief Fuzz harness for the cache-server frame decoder
///        (src/server/protocol.hpp).
///
/// The decoder's contract: arbitrary bytes never throw and never emit a
/// malformed frame — every sink callback carries a frame whose envelope
/// (magic/version/reserved, length within bounds) was validated, and the
/// first framing error poisons the stream permanently. On top of that the
/// harness checks the *reassembly invariant* the server depends on:
/// feeding the same stream byte-split in any way (the fuzzer picks the
/// chunking from the input) must emit the identical frame sequence with
/// the identical terminal error as feeding it in one piece — pipelined
/// frame boundaries cannot depend on how the kernel happened to chunk
/// reads. The body parsers (request, response, stats payload) are run on
/// every emitted frame and on the raw input, and must reject garbage with
/// nullopt, never an exception.
///
/// Build modes (see fuzz/CMakeLists.txt, gated behind CCC_FUZZ):
///  - Clang: a real libFuzzer binary (CCC_FUZZ_LIBFUZZER suppresses the
///    standalone main).
///  - Any other compiler: a standalone corpus runner for the ctest smoke
///    test and for reproducing crashes under gdb.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.hpp"

namespace {

struct Emitted {
  std::uint8_t code;
  std::vector<std::uint8_t> body;

  bool operator==(const Emitted&) const = default;
};

/// Feeds `stream` to a fresh decoder in chunks drawn from `chunker`
/// (cycling; 0 → 1 byte), recording every emitted frame and the final
/// error state.
std::pair<std::vector<Emitted>, ccc::server::DecodeError> run_decoder(
    std::span<const std::uint8_t> stream,
    std::span<const std::uint8_t> chunker, std::size_t max_body) {
  ccc::server::FrameDecoder decoder(max_body);
  std::vector<Emitted> frames;
  const auto sink = [&](const ccc::server::FrameView& frame) {
    // Envelope guarantees the decoder must have enforced already.
    if (frame.body.size() > max_body) std::abort();
    frames.push_back(Emitted{
        frame.code,
        std::vector<std::uint8_t>(frame.body.begin(), frame.body.end())});
    // Body parsers must never throw, whatever the bytes.
    (void)ccc::server::parse_request(frame);
    (void)ccc::server::parse_response(frame);
  };
  std::size_t offset = 0;
  std::size_t which = 0;
  while (offset < stream.size()) {
    std::size_t chunk = 1;
    if (!chunker.empty()) {
      chunk = std::max<std::size_t>(1, chunker[which % chunker.size()]);
      ++which;
    }
    chunk = std::min(chunk, stream.size() - offset);
    const ccc::server::DecodeError err =
        decoder.feed(stream.subspan(offset, chunk), sink);
    if (err != ccc::server::DecodeError::kNone) {
      // Poisoning must be permanent and sink-free from here on.
      const ccc::server::DecodeError again = decoder.feed(
          stream.subspan(offset, 0),
          [](const ccc::server::FrameView&) { std::abort(); });
      if (again != err) std::abort();
      return {frames, err};
    }
    offset += chunk;
  }
  return {frames, decoder.error()};
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);
  // First byte selects the decoder's max-body config, next eight drive the
  // chunking pattern, the rest is the byte stream under test.
  if (input.size() < 9) return 0;
  const std::size_t max_body = input[0] % 2 == 0
                                   ? ccc::server::kRequestBodyBytes
                                   : std::size_t{4096};
  const auto chunker = input.subspan(1, 8);
  const auto stream = input.subspan(9);

  const auto whole =
      run_decoder(stream, std::span<const std::uint8_t>(), max_body);
  const auto chunked = run_decoder(stream, chunker, max_body);
  // Reassembly invariant: chunking cannot change what was decoded.
  if (whole.first != chunked.first) std::abort();
  if (whole.second != chunked.second) std::abort();

  // The stats-payload parser must reject or accept, never throw.
  (void)ccc::server::parse_stats_body(stream);
  return 0;
}

#ifndef CCC_FUZZ_LIBFUZZER

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "fuzz_server_protocol: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  std::cout << "ok " << path.string() << " (" << bytes.size() << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr
        << "usage: fuzz_server_protocol <corpus file or directory>...\n";
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path))
        if (entry.is_regular_file()) rc |= replay_file(entry.path());
    } else {
      rc |= replay_file(path);
    }
  }
  return rc;
}

#endif  // CCC_FUZZ_LIBFUZZER
