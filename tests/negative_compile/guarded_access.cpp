// Negative-compile probe for the Clang thread-safety gate (driven by
// cmake/thread_safety_check.cmake — not part of any test binary).
//
// Without CCC_NEGATIVE_UNLOCKED_ACCESS this translation unit is a model
// citizen and must compile. With it, `unguarded_read` touches a
// CCC_GUARDED_BY field without holding the mutex; if that compiles under
// -Wthread-safety -Werror=thread-safety, the annotation machinery is
// inert and the configure step aborts.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() CCC_EXCLUDES(mutex_) {
    const ccc::util::MutexLock lock(mutex_);
    ++value_;
  }

  [[nodiscard]] long locked_read() const CCC_EXCLUDES(mutex_) {
    const ccc::util::MutexLock lock(mutex_);
    return value_;
  }

#ifdef CCC_NEGATIVE_UNLOCKED_ACCESS
  // The probe: guarded field, no lock. Must NOT compile under the gate.
  [[nodiscard]] long unguarded_read() const { return value_; }
#endif

 private:
  mutable ccc::util::Mutex mutex_;
  long value_ CCC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  long total = counter.locked_read();
#ifdef CCC_NEGATIVE_UNLOCKED_ACCESS
  total += counter.unguarded_read();
#endif
  return total == 1 ? 0 : 1;
}
