// Tests for the ALG-CONT primal–dual simulator (core/primal_dual.hpp):
// equivalence with ALG-DISCRETE and correctness of the dual bookkeeping.
#include "core/primal_dual.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/convex_caching.hpp"
#include "cost/monomial.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

std::vector<CostFunctionPtr> monomial_costs(std::uint32_t n, double beta) {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta, 1.0 + i));
  return costs;
}

TEST(AlgCont, NoEvictionsMeansZeroDuals) {
  Trace t(1);
  t.append(0, 1);
  t.append(0, 2);
  t.append(0, 1);
  const auto costs = monomial_costs(1, 2.0);
  const PrimalDualRun run = run_alg_cont(t, 2, costs);
  EXPECT_DOUBLE_EQ(run.y_total(), 0.0);
  for (const IntervalRecord& rec : run.intervals) {
    EXPECT_FALSE(rec.evicted);
    EXPECT_DOUBLE_EQ(rec.z, 0.0);
  }
  EXPECT_EQ(run.metrics.total_misses(), 2u);
  EXPECT_EQ(run.metrics.total_hits(), 1u);
}

TEST(AlgCont, YRisesByVictimResidual) {
  // Single tenant, f(x)=x² (f'=2x), k=1, trace 1 2 1 2:
  //   t1: evict 1; residual = f'(m+1) = f'(1) = 2 → y_1 = 2, m=1.
  //   t2: evict 2; residual = f'(2) − y-mass-in-interval. Page 2's interval
  //       started at t1 (after y_1), so its mass is 0 → y_2 = f'(2) = 4.
  //   t3: evict 1; page 1's interval started at t2... its interval began at
  //       t2's request of... page 1 was requested at t2 (step index 2);
  //       y_2 happened *during* step 2 before its insertion → mass 0, so
  //       y_3 = f'(3) = 6.
  Trace t(1);
  for (const int p : {1, 2, 1, 2}) t.append(0, static_cast<PageId>(p));
  const auto costs = monomial_costs(1, 2.0);
  const PrimalDualRun run = run_alg_cont(t, 1, costs);
  ASSERT_EQ(run.y.size(), 4u);
  EXPECT_DOUBLE_EQ(run.y[0], 0.0);
  EXPECT_DOUBLE_EQ(run.y[1], 2.0);
  EXPECT_DOUBLE_EQ(run.y[2], 4.0);
  EXPECT_DOUBLE_EQ(run.y[3], 6.0);
  EXPECT_EQ(run.final_m[0], 3u);
}

TEST(AlgCont, IntervalIndicesCountRequests) {
  Trace t(1);
  for (const int p : {1, 2, 1, 1}) t.append(0, static_cast<PageId>(p));
  const auto costs = monomial_costs(1, 1.0);
  const PrimalDualRun run = run_alg_cont(t, 2, costs);
  // Page 1 has intervals j=1,2,3; page 2 has j=1.
  int page1_intervals = 0, page2_intervals = 0;
  for (const IntervalRecord& rec : run.intervals) {
    if (rec.page == 1) ++page1_intervals;
    if (rec.page == 2) ++page2_intervals;
  }
  EXPECT_EQ(page1_intervals, 3);
  EXPECT_EQ(page2_intervals, 1);
}

TEST(AlgCont, ZAccruesOnlyAfterEviction) {
  // k=1, trace: 1 2 3 1. Page 1 evicted at t1 (y=f'(1)); stays out while
  // y rises at t2 and t3... its interval closes at t3. z(1, j=1) must equal
  // the y mass strictly between its eviction and its next request: y_2.
  Trace t(1);
  for (const int p : {1, 2, 3, 1}) t.append(0, static_cast<PageId>(p));
  const auto costs = monomial_costs(1, 2.0);
  const PrimalDualRun run = run_alg_cont(t, 1, costs);
  const IntervalRecord* first_interval_page1 = nullptr;
  for (const IntervalRecord& rec : run.intervals)
    if (rec.page == 1 && rec.index == 1) first_interval_page1 = &rec;
  ASSERT_NE(first_interval_page1, nullptr);
  EXPECT_TRUE(first_interval_page1->evicted);
  // y_2 is the only mass after its eviction (t1) and before its re-request
  // (t3): z = y_2.
  EXPECT_DOUBLE_EQ(first_interval_page1->z, run.y[2]);
}

// ---------------------------------------------------------------------------
// The central §2.5 claim: ALG-CONT and ALG-DISCRETE are the same algorithm.
struct EquivCase {
  std::uint64_t seed;
  double beta;
  std::uint32_t tenants;
  std::size_t k;

  friend std::ostream& operator<<(std::ostream& os, const EquivCase& c) {
    return os << "seed" << c.seed << "_beta" << c.beta << "_n" << c.tenants
              << "_k" << c.k;
  }
};

class ContDiscreteEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ContDiscreteEquivalence, EvictionSequencesCoincide) {
  const EquivCase c = GetParam();
  Rng rng(c.seed);
  const Trace t = random_uniform_trace(c.tenants, 2 * c.k, 500, rng);
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < c.tenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(c.beta, 1.0 + i));

  const PrimalDualRun cont = run_alg_cont(t, c.k, costs);
  ConvexCachingPolicy discrete;
  SimOptions options;
  options.record_events = true;
  const SimResult disc = run_trace(t, c.k, discrete, &costs, options);

  ASSERT_EQ(cont.events.size(), disc.events.size());
  for (std::size_t i = 0; i < cont.events.size(); ++i) {
    EXPECT_EQ(cont.events[i].hit, disc.events[i].hit) << "step " << i;
    EXPECT_EQ(cont.events[i].victim, disc.events[i].victim) << "step " << i;
  }
  // Same per-tenant eviction counts, too.
  for (std::uint32_t i = 0; i < c.tenants; ++i)
    EXPECT_EQ(cont.final_m[i], disc.metrics.evictions(i));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ContDiscreteEquivalence,
    ::testing::Values(EquivCase{11, 1.0, 1, 3}, EquivCase{12, 2.0, 1, 4},
                      EquivCase{13, 3.0, 2, 3}, EquivCase{14, 2.0, 2, 5},
                      EquivCase{15, 1.0, 3, 4}, EquivCase{16, 2.0, 3, 2},
                      EquivCase{17, 3.0, 3, 6}, EquivCase{18, 2.0, 4, 4}));

TEST(AlgCont, YTotalEqualsSumOfY) {
  Rng rng(44);
  const Trace t = random_uniform_trace(2, 6, 200, rng);
  const auto costs = monomial_costs(2, 2.0);
  const PrimalDualRun run = run_alg_cont(t, 3, costs);
  EXPECT_DOUBLE_EQ(run.y_total(),
                   std::accumulate(run.y.begin(), run.y.end(), 0.0));
}

}  // namespace
}  // namespace ccc
