// Fault-injection tests: the simulator must detect and reject misbehaving
// policies instead of silently corrupting the cache model.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

/// A policy that deliberately violates the victim contract.
class FaultyPolicy final : public ReplacementPolicy {
 public:
  enum class Fault {
    kNonResidentVictim,   ///< returns a page that is not in the cache
    kRequestedPage,       ///< "evicts" the page being requested
    kQuotaNonResident,    ///< quota_victim returns a non-resident page
  };

  explicit FaultyPolicy(Fault fault) : fault_(fault) {}

  void reset(const PolicyContext&) override {}

  [[nodiscard]] PageId choose_victim(const Request& request,
                                     TimeStep) override {
    if (fault_ == Fault::kRequestedPage) return request.page;
    return 0xDEADBEEF;  // never resident
  }

  [[nodiscard]] std::optional<PageId> quota_victim(const Request&,
                                                   TimeStep) override {
    if (fault_ == Fault::kQuotaNonResident) return PageId{0xDEADBEEF};
    return std::nullopt;
  }

  [[nodiscard]] std::string name() const override { return "Faulty"; }

 private:
  Fault fault_;
};

TEST(FaultInjection, NonResidentVictimDetected) {
  FaultyPolicy policy(FaultyPolicy::Fault::kNonResidentVictim);
  SimulatorSession session(1, 1, policy, nullptr);
  session.step({0, 1});
  EXPECT_THROW(session.step({0, 2}), std::logic_error);
}

TEST(FaultInjection, EvictingTheRequestedPageDetected) {
  // The requested page is not resident at eviction time, so "evicting" it
  // must fail the residency check.
  FaultyPolicy policy(FaultyPolicy::Fault::kRequestedPage);
  SimulatorSession session(1, 1, policy, nullptr);
  session.step({0, 1});
  EXPECT_THROW(session.step({0, 2}), std::logic_error);
}

TEST(FaultInjection, QuotaVictimMustBeResident) {
  FaultyPolicy policy(FaultyPolicy::Fault::kQuotaNonResident);
  SimulatorSession session(4, 1, policy, nullptr);
  EXPECT_THROW(session.step({0, 1}), std::logic_error);
}

/// A policy whose hooks throw: exceptions must propagate, not corrupt.
class ThrowingPolicy final : public ReplacementPolicy {
 public:
  void reset(const PolicyContext&) override {}
  void on_hit(const Request&, TimeStep) override {
    throw std::runtime_error("hit hook failure");
  }
  [[nodiscard]] PageId choose_victim(const Request&, TimeStep) override {
    throw std::runtime_error("victim hook failure");
  }
  [[nodiscard]] std::string name() const override { return "Throwing"; }
};

TEST(FaultInjection, HookExceptionsPropagate) {
  ThrowingPolicy policy;
  SimulatorSession session(1, 1, policy, nullptr);
  session.step({0, 1});  // miss inserts without touching faulty hooks... on_insert default no-op
  EXPECT_THROW(session.step({0, 1}), std::runtime_error);  // hit hook
  EXPECT_THROW(session.step({0, 2}), std::runtime_error);  // victim hook
}

}  // namespace
}  // namespace ccc
