// Tests for SLA window accounting (bufferpool/window_accounting.hpp).
#include "bufferpool/window_accounting.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"

namespace ccc {
namespace {

TEST(WindowAccounting, SingleWindowModeAggregatesEverything) {
  WindowAccounting acc(2, 0);
  acc.record_miss(0, 5);
  acc.record_miss(0, 500);
  acc.record_miss(1, 1000);
  acc.finish();
  const MonomialCost quad(2.0);
  EXPECT_DOUBLE_EQ(acc.tenant_cost(0, quad), 4.0);
  EXPECT_DOUBLE_EQ(acc.tenant_cost(1, quad), 1.0);
}

TEST(WindowAccounting, WindowedConvexityPenalizesBursts) {
  // Same total misses, different temporal patterns: bursty misses cost
  // more under a per-window convex cost.
  const MonomialCost quad(2.0);
  WindowAccounting bursty(1, 10), spread(1, 10);
  for (int i = 0; i < 4; ++i) bursty.record_miss(0, static_cast<TimeStep>(i));
  for (int i = 0; i < 4; ++i)
    spread.record_miss(0, static_cast<TimeStep>(i * 10));
  bursty.finish();
  spread.finish();
  EXPECT_DOUBLE_EQ(bursty.tenant_cost(0, quad), 16.0);  // 4² in one window
  EXPECT_DOUBLE_EQ(spread.tenant_cost(0, quad), 4.0);   // 1² × 4 windows
}

TEST(WindowAccounting, WindowBoundariesAreExact) {
  WindowAccounting acc(1, 5);
  acc.record_miss(0, 4);  // window 0
  acc.record_miss(0, 5);  // window 1
  acc.finish();
  const auto& windows = acc.windows(0);
  ASSERT_GE(windows.size(), 2u);
  EXPECT_EQ(windows[0], 1u);
  EXPECT_EQ(windows[1], 1u);
}

TEST(WindowAccounting, EmptyWindowsAreMaterialized) {
  WindowAccounting acc(1, 5);
  acc.record_miss(0, 0);
  acc.record_miss(0, 20);  // windows 1..3 in between are empty
  acc.finish();
  const auto& windows = acc.windows(0);
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_EQ(windows[1], 0u);
  EXPECT_EQ(windows[2], 0u);
  EXPECT_EQ(windows[3], 0u);
}

TEST(WindowAccounting, SlaRefundOnlyAboveTolerance) {
  WindowAccounting acc(1, 10);
  for (int i = 0; i < 8; ++i) acc.record_miss(0, static_cast<TimeStep>(i));
  acc.finish();
  const auto sla = PiecewiseLinearCost::sla(5.0, 2.0);
  EXPECT_DOUBLE_EQ(acc.tenant_cost(0, sla), (8.0 - 5.0) * 2.0);
}

TEST(WindowAccounting, GuardsMisuse) {
  WindowAccounting acc(1, 5);
  EXPECT_THROW(acc.record_miss(1, 0), std::invalid_argument);
  EXPECT_THROW((void)acc.tenant_cost(0, MonomialCost(1.0)),
               std::invalid_argument);  // before finish()
  acc.finish();
  EXPECT_THROW(acc.record_miss(0, 10), std::invalid_argument);
  EXPECT_THROW(WindowAccounting(0, 5), std::invalid_argument);
}

TEST(WindowAccounting, TotalCostSumsTenants) {
  WindowAccounting acc(2, 0);
  acc.record_miss(0, 0);
  acc.record_miss(0, 1);
  acc.record_miss(1, 2);
  acc.finish();
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));       // 4
  costs.push_back(std::make_unique<MonomialCost>(1.0, 3.0));  // 3
  EXPECT_DOUBLE_EQ(acc.total_cost(costs), 7.0);
}

}  // namespace
}  // namespace ccc
