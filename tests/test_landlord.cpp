// Behavioral tests for Landlord / weighted caching (policies/landlord.hpp).
#include "policies/landlord.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

std::vector<std::optional<PageId>> victims(const Trace& t, std::size_t k,
                                           ReplacementPolicy& policy,
                                           const std::vector<CostFunctionPtr>*
                                               costs = nullptr) {
  SimOptions options;
  options.record_events = true;
  const SimResult result = run_trace(t, k, policy, costs, options);
  std::vector<std::optional<PageId>> out;
  for (const StepEvent& e : result.events) out.push_back(e.victim);
  return out;
}

TEST(Landlord, CheapTenantEvictedFirst) {
  // Tenant 0 weight 1, tenant 1 weight 10.
  LandlordPolicy landlord({1.0, 10.0});
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(1, make_page(1, 0));
  t.append(0, make_page(0, 1));  // forces an eviction with k=2
  const auto v = victims(t, 2, landlord);
  EXPECT_EQ(v[2], make_page(0, 0));  // the cheap tenant's page goes
}

TEST(Landlord, DebitEventuallyEvictsExpensivePage) {
  LandlordPolicy landlord({1.0, 3.0});
  Trace t(2);
  t.append(1, make_page(1, 0));  // credit 3
  // Three cheap misses in a row debit the expensive page by 1 each time.
  t.append(0, make_page(0, 0));
  t.append(0, make_page(0, 1));  // evict cheap (credit 1 ≤ 3)
  t.append(0, make_page(0, 2));  // evict cheap again (3−1=2 remains)
  t.append(0, make_page(0, 3));  // now expensive credit 1 = cheap → tie
  const auto v = victims(t, 2, landlord);
  // After two debits the expensive page's credit is 1, tied with the fresh
  // cheap page; min-key ordering uses (credit, page id) so the expensive
  // page (higher id under make_page with tenant 1) survives ties... verify
  // the cheap pages were the first two victims at least.
  EXPECT_EQ(v[2], make_page(0, 0));
  EXPECT_EQ(v[3], make_page(0, 1));
}

TEST(Landlord, HitRefreshesCredit) {
  LandlordPolicy landlord({1.0, 1.0});
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(1, make_page(1, 0));
  t.append(0, make_page(0, 0));  // hit → refresh
  t.append(0, make_page(0, 1));  // evict: both credit 1, tie by page id
  const auto v = victims(t, 2, landlord);
  ASSERT_TRUE(v[3].has_value());
}

TEST(Landlord, DerivesWeightsFromCosts) {
  LandlordPolicy landlord;  // weights from f'(1)
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0, 1.0));   // w=1
  costs.push_back(std::make_unique<MonomialCost>(1.0, 10.0));  // w=10
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(1, make_page(1, 0));
  t.append(0, make_page(0, 1));
  const auto v = victims(t, 2, landlord, &costs);
  EXPECT_EQ(v[2], make_page(0, 0));
}

TEST(Landlord, RequiresWeightsOrCosts) {
  LandlordPolicy landlord;
  Trace t(1);
  t.append(0, 1);
  EXPECT_THROW((void)run_trace(t, 2, landlord, nullptr),
               std::invalid_argument);
}

TEST(Landlord, RejectsNonPositiveWeights) {
  EXPECT_THROW(LandlordPolicy({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(LandlordPolicy({-1.0}), std::invalid_argument);
}

TEST(Landlord, UnitWeightsBehaveLikeFlushingPolicy) {
  // With equal weights Landlord is a valid k-competitive paging policy;
  // sanity-check it against LRU's miss count order of magnitude.
  Rng rng(31);
  const Trace t = random_uniform_trace(2, 10, 2000, rng);
  LandlordPolicy landlord({1.0, 1.0});
  const SimResult result = run_trace(t, 5, landlord, nullptr);
  EXPECT_GT(result.metrics.total_hits(), 0u);
  EXPECT_EQ(result.metrics.total_hits() + result.metrics.total_misses(),
            t.size());
}

}  // namespace
}  // namespace ccc
