// Unit tests for streaming statistics (util/stats.hpp).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace ccc {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMeanVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: Σ(x-5)² = 32 → 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, RandomizedMergeMatchesBruteForce) {
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<std::size_t> size(0, 200);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs(size(rng)), ys(size(rng));
    for (double& x : xs) x = value(rng);
    for (double& y : ys) y = value(rng);

    RunningStats merged, sequential;
    RunningStats other;
    for (const double x : xs) {
      merged.add(x);
      sequential.add(x);
    }
    for (const double y : ys) {
      other.add(y);
      sequential.add(y);
    }
    merged.merge(other);

    ASSERT_EQ(merged.count(), xs.size() + ys.size());
    if (merged.count() == 0) continue;
    // Brute-force recompute from the raw samples.
    std::vector<double> all = xs;
    all.insert(all.end(), ys.begin(), ys.end());
    double mean = 0.0;
    for (const double x : all) mean += x;
    mean /= static_cast<double>(all.size());
    double m2 = 0.0;
    for (const double x : all) m2 += (x - mean) * (x - mean);
    const double variance =
        all.size() < 2 ? 0.0 : m2 / static_cast<double>(all.size() - 1);

    EXPECT_NEAR(merged.mean(), mean, 1e-6 * (1.0 + std::abs(mean)));
    EXPECT_NEAR(merged.variance(), variance,
                1e-6 * (1.0 + std::abs(variance)));
    EXPECT_DOUBLE_EQ(merged.min(),
                     *std::min_element(all.begin(), all.end()));
    EXPECT_DOUBLE_EQ(merged.max(),
                     *std::max_element(all.begin(), all.end()));
  }
}

TEST(Quantile, RandomizedMatchesSortedRankInterpolation) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(-100.0, 100.0);
  std::uniform_real_distribution<double> prob(0.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs(1 + rng() % 100);
    for (double& x : xs) x = value(rng);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const double q = prob(rng);
    // Brute-force linear interpolation on the sorted sample.
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double expected =
        sorted[lo] + frac * (sorted[hi] - sorted[lo]);
    EXPECT_NEAR(quantile(xs, q), expected, 1e-9)
        << "trial=" << trial << " q=" << q << " n=" << xs.size();
  }
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(GeometricMean, KnownValue) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW((void)geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)geometric_mean({}), std::invalid_argument);
}

}  // namespace
}  // namespace ccc
