// Unit tests for per-tenant accounting (sim/metrics.hpp).
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"

namespace ccc {
namespace {

TEST(Metrics, CountsPerTenant) {
  Metrics m(3);
  m.record_hit(0);
  m.record_miss(0);
  m.record_miss(1);
  m.record_eviction(2);
  EXPECT_EQ(m.hits(0), 1u);
  EXPECT_EQ(m.misses(0), 1u);
  EXPECT_EQ(m.misses(1), 1u);
  EXPECT_EQ(m.evictions(2), 1u);
  EXPECT_EQ(m.total_hits(), 1u);
  EXPECT_EQ(m.total_misses(), 2u);
  EXPECT_EQ(m.total_evictions(), 1u);
}

TEST(Metrics, RangeChecked) {
  Metrics m(1);
  EXPECT_THROW(m.record_hit(1), std::invalid_argument);
  EXPECT_THROW((void)m.misses(1), std::invalid_argument);
  EXPECT_THROW(Metrics(0), std::invalid_argument);
}

TEST(TotalCost, AppliesPerTenantFunctions) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0, 2.0));  // 2x
  costs.push_back(std::make_unique<MonomialCost>(2.0));       // x²
  EXPECT_DOUBLE_EQ(total_cost({3, 4}, costs), 6.0 + 16.0);
}

TEST(TotalCost, RequiresEnoughFunctions) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0));
  EXPECT_THROW((void)total_cost({1, 2}, costs), std::invalid_argument);
}

// Every PerfCounters field must survive a merge — this was the
// aggregated_perf() bug, where wall_seconds was silently dropped. The
// distinct primes make any dropped or cross-wired field show up.
TEST(PerfCounters, MergeSumsEveryField) {
  PerfCounters a;
  a.requests = 2;
  a.evictions = 3;
  a.heap_pops = 5;
  a.stale_skips = 7;
  a.index_rebuilds = 11;
  a.window_rollovers = 13;
  a.wall_seconds = 0.25;
  PerfCounters b;
  b.requests = 17;
  b.evictions = 19;
  b.heap_pops = 23;
  b.stale_skips = 29;
  b.index_rebuilds = 31;
  b.window_rollovers = 37;
  b.wall_seconds = 0.5;

  a.merge(b);
  EXPECT_EQ(a.requests, 19u);
  EXPECT_EQ(a.evictions, 22u);
  EXPECT_EQ(a.heap_pops, 28u);
  EXPECT_EQ(a.stale_skips, 36u);
  EXPECT_EQ(a.index_rebuilds, 42u);
  EXPECT_EQ(a.window_rollovers, 50u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
}

TEST(UniformCosts, ClonesPrototype) {
  const MonomialCost proto(2.0, 3.0);
  const auto costs = uniform_costs(proto, 4);
  ASSERT_EQ(costs.size(), 4u);
  for (const auto& f : costs) EXPECT_DOUBLE_EQ(f->value(2.0), 12.0);
}

}  // namespace
}  // namespace ccc
