// Unit tests for per-tenant accounting (sim/metrics.hpp).
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"

namespace ccc {
namespace {

TEST(Metrics, CountsPerTenant) {
  Metrics m(3);
  m.record_hit(0);
  m.record_miss(0);
  m.record_miss(1);
  m.record_eviction(2);
  EXPECT_EQ(m.hits(0), 1u);
  EXPECT_EQ(m.misses(0), 1u);
  EXPECT_EQ(m.misses(1), 1u);
  EXPECT_EQ(m.evictions(2), 1u);
  EXPECT_EQ(m.total_hits(), 1u);
  EXPECT_EQ(m.total_misses(), 2u);
  EXPECT_EQ(m.total_evictions(), 1u);
}

TEST(Metrics, RangeChecked) {
  Metrics m(1);
  EXPECT_THROW(m.record_hit(1), std::invalid_argument);
  EXPECT_THROW((void)m.misses(1), std::invalid_argument);
  EXPECT_THROW(Metrics(0), std::invalid_argument);
}

TEST(TotalCost, AppliesPerTenantFunctions) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0, 2.0));  // 2x
  costs.push_back(std::make_unique<MonomialCost>(2.0));       // x²
  EXPECT_DOUBLE_EQ(total_cost({3, 4}, costs), 6.0 + 16.0);
}

TEST(TotalCost, RequiresEnoughFunctions) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0));
  EXPECT_THROW((void)total_cost({1, 2}, costs), std::invalid_argument);
}

TEST(UniformCosts, ClonesPrototype) {
  const MonomialCost proto(2.0, 3.0);
  const auto costs = uniform_costs(proto, 4);
  ASSERT_EQ(costs.size(), 4u);
  for (const auto& f : costs) EXPECT_DOUBLE_EQ(f->value(2.0), 12.0);
}

}  // namespace
}  // namespace ccc
