// Tests for the offline weighted-Belady heuristic
// (offline/weighted_belady.hpp).
#include "offline/weighted_belady.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "policies/belady.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(WeightedBelady, UnitWeightsBehaveLikeBelady) {
  Rng rng(41);
  const Trace t = random_uniform_trace(2, 6, 300, rng);
  WeightedBeladyPolicy weighted({1.0, 1.0});
  BeladyPolicy plain;
  const SimResult a = run_trace(t, 4, weighted, nullptr);
  const SimResult b = run_trace(t, 4, plain, nullptr);
  // Same scoring up to tie-breaking: total misses must match exactly for
  // unit weights (both evict a furthest-future page; any choice among
  // furthest pages yields the same miss count for Belady's argument).
  EXPECT_EQ(a.metrics.total_misses(), b.metrics.total_misses());
}

TEST(WeightedBelady, HeavyTenantIsProtected) {
  // Tenant 1 has weight 100: its pages should essentially never be evicted
  // while tenant 0 pages are available.
  WeightedBeladyPolicy policy({1.0, 100.0});
  Trace t(2);
  // Interleave two working sets that overflow k=3 together.
  for (int round = 0; round < 20; ++round) {
    t.append(0, make_page(0, static_cast<PageId>(round % 2)));
    t.append(1, make_page(1, static_cast<PageId>(round % 2)));
  }
  const SimResult run = run_trace(t, 3, policy, nullptr);
  EXPECT_EQ(run.metrics.misses(1), 2u) << "heavy tenant only cold-misses";
  EXPECT_GT(run.metrics.misses(0), 10u);
}

TEST(WeightedBelady, ValidatesWeights) {
  EXPECT_THROW(WeightedBeladyPolicy({}), std::invalid_argument);
  EXPECT_THROW(WeightedBeladyPolicy({1.0, -2.0}), std::invalid_argument);
  WeightedBeladyPolicy policy({1.0});  // one weight, two tenants:
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(1, make_page(1, 0));
  EXPECT_THROW((void)run_trace(t, 2, policy, nullptr), std::invalid_argument);
}

TEST(IteratedWeightedBelady, NeverWorseThanPlainBeladyCost) {
  for (std::uint64_t seed = 81; seed < 87; ++seed) {
    Rng rng(seed);
    const Trace t = random_uniform_trace(2, 5, 200, rng);
    std::vector<CostFunctionPtr> costs;
    costs.push_back(std::make_unique<MonomialCost>(1.0));
    costs.push_back(std::make_unique<MonomialCost>(3.0));
    BeladyPolicy belady;
    const SimResult plain = run_trace(t, 3, belady, &costs);
    const double plain_cost = total_cost(plain.metrics.miss_vector(), costs);
    const OptResult iterated = iterated_weighted_belady(t, 3, costs);
    // Iteration starts from unit weights (= Belady) and keeps the best.
    EXPECT_LE(iterated.cost, plain_cost + 1e-9) << "seed " << seed;
  }
}

TEST(IteratedWeightedBelady, ReturnsMissVectorMatchingCost) {
  Rng rng(88);
  const Trace t = random_uniform_trace(2, 5, 150, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(2.0, 3.0));
  const OptResult r = iterated_weighted_belady(t, 3, costs);
  EXPECT_DOUBLE_EQ(r.cost, total_cost(r.misses, costs));
}

}  // namespace
}  // namespace ccc
