// Tests for util::FlatMap — the open-addressing residency table behind
// ConvexCachingPolicy::pages_, NaiveConvexCachingPolicy::slot_of_ and
// CacheState::resident_.
//
// The centerpiece is a randomized differential suite against
// std::unordered_map over insert/assign/erase/lookup histories heavy enough
// to force several rehashes and exercise backward-shift deletion across
// wrapped probe chains. The map's extra contracts — deterministic
// slot-order iteration, reserve-no-rehash, reserved-key rejection — get
// directed tests.
#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_map.hpp"

namespace ccc::util {
namespace {

using Map = FlatMap<std::uint64_t>;

std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted_entries(
    const Map& map) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (const auto [key, value] : map) entries.emplace_back(key, value);
  std::sort(entries.begin(), entries.end());
  return entries;
}

// ---------------------------------------------------------------------------
// Randomized differential replay vs std::unordered_map.

struct ChurnCase {
  std::uint64_t seed;
  std::uint64_t key_space;  ///< keys drawn from [0, key_space)
  std::size_t ops;
  int erase_weight;  ///< erase probability = erase_weight / 10

  friend std::ostream& operator<<(std::ostream& os, const ChurnCase& c) {
    return os << "seed" << c.seed << "_keys" << c.key_space << "_ops" << c.ops
              << "_ew" << c.erase_weight;
  }
};

class FlatMapDifferentialTest : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(FlatMapDifferentialTest, MatchesUnorderedMapUnderChurn) {
  const ChurnCase c = GetParam();
  std::mt19937_64 rng(c.seed);
  std::uniform_int_distribution<std::uint64_t> key_dist(0, c.key_space - 1);
  std::uniform_int_distribution<int> op_dist(0, 9);

  Map map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (std::size_t i = 0; i < c.ops; ++i) {
    const std::uint64_t key = key_dist(rng);
    const int op = op_dist(rng);
    if (op < c.erase_weight) {
      ASSERT_EQ(map.erase(key), reference.erase(key)) << "op " << i;
    } else if (op < c.erase_weight + 1) {
      // operator[] default-constructs on first touch, like the node map.
      map[key] += i;
      reference[key] += i;
    } else {
      const bool inserted = map.insert_or_assign(key, i);
      ASSERT_EQ(inserted, reference.insert_or_assign(key, i).second)
          << "op " << i;
    }
    ASSERT_EQ(map.size(), reference.size()) << "op " << i;
    // Spot-check membership of the key just touched plus a random probe.
    for (const std::uint64_t probe : {key, key_dist(rng)}) {
      const auto ref_it = reference.find(probe);
      ASSERT_EQ(map.contains(probe), ref_it != reference.end())
          << "op " << i << " key " << probe;
      const auto it = map.find(probe);
      if (ref_it == reference.end()) {
        ASSERT_EQ(it, map.end()) << "op " << i << " key " << probe;
      } else {
        ASSERT_NE(it, map.end()) << "op " << i << " key " << probe;
        ASSERT_EQ(it->first, probe);
        ASSERT_EQ(it->second, ref_it->second) << "op " << i;
        ASSERT_EQ(map.at(probe), ref_it->second) << "op " << i;
      }
    }
  }

  // Full-content equivalence after the run: every surviving entry agrees.
  const auto entries = sorted_entries(map);
  ASSERT_EQ(entries.size(), reference.size());
  for (const auto& [key, value] : entries) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "key " << key;
    EXPECT_EQ(value, it->second) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlatMapDifferentialTest,
    ::testing::Values(
        // Small key space + heavy erase: sustained churn near the load
        // limit, exercising backward shifts over long clustered chains.
        ChurnCase{101, 64, 20'000, 5},
        // Growth-dominated: key space far exceeds ops, forcing rehashes.
        ChurnCase{102, 1'000'000, 20'000, 2},
        // Erase-dominated: the map repeatedly drains toward empty.
        ChurnCase{103, 128, 20'000, 7},
        // Adversarial keys for the low bits: multiples of a power of two
        // would collide catastrophically without the SplitMix64 mix.
        ChurnCase{104, 256, 15'000, 4},
        ChurnCase{105, 4096, 30'000, 5}));

TEST(FlatMapDifferential, ClusteredKeysStayCorrect) {
  // Dense sequential keys (the common PageId pattern: small per-tenant
  // offsets) with interleaved erases of every other key.
  Map map;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    map.insert_or_assign(k, k * 3);
    reference.insert_or_assign(k, k * 3);
  }
  for (std::uint64_t k = 0; k < 4096; k += 2) {
    ASSERT_EQ(map.erase(k), 1u);
    reference.erase(k);
  }
  ASSERT_EQ(map.size(), reference.size());
  for (std::uint64_t k = 0; k < 4096; ++k) {
    ASSERT_EQ(map.contains(k), reference.count(k) == 1) << "key " << k;
    if (map.contains(k)) {
      ASSERT_EQ(map.at(k), reference.at(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic iteration: slot order is a pure function of the op history.

TEST(FlatMapIteration, IdenticalHistoriesIterateIdentically) {
  // Two replicas fed the same operation sequence must agree element-for-
  // element under iteration — the property the sharded frontend and the
  // audit layer rely on for reproducible replays.
  Map a;
  Map b;
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 511);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const std::uint64_t key = key_dist(rng);
    if (key_dist(rng) % 3 == 0) {
      a.erase(key);
      b.erase(key);
    } else {
      a.insert_or_assign(key, i);
      b.insert_or_assign(key, i);
    }
  }
  ASSERT_EQ(a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    ASSERT_NE(ib, b.end());
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second, ib->second);
  }
  EXPECT_EQ(ib, b.end());
}

TEST(FlatMapIteration, VisitsEveryElementExactlyOnce) {
  Map map;
  for (std::uint64_t k = 0; k < 1000; ++k) map.insert_or_assign(k * 17, k);
  std::unordered_map<std::uint64_t, int> seen;
  for (const auto [key, value] : map) ++seen[key];
  EXPECT_EQ(seen.size(), 1000u);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1) << "key " << key;
}

TEST(FlatMapIteration, MutationThroughIteratorSticks) {
  Map map;
  map.insert_or_assign(5, 1);
  auto it = map.find(5);
  ASSERT_NE(it, map.end());
  it->second = 42;
  EXPECT_EQ(map.at(5), 42u);
  (*it).second = 43;
  EXPECT_EQ(map.at(5), 43u);
}

TEST(FlatMapIteration, ConstIterationAndConversion) {
  Map map;
  map.insert_or_assign(1, 10);
  map.insert_or_assign(2, 20);
  const Map& cref = map;
  std::uint64_t sum = 0;
  for (const auto [key, value] : cref) sum += key + value;
  EXPECT_EQ(sum, 33u);
  Map::const_iterator cit = map.find(1);  // iterator → const_iterator
  ASSERT_NE(cit, cref.end());
  EXPECT_EQ(cit->second, 10u);
}

// ---------------------------------------------------------------------------
// Directed API contracts.

TEST(FlatMapApi, EmptyMapBehaves) {
  Map map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.contains(0));
  EXPECT_EQ(map.find(0), map.end());
  EXPECT_EQ(map.erase(0), 0u);
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_THROW((void)map.at(0), std::out_of_range);
}

TEST(FlatMapApi, AtThrowsOnAbsentPresentOnHit) {
  Map map;
  map.insert_or_assign(3, 30);
  EXPECT_EQ(map.at(3), 30u);
  EXPECT_THROW((void)map.at(4), std::out_of_range);
  const Map& cref = map;
  EXPECT_EQ(cref.at(3), 30u);
  EXPECT_THROW((void)cref.at(4), std::out_of_range);
}

TEST(FlatMapApi, ReservedKeyIsRejected) {
  Map map;
  EXPECT_THROW(map.insert_or_assign(Map::kEmptyKey, 1), std::invalid_argument);
  EXPECT_THROW(map[Map::kEmptyKey], std::invalid_argument);
  // Lookups treat it as simply absent.
  EXPECT_FALSE(map.contains(Map::kEmptyKey));
  EXPECT_EQ(map.erase(Map::kEmptyKey), 0u);
}

TEST(FlatMapApi, EraseByIteratorRemovesAndValidates) {
  Map map;
  for (std::uint64_t k = 0; k < 100; ++k) map.insert_or_assign(k, k);
  map.erase(map.find(37));
  EXPECT_FALSE(map.contains(37));
  EXPECT_EQ(map.size(), 99u);
  EXPECT_THROW(map.erase(map.end()), std::logic_error);
}

TEST(FlatMapApi, ClearEmptiesButKeepsWorking) {
  Map map;
  for (std::uint64_t k = 0; k < 500; ++k) map.insert_or_assign(k, k);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_FALSE(map.contains(10));
  map.insert_or_assign(10, 7);
  EXPECT_EQ(map.at(10), 7u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapApi, ReservePreventsIteratorChurnDuringFill) {
  // After reserve(n), inserting n keys must not rehash: the address of a
  // value observed early stays valid through the fill.
  Map map;
  map.reserve(1000);
  map.insert_or_assign(0, 99);
  const std::uint64_t* where = &map.at(0);
  for (std::uint64_t k = 1; k < 1000; ++k) map.insert_or_assign(k, k);
  EXPECT_EQ(&map.at(0), where);
  EXPECT_EQ(map.at(0), 99u);
}

TEST(FlatMapApi, SubscriptDefaultConstructs) {
  FlatMap<std::vector<int>> map;
  map[8].push_back(1);
  map[8].push_back(2);
  EXPECT_EQ(map.at(8).size(), 2u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapApi, PrefetchIsHarmless) {
  Map map;
  map.prefetch(42);  // empty map: must not touch anything
  map.insert_or_assign(42, 1);
  map.prefetch(42);
  EXPECT_EQ(map.at(42), 1u);
}

}  // namespace
}  // namespace ccc::util
