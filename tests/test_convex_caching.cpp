// Tests for ALG-DISCRETE (core/convex_caching.hpp): hand-computed budget
// dynamics from Fig. 3, plus equivalence of the optimized implementation
// with the literal transcription on randomized inputs.
#include "core/convex_caching.hpp"

#include <gtest/gtest.h>

#include "core/naive_convex_caching.hpp"
#include "cost/combinators.hpp"
#include "cost/monomial.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

// Tenant 0: f(x)=x² (f'=2x); tenant 1: f(x)=2x (f'=2).
std::vector<CostFunctionPtr> mixed_costs() {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(1.0, 2.0));
  return costs;
}

TEST(ConvexCaching, BudgetDynamicsMatchHandComputation) {
  const auto costs = mixed_costs();
  ConvexCachingPolicy policy;
  SimulatorSession session(2, 2, policy, &costs);
  const PageId A = make_page(0, 0), B = make_page(1, 0), C = make_page(0, 1);

  session.step({0, A});  // B(A) = f0'(1) = 2
  EXPECT_DOUBLE_EQ(policy.budget(A), 2.0);
  session.step({1, B});  // B(B) = f1'(1) = 2
  EXPECT_DOUBLE_EQ(policy.budget(B), 2.0);

  // Miss on C: tie between A and B at budget 2 → lower page id (A) goes.
  // Survivor B is debited 2 → 0; C enters at f0'(m0+1)=f0'(2)=4.
  const StepEvent e2 = session.step({0, C});
  ASSERT_TRUE(e2.victim.has_value());
  EXPECT_EQ(*e2.victim, A);
  EXPECT_DOUBLE_EQ(policy.budget(B), 0.0);
  EXPECT_DOUBLE_EQ(policy.budget(C), 4.0);

  // Miss on A: B (budget 0) goes; C debited 0 → 4; A enters at f0'(2)=4.
  const StepEvent e3 = session.step({0, A});
  ASSERT_TRUE(e3.victim.has_value());
  EXPECT_EQ(*e3.victim, B);
  EXPECT_DOUBLE_EQ(policy.budget(C), 4.0);
  EXPECT_DOUBLE_EQ(policy.budget(A), 4.0);

  // Miss on B: A and C tied at 4 → A (lower id) goes; tenant 0's miss count
  // becomes 2, so survivor C is debited 4 and bumped f0'(3)−f0'(2)=2 → 2.
  const StepEvent e4 = session.step({1, B});
  ASSERT_TRUE(e4.victim.has_value());
  EXPECT_EQ(*e4.victim, A);
  EXPECT_DOUBLE_EQ(policy.budget(C), 2.0);
  EXPECT_DOUBLE_EQ(policy.budget(B), 2.0);

  EXPECT_EQ(policy.tenant_evictions()[0], 2u);
  EXPECT_EQ(policy.tenant_evictions()[1], 1u);
}

TEST(ConvexCaching, HitRefreshesBudget) {
  const auto costs = mixed_costs();
  ConvexCachingPolicy policy;
  SimulatorSession session(2, 2, policy, &costs);
  const PageId A = make_page(0, 0), B = make_page(1, 0), C = make_page(1, 1);
  session.step({0, A});
  session.step({1, B});
  session.step({1, C});  // evicts the tie-winner... A=2, B=2 → evicts A
  // B was debited to 0; a hit refreshes it to f1'(m1+1)=2.
  session.step({1, B});
  EXPECT_DOUBLE_EQ(policy.budget(B), 2.0);
}

TEST(ConvexCaching, LinearSingleTenantBudgetsStayUniform) {
  // With f(x)=w·x all budgets are w at set time; after each eviction all
  // survivors drop to 0... then the next victim has budget 0, and fresh
  // pages re-enter at w. Evictions therefore rotate through stale pages —
  // sanity: the policy completes a scan workload with the right counts.
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0, 3.0));
  Trace t(1);
  for (int i = 0; i < 30; ++i) t.append(0, static_cast<PageId>(i % 5));
  ConvexCachingPolicy policy;
  const SimResult result = run_trace(t, 3, policy, &costs);
  EXPECT_EQ(result.metrics.total_hits() + result.metrics.total_misses(), 30u);
  EXPECT_GT(result.metrics.total_misses(), 5u);
}

TEST(ConvexCaching, RequiresCostFunctions) {
  ConvexCachingPolicy policy;
  Trace t(1);
  t.append(0, 1);
  EXPECT_THROW((void)run_trace(t, 2, policy, nullptr), std::invalid_argument);
}

TEST(ConvexCaching, BudgetOfNonResidentThrows) {
  const auto costs = mixed_costs();
  ConvexCachingPolicy policy;
  SimulatorSession session(2, 2, policy, &costs);
  session.step({0, make_page(0, 0)});
  EXPECT_THROW((void)policy.budget(make_page(0, 7)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property: the O(log k) production implementation must make exactly the
// same decisions as the literal Fig. 3 transcription. Integer-valued
// derivatives (monomials with integer β on integer miss counts) make both
// implementations exact in floating point, so victim sequences must match
// bit for bit.
struct EquivCase {
  std::uint64_t seed;
  double beta;
  std::uint32_t tenants;
  std::size_t k;

  friend std::ostream& operator<<(std::ostream& os, const EquivCase& c) {
    return os << "seed" << c.seed << "_beta" << c.beta << "_n" << c.tenants
              << "_k" << c.k;
  }
};

class NaiveEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(NaiveEquivalenceTest, VictimSequencesAreIdentical) {
  const EquivCase c = GetParam();
  Rng rng(c.seed);
  const Trace t = random_uniform_trace(c.tenants, 2 * c.k, 600, rng);
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < c.tenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(c.beta, 1.0 + i));

  ConvexCachingPolicy fast;
  NaiveConvexCachingPolicy naive;
  SimOptions options;
  options.record_events = true;
  const SimResult fast_run = run_trace(t, c.k, fast, &costs, options);
  const SimResult naive_run = run_trace(t, c.k, naive, &costs, options);
  ASSERT_EQ(fast_run.events.size(), naive_run.events.size());
  for (std::size_t i = 0; i < fast_run.events.size(); ++i) {
    EXPECT_EQ(fast_run.events[i].hit, naive_run.events[i].hit)
        << "step " << i;
    EXPECT_EQ(fast_run.events[i].victim, naive_run.events[i].victim)
        << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NaiveEquivalenceTest,
    ::testing::Values(EquivCase{1, 1.0, 1, 3}, EquivCase{2, 2.0, 1, 3},
                      EquivCase{3, 3.0, 2, 4}, EquivCase{4, 2.0, 2, 2},
                      EquivCase{5, 1.0, 3, 5}, EquivCase{6, 2.0, 3, 5},
                      EquivCase{7, 3.0, 2, 3}, EquivCase{8, 2.0, 4, 6},
                      EquivCase{9, 1.0, 2, 4}, EquivCase{10, 2.0, 1, 8}));

TEST(ConvexCachingAblations, SwitchesChangeBehaviour) {
  Rng rng(77);
  const Trace t = random_uniform_trace(2, 8, 800, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(2.0, 4.0));

  ConvexCachingOptions no_debit;
  no_debit.debit_survivors = false;
  ConvexCachingOptions no_bump;
  no_bump.bump_victim_tenant = false;

  ConvexCachingPolicy full, ablated_debit(no_debit), ablated_bump(no_bump);
  SimOptions options;
  options.record_events = true;
  const SimResult a = run_trace(t, 4, full, &costs, options);
  const SimResult b = run_trace(t, 4, ablated_debit, &costs, options);
  const SimResult c = run_trace(t, 4, ablated_bump, &costs, options);
  int diff_debit = 0, diff_bump = 0;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].victim != b.events[i].victim) ++diff_debit;
    if (a.events[i].victim != c.events[i].victim) ++diff_bump;
  }
  EXPECT_GT(diff_debit, 0) << "debit ablation must change decisions";
  EXPECT_GT(diff_bump, 0) << "bump ablation must change decisions";
}

TEST(ConvexCachingDiscrete, MatchesAnalyticForQuadratic) {
  // For f(x)=x², f'(m+1) = 2m+2 while the discrete marginal is
  // f(m+1)−f(m) = 2m+1 — a constant shift of 1 for every tenant/page, so
  // with a single tenant the *order* of budgets is preserved and the two
  // modes agree... with multiple tenants they may diverge. Check single
  // tenant equality.
  Rng rng(13);
  const Trace t = random_uniform_trace(1, 8, 500, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  ConvexCachingOptions discrete;
  discrete.derivative = DerivativeMode::kDiscreteMarginal;
  ConvexCachingPolicy analytic, marginal(discrete);
  SimOptions options;
  options.record_events = true;
  const SimResult a = run_trace(t, 4, analytic, &costs, options);
  const SimResult b = run_trace(t, 4, marginal, &costs, options);
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_EQ(a.events[i].victim, b.events[i].victim) << "step " << i;
}

TEST(ConvexCachingWindowed, MissCountsResetAtBoundaries) {
  // With a window shorter than the trace, tenant marginals re-base: after
  // a boundary, a fresh page's budget must equal f'(1), not f'(m+1).
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));  // f' = 2x
  ConvexCachingOptions options;
  options.window_length = 4;
  ConvexCachingPolicy policy(options);
  SimulatorSession session(2, 1, policy, &costs);
  // Window 0 (t=0..3): force evictions to raise m.
  for (const int p : {1, 2, 3, 4}) session.step({0, static_cast<PageId>(p)});
  // Two evictions so far (m=2, marginal f'(3)=6). At t=4 a new window
  // starts: resident budgets re-base to f'(1)=2, the eviction at t=4 is
  // the window's first (m back to 1), and the fresh page enters at
  // f'(m+1)=f'(2)=4 — all small numbers again instead of the m=3 regime.
  session.step({0, 5});  // t=4: rolls the window, evicts at fresh budgets
  EXPECT_DOUBLE_EQ(policy.budget(5), 4.0);
  // The surviving page was re-based to f'(1)=2, then debited 2 and bumped
  // f'(2)−f'(1)=2 by the same eviction.
  EXPECT_DOUBLE_EQ(policy.budget(4), 2.0);
}

TEST(ConvexCachingWindowed, MatchesUnwindowedWhenWindowCoversTrace) {
  Rng rng(55);
  const Trace t = random_uniform_trace(2, 6, 300, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(2.0, 3.0));
  ConvexCachingOptions huge_window;
  huge_window.window_length = 10'000;  // larger than the trace
  ConvexCachingPolicy windowed(huge_window), plain;
  SimOptions options;
  options.record_events = true;
  const SimResult a = run_trace(t, 4, windowed, &costs, options);
  const SimResult b = run_trace(t, 4, plain, &costs, options);
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_EQ(a.events[i].victim, b.events[i].victim) << "step " << i;
}

TEST(ConvexCachingWindowed, NameAdvertisesWindow) {
  ConvexCachingOptions options;
  options.window_length = 500;
  EXPECT_EQ(ConvexCachingPolicy(options).name(), "ConvexCaching[w=500]");
}

TEST(ConvexCachingDiscrete, HandlesNonConvexStepCosts) {
  // §2.5: the algorithm runs on arbitrary cost functions. Just assert it
  // completes and accounts correctly on a discontinuous staircase.
  Rng rng(19);
  const Trace t = random_uniform_trace(2, 6, 400, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<StepCost>(5.0, 10.0));
  costs.push_back(std::make_unique<StepCost>(3.0, 2.0));
  ConvexCachingOptions discrete;
  discrete.derivative = DerivativeMode::kDiscreteMarginal;
  ConvexCachingPolicy policy(discrete);
  const SimResult result = run_trace(t, 4, policy, &costs);
  EXPECT_EQ(result.metrics.total_hits() + result.metrics.total_misses(),
            t.size());
}

}  // namespace
}  // namespace ccc
