// Unit tests for the CLI parser (util/cli.hpp).
#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace ccc {
namespace {

Cli make_cli() {
  Cli cli("test program");
  cli.flag("count", "10", "a count")
      .flag("rate", "0.5", "a rate")
      .flag("name", "default", "a name")
      .flag("list", "1,2,3", "numbers")
      .flag("enable", "false", "a switch");
  return cli;
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_u64("count"), 10u);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.5);
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_FALSE(cli.get_bool("enable"));
}

TEST(Cli, SpaceSeparatedValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--count", "42", "--name", "x"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_u64("count"), 42u);
  EXPECT_EQ(cli.get("name"), "x");
}

TEST(Cli, EqualsSeparatedValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--rate=0.25", "--enable=true"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
  EXPECT_TRUE(cli.get_bool("enable"));
}

TEST(Cli, Lists) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--list", "4,5,6"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_u64_list("list"),
            (std::vector<std::uint64_t>{4, 5, 6}));
  const char* argv2[] = {"prog", "--list", "1.5,2.5"};
  Cli cli2 = make_cli();
  ASSERT_TRUE(cli2.parse(3, argv2));
  EXPECT_EQ(cli2.get_double_list("list"), (std::vector<double>{1.5, 2.5}));
}

TEST(Cli, UnknownFlagRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW((void)cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, MissingValueRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW((void)cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, PositionalRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW((void)cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BadBooleanRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--enable", "maybe"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_bool("enable"), std::invalid_argument);
}

TEST(Cli, DuplicateRegistrationRejected) {
  Cli cli("x");
  cli.flag("a", "1", "first");
  EXPECT_THROW(cli.flag("a", "2", "dup"), std::invalid_argument);
}

TEST(Cli, UsageMentionsFlagsAndDefaults) {
  Cli cli = make_cli();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace ccc
