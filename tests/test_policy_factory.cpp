// Tests for name-based policy construction (exp/policy_factory.hpp).
#include "exp/policy_factory.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(PolicyFactory, BuildsEveryAdvertisedPolicy) {
  for (const std::string& name : online_policy_names()) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_FALSE(policy->name().empty());
  }
  EXPECT_NE(make_policy("belady"), nullptr);
  EXPECT_NE(make_policy("convex-naive"), nullptr);
  EXPECT_NE(make_policy("convex-discrete"), nullptr);
  EXPECT_NE(make_policy("random"), nullptr);
}

TEST(PolicyFactory, UnknownNameListsOptions) {
  try {
    (void)make_policy("nope");
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lru"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("convex"), std::string::npos);
  }
}

TEST(PolicyFactory, EveryOnlinePolicyRunsEndToEnd) {
  Rng rng(91);
  const Trace t = random_uniform_trace(2, 6, 300, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(2.0, 2.0));
  for (const std::string& name : online_policy_names()) {
    const auto policy = make_policy(name);
    const SimResult result = run_trace(t, 4, *policy, &costs);
    EXPECT_EQ(result.metrics.total_hits() + result.metrics.total_misses(),
              t.size())
        << name;
  }
}

}  // namespace
}  // namespace ccc
