// Tests for Mattson miss-rate curves (analysis/mrc.hpp): the one-pass
// stack-distance analysis must reproduce direct LRU simulation exactly.
#include "analysis/mrc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cost/monomial.hpp"
#include "policies/lru.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(Mrc, HandComputedDistances) {
  // a b c a b b: distances — a:2 (b,c between), b:2 (c,a), b:0.
  Trace t(1);
  for (const int p : {1, 2, 3, 1, 2, 2}) t.append(0, static_cast<PageId>(p));
  const MissRateCurve curve = compute_mrc(t);
  // k=1: hits only at distance 0 → misses = 3 cold + 2 (distance 2) = 5.
  EXPECT_EQ(curve.misses_at(1), 5u);
  // k=2: distance-0 and 1 hit → still 5? distances are {2,2,0}: d<2 hits
  // only the 0 → misses = 3 + 2 = 5.
  EXPECT_EQ(curve.misses_at(2), 5u);
  // k=3: d<3 hits all three re-references → misses = cold only.
  EXPECT_EQ(curve.misses_at(3), 3u);
  EXPECT_DOUBLE_EQ(curve.miss_ratio_at(3), 0.5);
}

TEST(Mrc, ColdMissesOnly) {
  Trace t(1);
  t.append(0, 1);
  t.append(0, 2);
  const MissRateCurve curve = compute_mrc(t);
  for (std::size_t k = 1; k <= 4; ++k) EXPECT_EQ(curve.misses_at(k), 2u);
}

TEST(Mrc, PerTenantSplitsAddUp) {
  Rng rng(5);
  const Trace t = random_uniform_trace(3, 12, 2000, rng);
  const MissRateCurve curve = compute_mrc(t);
  for (const std::size_t k : {1u, 3u, 8u, 20u}) {
    std::uint64_t sum = 0;
    for (TenantId i = 0; i < 3; ++i) sum += curve.tenant_misses_at(k, i);
    EXPECT_EQ(sum, curve.misses_at(k)) << "k=" << k;
  }
}

TEST(Mrc, MonotoneNonIncreasingInK) {
  Rng rng(6);
  const Trace t = random_uniform_trace(2, 20, 3000, rng);
  const MissRateCurve curve = compute_mrc(t);
  std::uint64_t prev = curve.misses_at(1);
  for (std::size_t k = 2; k <= 50; ++k) {
    const std::uint64_t cur = curve.misses_at(k);
    EXPECT_LE(cur, prev) << "k=" << k;
    prev = cur;
  }
}

TEST(Mrc, CostCurveUsesTenantFunctions) {
  Rng rng(7);
  const Trace t = random_uniform_trace(2, 6, 500, rng);
  const MissRateCurve curve = compute_mrc(t);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(1.0, 3.0));
  const double expected =
      std::pow(static_cast<double>(curve.tenant_misses_at(4, 0)), 2.0) +
      3.0 * static_cast<double>(curve.tenant_misses_at(4, 1));
  EXPECT_DOUBLE_EQ(curve.cost_at(4, costs), expected);
}

TEST(Mrc, RejectsBadArguments) {
  Trace t(1);
  t.append(0, 1);
  const MissRateCurve curve = compute_mrc(t);
  EXPECT_THROW((void)curve.misses_at(0), std::invalid_argument);
  EXPECT_THROW((void)curve.tenant_misses_at(1, 5), std::invalid_argument);
}

// Property: the curve equals direct LRU simulation for every k — this is
// the stack property, machine-checked.
class MrcVsSimulation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrcVsSimulation, MatchesDirectLruAtEveryCacheSize) {
  Rng rng(GetParam());
  // Mix of patterns so distances are non-trivial.
  std::vector<TenantWorkload> w;
  w.push_back({std::make_unique<ZipfPages>(30, 0.8), 2.0});
  w.push_back({std::make_unique<ScanPages>(15), 1.0});
  const Trace t = generate_trace(std::move(w), 1200, rng);
  const MissRateCurve curve = compute_mrc(t);
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u}) {
    LruPolicy lru;
    const SimResult direct = run_trace(t, k, lru, nullptr);
    EXPECT_EQ(curve.misses_at(k), direct.metrics.total_misses())
        << "k=" << k << " seed=" << GetParam();
    for (TenantId i = 0; i < t.num_tenants(); ++i)
      EXPECT_EQ(curve.tenant_misses_at(k, i), direct.metrics.misses(i))
          << "tenant " << i << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrcVsSimulation,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ccc
