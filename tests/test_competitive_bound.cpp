// Integration test of the paper's main guarantees: Theorem 1.1 /
// Corollary 1.2 (upper bound vs exact OPT) and Theorem 1.3 (bi-criteria),
// verified empirically on exact-OPT-tractable instances.
#include <gtest/gtest.h>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/policy_factory.hpp"
#include "offline/exact_opt.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

struct BoundCase {
  std::uint64_t seed;
  double beta;
  std::uint32_t tenants;
  std::size_t k;

  friend std::ostream& operator<<(std::ostream& os, const BoundCase& c) {
    return os << "seed" << c.seed << "_beta" << c.beta << "_n" << c.tenants
              << "_k" << c.k;
  }
};

class Theorem11Sweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(Theorem11Sweep, AlgCostWithinTheoremBound) {
  const BoundCase c = GetParam();
  Rng rng(c.seed);
  // Small page universe so the exact DP stays tractable.
  const Trace t = random_uniform_trace(c.tenants, 3, 60, rng);
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < c.tenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(c.beta));

  ConvexCachingPolicy policy;
  const SimResult run = run_trace(t, c.k, policy, &costs);
  const double alg_cost = total_cost(run.metrics.miss_vector(), costs);

  const OptResult opt = exact_opt(t, c.k, costs);
  const double rhs = theorem11_bound(costs, opt.misses, c.k, c.beta);

  // Theorem 1.1: Σ f_i(a_i) ≤ Σ f_i(α·k·b_i).
  EXPECT_LE(alg_cost, rhs + 1e-9)
      << "alg=" << alg_cost << " bound=" << rhs << " seed=" << c.seed;

  // Corollary 1.2 (weaker, aggregate form): cost ≤ β^β·k^β · OPT cost.
  if (opt.cost > 0.0) {
    const double factor = corollary12_factor(c.beta, c.k);
    EXPECT_LE(alg_cost, factor * opt.cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem11Sweep,
    ::testing::Values(BoundCase{31, 1.0, 1, 2}, BoundCase{32, 2.0, 1, 2},
                      BoundCase{33, 3.0, 1, 3}, BoundCase{34, 1.0, 2, 2},
                      BoundCase{35, 2.0, 2, 3}, BoundCase{36, 3.0, 2, 2},
                      BoundCase{37, 2.0, 3, 3}, BoundCase{38, 1.0, 3, 4},
                      BoundCase{39, 2.0, 2, 4}, BoundCase{40, 2.0, 1, 4}));

class Theorem13Sweep : public ::testing::TestWithParam<BoundCase> {};

TEST_P(Theorem13Sweep, BiCriteriaBoundHolds) {
  const BoundCase c = GetParam();
  Rng rng(c.seed);
  const Trace t = random_uniform_trace(c.tenants, 3, 50, rng);
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < c.tenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(c.beta));

  ConvexCachingPolicy policy;
  const SimResult run = run_trace(t, c.k, policy, &costs);
  const double alg_cost = total_cost(run.metrics.miss_vector(), costs);

  // Offline OPT restricted to every smaller cache h ≤ k (Fig. 4's CP-h).
  for (std::size_t h = 1; h <= c.k; ++h) {
    const OptResult opt_h = exact_opt(t, h, costs);
    const double rhs = theorem13_bound(costs, opt_h.misses, c.k, h, c.beta);
    EXPECT_LE(alg_cost, rhs + 1e-9)
        << "h=" << h << " alg=" << alg_cost << " bound=" << rhs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Theorem13Sweep,
    ::testing::Values(BoundCase{51, 1.0, 1, 3}, BoundCase{52, 2.0, 1, 3},
                      BoundCase{53, 2.0, 2, 3}, BoundCase{54, 3.0, 2, 2},
                      BoundCase{55, 2.0, 2, 4}, BoundCase{56, 1.0, 3, 3}));

// Lemma 2.2's proof never uses optimality of the comparator x* — only its
// feasibility for (CP). Hence Σ f_i(a_i) ≤ Σ f_i(α·k·b'_i) must hold with
// b' the eviction counts of ANY schedule on the flushed trace (where
// evictions equal misses, §2.1). This tests the theorem's machinery on
// instances far too large for the exact DP.
class AnyFeasibleComparator : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AnyFeasibleComparator, Theorem11HoldsAgainstEverySchedule) {
  Rng rng(GetParam());
  const double beta = 1.0 + static_cast<double>(rng.next_below(3));
  const std::size_t k = 4 + rng.next_below(8);
  const Trace base = random_uniform_trace(3, 2 * k, 2000, rng);
  const Trace flushed = base.with_flush(k);

  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < 3; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta, 1.0 + i));
  costs.push_back(std::make_unique<MonomialCost>(1.0, 1e15));  // flush dummy

  ConvexCachingPolicy alg;
  const SimResult alg_run = run_trace(flushed, k, alg, &costs);

  for (const char* comparator : {"lru", "belady", "fifo", "lfu"}) {
    const auto policy = make_policy(comparator);
    const SimResult other = run_trace(flushed, k, *policy, &costs);
    // Eviction accounting on the flushed trace (the ICP objective); the
    // dummy tenant's pages are never evicted by ALG (infinite weight) but
    // cost-oblivious comparators may evict them — their huge f' only
    // inflates the right-hand side, keeping the check valid.
    double lhs = 0.0, rhs = 0.0;
    for (TenantId i = 0; i < 3; ++i) {
      lhs += costs[i]->value(
          static_cast<double>(alg_run.metrics.evictions(i)));
      rhs += costs[i]->value(beta * static_cast<double>(k) *
                             static_cast<double>(other.metrics.evictions(i)));
    }
    EXPECT_LE(lhs, rhs + 1e-6)
        << "comparator=" << comparator << " beta=" << beta << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnyFeasibleComparator,
                         ::testing::Range<std::uint64_t>(101, 113));

TEST(CompetitiveBound, Theorem13HoldsAgainstSmallerCacheSchedules) {
  // Same idea for the bi-criteria bound: any schedule feasible for cache
  // h ≤ k is feasible for (CP-h); the α·k/(k−h+1) blow-up must cover ALG.
  for (std::uint64_t seed = 201; seed < 207; ++seed) {
    Rng rng(seed);
    const double beta = 2.0;
    const std::size_t k = 8;
    const Trace base = random_uniform_trace(2, 12, 1500, rng);
    const Trace flushed = base.with_flush(k);
    std::vector<CostFunctionPtr> costs;
    costs.push_back(std::make_unique<MonomialCost>(beta));
    costs.push_back(std::make_unique<MonomialCost>(beta, 2.0));
    costs.push_back(std::make_unique<MonomialCost>(1.0, 1e15));

    ConvexCachingPolicy alg;
    const SimResult alg_run = run_trace(flushed, k, alg, &costs);

    for (const std::size_t h : {2u, 4u, 6u, 8u}) {
      const auto lru = make_policy("lru");
      // The comparator runs with the SMALLER cache h but is compared on
      // the k-flushed trace (extra flush pages only add dummy evictions).
      const SimResult other = run_trace(flushed, h, *lru, &costs);
      const double blowup =
          beta * static_cast<double>(k) / static_cast<double>(k - h + 1);
      double lhs = 0.0, rhs = 0.0;
      for (TenantId i = 0; i < 2; ++i) {
        lhs += costs[i]->value(
            static_cast<double>(alg_run.metrics.evictions(i)));
        rhs += costs[i]->value(
            blowup * static_cast<double>(other.metrics.evictions(i)));
      }
      EXPECT_LE(lhs, rhs + 1e-6) << "h=" << h << " seed=" << seed;
    }
  }
}

TEST(CompetitiveBound, LinearCostsRecoverWeightedCaching) {
  // β=1 ⇒ the bound is k·OPT per tenant — the classical weighted-caching
  // guarantee. Check the aggregate k-competitive form on many seeds.
  for (std::uint64_t seed = 71; seed < 81; ++seed) {
    Rng rng(seed);
    const Trace t = random_uniform_trace(2, 3, 50, rng);
    std::vector<CostFunctionPtr> costs;
    costs.push_back(std::make_unique<MonomialCost>(1.0, 1.0));
    costs.push_back(std::make_unique<MonomialCost>(1.0, 5.0));
    ConvexCachingPolicy policy;
    const std::size_t k = 3;
    const SimResult run = run_trace(t, k, policy, &costs);
    const double alg_cost = total_cost(run.metrics.miss_vector(), costs);
    const OptResult opt = exact_opt(t, k, costs);
    EXPECT_LE(alg_cost, static_cast<double>(k) * opt.cost + 1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccc
