// Unit tests for the cache residency bookkeeping (sim/cache_state.hpp).
#include "sim/cache_state.hpp"

#include <gtest/gtest.h>

namespace ccc {
namespace {

TEST(CacheState, InsertContainsErase) {
  CacheState cache(2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.full());
  cache.insert(10, 0);
  EXPECT_TRUE(cache.contains(10));
  EXPECT_EQ(cache.owner(10), 0u);
  cache.insert(20, 1);
  EXPECT_TRUE(cache.full());
  cache.erase(10);
  EXPECT_FALSE(cache.contains(10));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheState, RejectsOverfill) {
  CacheState cache(1);
  cache.insert(1, 0);
  EXPECT_THROW(cache.insert(2, 0), std::invalid_argument);
}

TEST(CacheState, RejectsDuplicateInsert) {
  CacheState cache(2);
  cache.insert(1, 0);
  EXPECT_THROW(cache.insert(1, 0), std::invalid_argument);
}

TEST(CacheState, RejectsEvictingAbsent) {
  CacheState cache(2);
  EXPECT_THROW(cache.erase(5), std::invalid_argument);
}

TEST(CacheState, OwnerOfAbsentThrows) {
  CacheState cache(2);
  EXPECT_THROW((void)cache.owner(5), std::invalid_argument);
}

TEST(CacheState, ZeroCapacityRejected) {
  EXPECT_THROW(CacheState(0), std::invalid_argument);
}

TEST(CacheState, ClearEmptiesResident) {
  CacheState cache(2);
  cache.insert(1, 0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(CacheState, PagesExposesOwners) {
  CacheState cache(3);
  cache.insert(1, 0);
  cache.insert(2, 1);
  const auto& pages = cache.pages();
  EXPECT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages.at(1), 0u);
  EXPECT_EQ(pages.at(2), 1u);
}

}  // namespace
}  // namespace ccc
