// Unit tests for the deterministic RNG (util/rng.hpp).
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ccc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitmixIsDeterministic) {
  std::uint64_t s1 = 7, s2 = 7;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW((void)rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(4)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / 4 - 600);
    EXPECT_LT(c, kDraws / 4 + 600);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW((void)rng.next_int(2, 1), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsRoughlyHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, NextBoolRespectsProbabilityExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
  EXPECT_THROW((void)rng.next_bool(1.5), std::invalid_argument);
  EXPECT_THROW((void)rng.next_bool(-0.1), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(33), b(33);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(8);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

}  // namespace
}  // namespace ccc
