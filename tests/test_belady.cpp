// Tests for Belady/MIN (policies/belady.hpp): exact behavior on crafted
// traces and optimality (minimum total misses) against brute force.
#include "policies/belady.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "offline/exact_opt.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(Belady, EvictsFurthestInFuture) {
  Trace t(1);
  // 1 2 3 1 2: at the miss on 3, page 1 is next used at t=3, page 2 at
  // t=4 → evict 2.
  for (const int p : {1, 2, 3, 1, 2}) t.append(0, static_cast<PageId>(p));
  BeladyPolicy belady;
  SimOptions options;
  options.record_events = true;
  const SimResult result = run_trace(t, 2, belady, nullptr, options);
  ASSERT_TRUE(result.events[2].victim.has_value());
  EXPECT_EQ(*result.events[2].victim, PageId{2});
}

TEST(Belady, PrefersNeverUsedAgain) {
  Trace t(1);
  // 1 2 3 1: page 2 never recurs → evict it even though 1 is older.
  for (const int p : {1, 2, 3, 1}) t.append(0, static_cast<PageId>(p));
  BeladyPolicy belady;
  SimOptions options;
  options.record_events = true;
  const SimResult result = run_trace(t, 2, belady, nullptr, options);
  ASSERT_TRUE(result.events[2].victim.has_value());
  EXPECT_EQ(*result.events[2].victim, PageId{2});
}

TEST(Belady, RequiresPreview) {
  BeladyPolicy belady;
  SimulatorSession session(1, 1, belady, nullptr);
  session.step({0, 1});
  EXPECT_THROW(session.step({0, 2}), std::logic_error);
}

// Property: Belady achieves the minimum possible total miss count —
// compare against the exact DP with a linear single-tenant objective
// (where cost == total misses).
class BeladyOptimalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeladyOptimalityTest, MatchesExactMinimumMisses) {
  Rng rng(GetParam());
  const Trace t = random_uniform_trace(1, 6, 24, rng);
  const std::size_t k = 3;
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0));

  BeladyPolicy belady;
  const SimResult belady_run = run_trace(t, k, belady, &costs);
  const OptResult opt = exact_opt(t, k, costs);
  EXPECT_EQ(static_cast<double>(belady_run.metrics.total_misses()), opt.cost)
      << "Belady must minimize total misses";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimalityTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Belady, MultiTenantTotalMissesStillMinimal) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    Rng rng(seed);
    const Trace t = random_uniform_trace(2, 4, 20, rng);
    std::vector<CostFunctionPtr> costs;
    costs.push_back(std::make_unique<MonomialCost>(1.0));
    costs.push_back(std::make_unique<MonomialCost>(1.0));
    BeladyPolicy belady;
    const SimResult run = run_trace(t, 3, belady, &costs);
    const OptResult opt = exact_opt(t, 3, costs);
    EXPECT_EQ(static_cast<double>(run.metrics.total_misses()), opt.cost);
  }
}

}  // namespace
}  // namespace ccc
