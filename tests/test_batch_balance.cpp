// Tests for the Theorem 1.4 offline batch-balancing scheme
// (offline/batch_balance.hpp).
#include "offline/batch_balance.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "exp/adversary.hpp"
#include "policies/lru.hpp"
#include "sim/simulator.hpp"

namespace ccc {
namespace {

std::vector<CostFunctionPtr> monomials(std::uint32_t n, double beta) {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta));
  return costs;
}

TEST(BatchBalance, AtMostOneEvictionPerBatchOnAdversaryTrace) {
  const std::uint32_t n = 9;
  const auto costs = monomials(n, 2.0);
  LruPolicy lru;
  const AdversaryRun adv = run_adversary(n, 400, lru, costs);

  const std::size_t batch = (n - 1) / 2;  // §4: batches of (n−1)/2
  BatchBalancePolicy offline(batch);
  SimOptions options;
  options.record_events = true;
  const SimResult run =
      run_trace(adv.trace, n - 1, offline, &costs, options);

  // Count evictions per batch; the §4 argument gives ≤ 1 each after the
  // warm-up batch(es) that absorb the n−1 cold misses.
  std::vector<int> evictions_per_batch(adv.trace.size() / batch + 1, 0);
  for (TimeStep t = 0; t < run.events.size(); ++t)
    if (run.events[t].victim.has_value())
      ++evictions_per_batch[t / batch];
  for (std::size_t b = (n - 1) / batch + 1; b < evictions_per_batch.size();
       ++b)
    EXPECT_LE(evictions_per_batch[b], 1) << "batch " << b;
}

TEST(BatchBalance, SpreadsEvictionsEvenly) {
  const std::uint32_t n = 9;
  const auto costs = monomials(n, 2.0);
  LruPolicy lru;
  const AdversaryRun adv = run_adversary(n, 800, lru, costs);
  BatchBalancePolicy offline((n - 1) / 2);
  const SimResult run = run_trace(adv.trace, n - 1, offline, &costs);
  // The balancing rule bounds the per-tenant spread: max − min small.
  std::uint64_t max_miss = 0, min_miss = ~0ULL;
  for (std::uint32_t i = 0; i < n; ++i) {
    max_miss = std::max(max_miss, run.metrics.misses(i));
    min_miss = std::min(min_miss, run.metrics.misses(i));
  }
  EXPECT_LE(max_miss - min_miss, 4u);
}

TEST(BatchBalance, BeatsOnlineAlgorithmsByPolynomialFactor) {
  // The heart of Theorem 1.4: the offline scheme's cost is about
  // n·(4T/n²)^β while the online algorithm pays ≥ n·(T/n)^β.
  const std::uint32_t n = 9;
  const double beta = 2.0;
  const auto costs = monomials(n, beta);
  LruPolicy lru;
  const AdversaryRun adv = run_adversary(n, 1000, lru, costs);

  BatchBalancePolicy offline((n - 1) / 2);
  const SimResult off = run_trace(adv.trace, n - 1, offline, &costs);
  const double off_cost = total_cost(off.metrics.miss_vector(), costs);

  ASSERT_GT(off_cost, 0.0);
  const double ratio = adv.alg_cost / off_cost;
  // Theoretical prediction ≥ (n/4)^β = (9/4)² ≈ 5.06; allow slack for the
  // +1 additive terms at this modest T but demand a clear separation.
  EXPECT_GT(ratio, 3.0);
}

TEST(BatchBalance, RejectsZeroBatch) {
  EXPECT_THROW(BatchBalancePolicy(0), std::invalid_argument);
}

TEST(BatchBalance, RequiresPreview) {
  BatchBalancePolicy policy(3);
  Trace t(1);
  t.append(0, 1);
  t.append(0, 2);
  BatchBalancePolicy fresh(1);
  SimulatorSession session(1, 1, fresh, nullptr);
  session.step({0, 1});
  EXPECT_THROW(session.step({0, 2}), std::logic_error);
}

}  // namespace
}  // namespace ccc
