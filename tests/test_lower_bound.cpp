// Integration test of Theorem 1.4: the adversarial instance forces every
// deterministic online policy into an Ω(k)^β gap against the offline
// batch-balancing scheme.
#include <gtest/gtest.h>

#include "core/convex_caching.hpp"
#include "core/theory.hpp"
#include "cost/monomial.hpp"
#include "exp/adversary.hpp"
#include "offline/batch_balance.hpp"
#include "policies/lru.hpp"
#include "policies/marking.hpp"
#include "sim/simulator.hpp"

namespace ccc {
namespace {

std::vector<CostFunctionPtr> monomials(std::uint32_t n, double beta) {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta));
  return costs;
}

double offline_cost_on(const Trace& trace, std::uint32_t n,
                       const std::vector<CostFunctionPtr>& costs) {
  BatchBalancePolicy offline((n - 1) / 2);
  const SimResult run = run_trace(trace, n - 1, offline, &costs);
  return total_cost(run.metrics.miss_vector(), costs);
}

struct LbCase {
  std::uint64_t unused_seed;  // adversary is deterministic; kept for sweep
  std::uint32_t n;
  double beta;

  friend std::ostream& operator<<(std::ostream& os, const LbCase& c) {
    return os << "n" << c.n << "_beta" << c.beta;
  }
};

class LowerBoundSweep : public ::testing::TestWithParam<LbCase> {};

TEST_P(LowerBoundSweep, GapGrowsAsTheoremPredicts) {
  const LbCase c = GetParam();
  const auto costs = monomials(c.n, c.beta);
  const std::size_t length = 1200;

  // Online side: LRU (any deterministic policy suffers the same trace-level
  // fate — zero hits — so its miss vector is length-determined).
  LruPolicy lru;
  const AdversaryRun adv = run_adversary(c.n, length, lru, costs);
  const double offline = offline_cost_on(adv.trace, c.n, costs);
  ASSERT_GT(offline, 0.0);
  const double ratio = adv.alg_cost / offline;

  // The proof's algebra: online ≥ n·(T/n)^β, offline ≤ n·(4T/n²+1)^β.
  // Demand at least half the idealized (n/4)^β factor to absorb the
  // finite-T additive slop.
  const double predicted = theorem14_lower_factor(c.n, c.beta);
  EXPECT_GT(ratio, 0.5 * predicted)
      << "n=" << c.n << " beta=" << c.beta << " ratio=" << ratio
      << " predicted=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(Grid, LowerBoundSweep,
                         ::testing::Values(LbCase{0, 7, 1.0},
                                           LbCase{0, 7, 2.0},
                                           LbCase{0, 9, 2.0},
                                           LbCase{0, 9, 3.0},
                                           LbCase{0, 11, 2.0}));

TEST(LowerBound, GapIncreasesWithBeta) {
  // Fixing n, the ratio must grow with β — the polynomial amplification.
  const std::uint32_t n = 9;
  double previous_ratio = 0.0;
  for (const double beta : {1.0, 2.0, 3.0}) {
    const auto costs = monomials(n, beta);
    LruPolicy lru;
    const AdversaryRun adv = run_adversary(n, 1000, lru, costs);
    const double offline = offline_cost_on(adv.trace, n, costs);
    const double ratio = adv.alg_cost / offline;
    EXPECT_GT(ratio, previous_ratio) << "beta=" << beta;
    previous_ratio = ratio;
  }
}

TEST(LowerBound, ConvexCachingCannotEscapeEither) {
  // Theorem 1.4 applies to EVERY deterministic online algorithm, including
  // the paper's own: the adversary adapts to it and forces a miss per step.
  const std::uint32_t n = 7;
  const auto costs = monomials(n, 2.0);
  ConvexCachingPolicy policy;
  const AdversaryRun adv = run_adversary(n, 800, policy, costs);
  EXPECT_EQ(adv.alg_metrics.total_hits(), 0u);
  const double offline = offline_cost_on(adv.trace, n, costs);
  EXPECT_GT(adv.alg_cost / offline, 2.0);
}

TEST(LowerBound, MarkingFaresNoBetter) {
  const std::uint32_t n = 7;
  const auto costs = monomials(n, 2.0);
  MarkingPolicy policy;
  const AdversaryRun adv = run_adversary(n, 800, policy, costs);
  EXPECT_EQ(adv.alg_metrics.total_hits(), 0u);
}

}  // namespace
}  // namespace ccc
