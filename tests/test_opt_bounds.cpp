// Tests for the OPT bracketing machinery (offline/opt_bounds.hpp).
#include "offline/opt_bounds.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(CheapestDistribution, EqualizesConvexMarginals) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  // 6 misses over two identical quadratics → 3 + 3 (cost 18), never 6+0
  // (cost 36).
  const OptResult r = cheapest_distribution(6, costs, 2);
  EXPECT_EQ(r.misses, (std::vector<std::uint64_t>{3, 3}));
  EXPECT_DOUBLE_EQ(r.cost, 18.0);
}

TEST(CheapestDistribution, PrefersCheapTenant) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0, 1.0));   // x
  costs.push_back(std::make_unique<MonomialCost>(1.0, 10.0));  // 10x
  const OptResult r = cheapest_distribution(5, costs, 2);
  EXPECT_EQ(r.misses, (std::vector<std::uint64_t>{5, 0}));
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
}

TEST(CheapestDistribution, MixesWhenMarginalsCross) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));       // marginals 1,3,5,...
  costs.push_back(std::make_unique<MonomialCost>(1.0, 4.0));  // marginals 4,4,...
  // Greedy: 1, 3, then 4 vs 5 → distribution (2, then cheap marginal 4...)
  const OptResult r = cheapest_distribution(4, costs, 2);
  // marginals taken: 1 (t0), 3 (t0), 4 (t1), 4 (t1) → (2,2), cost 12.
  EXPECT_EQ(r.misses, (std::vector<std::uint64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(r.cost, 12.0);
}

TEST(CheapestDistribution, ZeroMissesZeroCost) {
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  const OptResult r = cheapest_distribution(0, costs, 1);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(EstimateOpt, ExactOnSmallInstances) {
  Rng rng(51);
  const Trace t = random_uniform_trace(2, 3, 40, rng);
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  costs.push_back(std::make_unique<MonomialCost>(2.0));
  const OptEstimate e = estimate_opt(t, 2, costs);
  EXPECT_TRUE(e.exact);
  EXPECT_DOUBLE_EQ(e.upper_cost, e.lower_cost);
}

TEST(EstimateOpt, BracketsOnLargeInstances) {
  Rng rng(52);
  const Trace t = random_uniform_trace(3, 40, 2000, rng);
  std::vector<CostFunctionPtr> costs;
  for (int i = 0; i < 3; ++i)
    costs.push_back(std::make_unique<MonomialCost>(2.0));
  const OptEstimate e = estimate_opt(t, 10, costs);
  EXPECT_FALSE(e.exact);
  EXPECT_GT(e.lower_cost, 0.0);
  EXPECT_GE(e.upper_cost, e.lower_cost);
}

TEST(EstimateOpt, BracketContainsExactOptimum) {
  // On instances where both paths are available, the heuristic bracket must
  // contain the exact optimum.
  for (std::uint64_t seed = 61; seed < 67; ++seed) {
    Rng rng(seed);
    const Trace t = random_uniform_trace(2, 3, 30, rng);
    std::vector<CostFunctionPtr> costs;
    costs.push_back(std::make_unique<MonomialCost>(2.0));
    costs.push_back(std::make_unique<MonomialCost>(3.0));
    const OptResult exact = exact_opt(t, 2, costs);
    // Force the heuristic path by setting the page limit to 0.
    const OptEstimate bracket = estimate_opt(t, 2, costs, 0);
    EXPECT_LE(bracket.lower_cost, exact.cost + 1e-9) << "seed " << seed;
    EXPECT_GE(bracket.upper_cost + 1e-9, exact.cost) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccc
