// Unit tests for trace serialization (trace/trace_io.hpp).
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(TraceIo, StreamRoundTrip) {
  Rng rng(9);
  const Trace original = random_uniform_trace(3, 5, 200, rng);
  std::stringstream buffer;
  save_trace(buffer, original);
  const Trace loaded = load_trace(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_tenants(), original.num_tenants());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIo, FileRoundTrip) {
  Rng rng(10);
  const Trace original = random_uniform_trace(2, 3, 50, rng);
  const std::string path = ::testing::TempDir() + "ccc_trace_test.txt";
  save_trace_file(path, original);
  const Trace loaded = load_trace_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsWrongMagic) {
  std::stringstream buffer("not-a-trace 1\n1 0\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream buffer("ccc-trace 2\n1 0\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedBody) {
  std::stringstream buffer("ccc-trace 1\n1 3\n0 1\n0 2\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW((void)load_trace_file("/nonexistent_xyz/trace.txt"),
               std::runtime_error);
}

// Malformed *content* (not just malformed framing) must honor the loaders'
// documented std::runtime_error contract — Trace's own std::invalid_argument
// (API misuse) must not leak through. Note invalid_argument is not a
// runtime_error, so these EXPECT_THROWs fail if the wrong type escapes.

TEST(TraceIo, RejectsZeroTenantHeader) {
  std::stringstream buffer("ccc-trace 1\n0 0\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfRangeTenant) {
  std::stringstream buffer("ccc-trace 1\n2 1\n5 7\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsPageClaimedByTwoTenants) {
  std::stringstream buffer("ccc-trace 1\n2 2\n0 7\n1 7\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIoBinary, StreamRoundTrip) {
  Rng rng(11);
  const Trace original = random_uniform_trace(3, 5, 200, rng);
  std::stringstream buffer;
  save_trace_binary(buffer, original);
  const Trace loaded = load_trace_binary(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_tenants(), original.num_tenants());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIoBinary, RejectsZeroTenantHeader) {
  std::stringstream buffer;
  save_trace_binary(buffer, Trace(1));
  std::string bytes = buffer.str();
  // Header layout: magic (4) + version (4) + num_tenants (4) + count (8).
  bytes[8] = '\0';
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)load_trace_binary(corrupted), std::runtime_error);
}

TEST(TraceIoBinary, RejectsOutOfRangeTenant) {
  Trace trace(2);
  trace.append(0, 7);
  std::stringstream buffer;
  save_trace_binary(buffer, trace);
  std::string bytes = buffer.str();
  // First request's tenant field starts right after the 20-byte header.
  bytes[20] = '\x09';
  std::stringstream corrupted(bytes);
  EXPECT_THROW((void)load_trace_binary(corrupted), std::runtime_error);
}

TEST(TraceIoBinary, RejectsTruncatedBody) {
  Trace trace(1);
  trace.append(0, 1);
  trace.append(0, 2);
  std::stringstream buffer;
  save_trace_binary(buffer, trace);
  std::stringstream truncated(buffer.str().substr(0, 24));
  EXPECT_THROW((void)load_trace_binary(truncated), std::runtime_error);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const Trace empty(4);
  std::stringstream buffer;
  save_trace(buffer, empty);
  const Trace loaded = load_trace(buffer);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.num_tenants(), 4u);
}

}  // namespace
}  // namespace ccc
