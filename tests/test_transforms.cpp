// Tests for trace transforms (trace/transforms.hpp) and the binary
// serialization format (trace/trace_io.hpp).
#include "trace/transforms.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace ccc {
namespace {

TEST(Slice, ExtractsRange) {
  Trace t(1);
  for (const int p : {1, 2, 3, 4, 5}) t.append(0, static_cast<PageId>(p));
  const Trace mid = slice(t, 1, 4);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0].page, 2u);
  EXPECT_EQ(mid[2].page, 4u);
  EXPECT_EQ(slice(t, 2, 2).size(), 0u);
  EXPECT_THROW((void)slice(t, 3, 2), std::invalid_argument);
  EXPECT_THROW((void)slice(t, 0, 6), std::invalid_argument);
}

TEST(Concat, JoinsAndRechecksOwnership) {
  Trace a(2), b(2);
  a.append(0, make_page(0, 1));
  b.append(1, make_page(1, 1));
  const Trace joined = concat(a, b);
  EXPECT_EQ(joined.size(), 2u);
  // Ownership conflicts are rejected.
  Trace c(2);
  c.append(1, make_page(0, 1));  // same page id, different tenant
  EXPECT_THROW((void)concat(a, c), std::invalid_argument);
  Trace d(3);
  EXPECT_THROW((void)concat(a, d), std::invalid_argument);
}

TEST(IsolateTenant, FiltersAndRenumbers) {
  Rng rng(4);
  const Trace t = random_uniform_trace(3, 4, 300, rng);
  const Trace only1 = isolate_tenant(t, 1);
  EXPECT_EQ(only1.num_tenants(), 1u);
  EXPECT_EQ(only1.size(), t.requests_per_tenant()[1]);
  for (const Request& r : only1) EXPECT_EQ(r.tenant, 0u);
  EXPECT_THROW((void)isolate_tenant(t, 5), std::invalid_argument);
}

TEST(Sample, ThinsApproximately) {
  Rng gen(5), rng(6);
  const Trace t = random_uniform_trace(1, 10, 10000, gen);
  const Trace thinned = sample(t, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(thinned.size()), 3000.0, 300.0);
  Rng rng2(7);
  EXPECT_EQ(sample(t, 0.0, rng2).size(), 0u);
  Rng rng3(8);
  EXPECT_EQ(sample(t, 1.0, rng3).size(), t.size());
  Rng rng4(9);
  EXPECT_THROW((void)sample(t, 1.5, rng4), std::invalid_argument);
}

TEST(Interleave, MergesWithShiftedTenants) {
  Rng ga(1), gb(2), rng(3);
  const Trace a = random_uniform_trace(2, 3, 100, ga);
  Trace b(1);
  for (int i = 0; i < 50; ++i) b.append(0, make_page(7, static_cast<PageId>(i)));
  const Trace merged = interleave(a, b, 1.0, 1.0, rng);
  EXPECT_EQ(merged.size(), 150u);
  EXPECT_EQ(merged.num_tenants(), 3u);
  // b's requests must appear as tenant 2.
  std::uint64_t b_count = 0;
  for (const Request& r : merged)
    if (r.tenant == 2) ++b_count;
  EXPECT_EQ(b_count, 50u);
}

TEST(BinaryTraceIo, RoundTrip) {
  Rng rng(11);
  const Trace original = random_uniform_trace(3, 6, 500, rng);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_trace_binary(buffer, original);
  const Trace loaded = load_trace_binary(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_tenants(), original.num_tenants());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(loaded[i], original[i]);
}

TEST(BinaryTraceIo, FileRoundTrip) {
  Rng rng(12);
  const Trace original = random_uniform_trace(2, 4, 200, rng);
  const std::string path = ::testing::TempDir() + "ccc_trace_test.bin";
  save_trace_binary_file(path, original);
  const Trace loaded = load_trace_binary_file(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(BinaryTraceIo, RejectsCorruptInput) {
  std::stringstream bad("XXXX garbage");
  EXPECT_THROW((void)load_trace_binary(bad), std::runtime_error);
  // Truncated body.
  Rng rng(13);
  const Trace t = random_uniform_trace(1, 3, 20, rng);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_trace_binary(buffer, t);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)load_trace_binary(truncated), std::runtime_error);
}

TEST(BinaryTraceIo, FixedRecordSize) {
  Rng rng(14);
  const Trace t = random_uniform_trace(2, 8, 2000, rng);
  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  save_trace_binary(binary, t);
  // Header: 4 magic + 4 version + 4 tenants + 8 count; body: 12 bytes each.
  EXPECT_EQ(binary.str().size(), 20u + 12u * t.size());
}

}  // namespace
}  // namespace ccc
