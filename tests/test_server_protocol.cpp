// Tests for the cache-server wire codec (src/server/protocol): frame
// round-trips, pipelined and byte-at-a-time reassembly, the full framing
// error taxonomy (each one poisoning the decoder permanently), body-layout
// parsing, and the STATS payload serialization.
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace ccc::server {
namespace {

std::vector<RequestMsg> decode_all(FrameDecoder& decoder,
                                   std::string_view bytes,
                                   DecodeError expect = DecodeError::kNone) {
  std::vector<RequestMsg> out;
  const DecodeError err = decoder.feed(bytes, [&](const FrameView& frame) {
    const auto msg = parse_request(frame);
    ASSERT_TRUE(msg.has_value());
    out.push_back(*msg);
  });
  EXPECT_EQ(err, expect);
  return out;
}

// Little-endian u32 at a byte offset of an encoded frame string.
void patch_u32(std::string& frame, std::size_t offset, std::uint32_t value) {
  ASSERT_GE(frame.size(), offset + 4);
  for (int i = 0; i < 4; ++i)
    frame[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xFF);
}

TEST(ServerProtocol, RequestRoundTrip) {
  std::string wire;
  append_request(wire, Opcode::kGet, 7, make_page(7, 1234));
  EXPECT_EQ(wire.size(), kRequestFrameBytes);

  FrameDecoder decoder(kRequestBodyBytes);
  const auto msgs = decode_all(decoder, wire);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].opcode, static_cast<std::uint8_t>(Opcode::kGet));
  EXPECT_EQ(msgs[0].tenant, 7u);
  EXPECT_EQ(msgs[0].page, make_page(7, 1234));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.error(), DecodeError::kNone);
}

TEST(ServerProtocol, PipelinedFramesDecodeInOrder) {
  std::string wire;
  for (std::uint64_t i = 0; i < 100; ++i)
    append_request(wire, i % 2 == 0 ? Opcode::kGet : Opcode::kSet,
                   static_cast<TenantId>(i % 5),
                   make_page(static_cast<TenantId>(i % 5), i));

  FrameDecoder decoder(kRequestBodyBytes);
  const auto msgs = decode_all(decoder, wire);
  ASSERT_EQ(msgs.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(msgs[i].opcode,
              static_cast<std::uint8_t>(i % 2 == 0 ? Opcode::kGet
                                                   : Opcode::kSet));
    EXPECT_EQ(msgs[i].page, make_page(static_cast<TenantId>(i % 5), i));
  }
}

TEST(ServerProtocol, ReassemblesAcrossArbitraryChunkBoundaries) {
  std::string wire;
  for (std::uint64_t i = 0; i < 20; ++i)
    append_request(wire, Opcode::kGet, 1, make_page(1, i));

  // Every chunk size from 1 (byte-at-a-time) to a full frame and beyond
  // must reassemble the identical message sequence.
  for (std::size_t chunk = 1; chunk <= kRequestFrameBytes + 3; ++chunk) {
    FrameDecoder decoder(kRequestBodyBytes);
    std::vector<RequestMsg> msgs;
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      const auto piece = std::string_view(wire).substr(
          off, std::min(chunk, wire.size() - off));
      ASSERT_EQ(decoder.feed(piece,
                             [&](const FrameView& frame) {
                               msgs.push_back(*parse_request(frame));
                             }),
                DecodeError::kNone);
    }
    ASSERT_EQ(msgs.size(), 20u) << "chunk=" << chunk;
    for (std::uint64_t i = 0; i < 20; ++i)
      EXPECT_EQ(msgs[i].page, make_page(1, i));
  }
}

TEST(ServerProtocol, BadMagicPoisonsPermanently) {
  std::string wire;
  append_request(wire, Opcode::kGet, 0, make_page(0, 1));
  patch_u32(wire, 4, 0xDEADBEEF);  // magic field

  FrameDecoder decoder(kRequestBodyBytes);
  decode_all(decoder, wire, DecodeError::kBadMagic);
  EXPECT_EQ(decoder.error(), DecodeError::kBadMagic);

  // A perfectly valid frame afterwards must NOT be decoded: there is no
  // trustworthy frame boundary after garbage.
  std::string good;
  append_request(good, Opcode::kGet, 0, make_page(0, 2));
  const DecodeError err = decoder.feed(
      good, [](const FrameView&) { FAIL() << "sink after poison"; });
  EXPECT_EQ(err, DecodeError::kBadMagic);
}

TEST(ServerProtocol, BadVersionAndReservedAreRejected) {
  {
    std::string wire;
    append_request(wire, Opcode::kGet, 0, make_page(0, 1));
    wire[8] = 99;  // version byte
    FrameDecoder decoder(kRequestBodyBytes);
    decode_all(decoder, wire, DecodeError::kBadVersion);
  }
  {
    std::string wire;
    append_request(wire, Opcode::kGet, 0, make_page(0, 1));
    wire[10] = 1;  // reserved lo byte
    FrameDecoder decoder(kRequestBodyBytes);
    decode_all(decoder, wire, DecodeError::kBadReserved);
  }
}

TEST(ServerProtocol, UndersizedLengthIsBadLength) {
  std::string wire;
  append_request(wire, Opcode::kGet, 0, make_page(0, 1));
  patch_u32(wire, 0, static_cast<std::uint32_t>(kFramePrefixBytes - 1));
  FrameDecoder decoder(kRequestBodyBytes);
  decode_all(decoder, wire, DecodeError::kBadLength);
}

TEST(ServerProtocol, OversizedLengthRejectedBeforeBodyArrives) {
  // Only the 4-byte length field is sent; the decoder must reject it
  // immediately instead of waiting to buffer a body it will never accept.
  std::string wire;
  patch_u32(wire.insert(0, 4, '\0'), 0, 1u << 30);
  FrameDecoder decoder(kRequestBodyBytes);
  decode_all(decoder, wire, DecodeError::kOversized);
  EXPECT_EQ(decoder.error(), DecodeError::kOversized);
}

TEST(ServerProtocol, GarbageStreamIsRejected) {
  std::string garbage(256, '\x5A');
  FrameDecoder decoder(kRequestBodyBytes);
  std::size_t emitted = 0;
  const DecodeError err =
      decoder.feed(garbage, [&](const FrameView&) { ++emitted; });
  EXPECT_NE(err, DecodeError::kNone);
  EXPECT_EQ(emitted, 0u);
}

TEST(ServerProtocol, ResponseRoundTripWithTail) {
  const std::vector<std::uint8_t> tail = {1, 2, 3, 4, 5};
  std::string wire;
  append_response(wire, Status::kHit, 42,
                  std::span<const std::uint8_t>(tail));

  FrameDecoder decoder(64);
  std::size_t seen = 0;
  ASSERT_EQ(decoder.feed(wire,
                         [&](const FrameView& frame) {
                           const auto msg = parse_response(frame);
                           ASSERT_TRUE(msg.has_value());
                           EXPECT_EQ(msg->status,
                                     static_cast<std::uint8_t>(Status::kHit));
                           EXPECT_EQ(msg->value, 42u);
                           ASSERT_EQ(msg->tail.size(), tail.size());
                           EXPECT_TRUE(std::memcmp(msg->tail.data(),
                                                   tail.data(),
                                                   tail.size()) == 0);
                           ++seen;
                         }),
            DecodeError::kNone);
  EXPECT_EQ(seen, 1u);
}

TEST(ServerProtocol, ShortResponseBodyFailsParse) {
  std::string wire;
  append_response(wire, Status::kOk);
  // Shrink the body: drop the last byte and fix the length field.
  wire.pop_back();
  patch_u32(wire, 0,
            static_cast<std::uint32_t>(kFramePrefixBytes +
                                       kResponseBodyBytes - 1));
  FrameDecoder decoder(64);
  std::size_t seen = 0;
  ASSERT_EQ(decoder.feed(wire,
                         [&](const FrameView& frame) {
                           EXPECT_FALSE(parse_response(frame).has_value());
                           ++seen;
                         }),
            DecodeError::kNone);
  EXPECT_EQ(seen, 1u);
}

TEST(ServerProtocol, WrongRequestBodySizeFailsParse) {
  // A well-framed frame whose body is one byte short of a request body.
  std::string wire;
  append_response(wire, Status::kOk);  // 8-byte body != kRequestBodyBytes
  FrameDecoder decoder(64);
  ASSERT_EQ(decoder.feed(wire,
                         [&](const FrameView& frame) {
                           EXPECT_FALSE(parse_request(frame).has_value());
                         }),
            DecodeError::kNone);
}

TEST(ServerProtocol, StatsPayloadRoundTrip) {
  StatsPayload stats;
  stats.num_tenants = 3;
  stats.num_shards = 4;
  stats.capacity = 128;
  stats.lockfree_hits = 99;
  stats.hits = {10, 20, 30};
  stats.misses = {1, 2, 3};
  stats.evictions = {0, 1, 2};

  std::string body;
  append_stats_body(body, stats);
  const auto parsed = parse_stats_body(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(body.data()), body.size()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_tenants, 3u);
  EXPECT_EQ(parsed->num_shards, 4u);
  EXPECT_EQ(parsed->capacity, 128u);
  EXPECT_EQ(parsed->lockfree_hits, 99u);
  EXPECT_EQ(parsed->hits, stats.hits);
  EXPECT_EQ(parsed->misses, stats.misses);
  EXPECT_EQ(parsed->evictions, stats.evictions);
}

TEST(ServerProtocol, TruncatedOrInflatedStatsBodyFailsParse) {
  StatsPayload stats;
  stats.num_tenants = 2;
  stats.hits = {1, 2};
  stats.misses = {3, 4};
  stats.evictions = {5, 6};
  std::string body;
  append_stats_body(body, stats);

  const auto* bytes = reinterpret_cast<const std::uint8_t*>(body.data());
  // Every strict prefix must fail.
  for (std::size_t n = 0; n < body.size(); ++n)
    EXPECT_FALSE(
        parse_stats_body(std::span<const std::uint8_t>(bytes, n)).has_value())
        << "prefix " << n;
  // One trailing junk byte must fail too (exact-length contract).
  std::string inflated = body + '\0';
  EXPECT_FALSE(parse_stats_body(
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(inflated.data()),
                       inflated.size()))
                   .has_value());
}

TEST(ServerProtocol, StatsOpcodeUsesRequestFraming) {
  // STATS requests ride the fixed-size request frame (tenant/page zero),
  // so the server's decoder needs exactly one max-body setting.
  std::string wire;
  append_request(wire, Opcode::kStats, 0, 0);
  EXPECT_EQ(wire.size(), kRequestFrameBytes);
  FrameDecoder decoder(kRequestBodyBytes);
  const auto msgs = decode_all(decoder, wire);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].opcode, static_cast<std::uint8_t>(Opcode::kStats));
}

}  // namespace
}  // namespace ccc::server
