// Tests for the live competitive-ratio telemetry (obs/cost_tracker.hpp):
// the banked dual mass against the ALG-CONT transcript, soundness of the
// certified lower bound against the exact offline DP, the measured ratio
// against the Theorem 1.1 prediction, merge algebra (associativity /
// commutativity, duplicate-account rejection), and the Fenchel conjugates
// backing it all.
#include "obs/cost_tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/convex_caching.hpp"
#include "core/primal_dual.hpp"
#include "cost/combinators.hpp"
#include "cost/monomial.hpp"
#include "offline/exact_opt.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ccc::obs {
namespace {

std::vector<CostFunctionPtr> monomials(std::uint32_t n, double beta) {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta));
  return costs;
}

/// Runs ALG-DISCRETE over `trace` and packages its books as a one-account
/// tracker, exactly as ShardedCache::dual_accounts + collect() would for a
/// single shard.
CostTracker run_and_track(const Trace& trace, std::size_t capacity,
                          const std::vector<CostFunctionPtr>& costs) {
  ConvexCachingPolicy policy;
  const SimResult result = run_trace(trace, capacity, policy, &costs);
  CostTracker tracker(trace.num_tenants());
  tracker.add_misses(result.metrics.miss_vector());
  DualAccount account;
  account.id = 0;
  account.valid = policy.dual_certificate_valid();
  account.mass = policy.dual_mass_by_tenant();
  account.evictions = policy.tenant_evictions();
  tracker.add_account(std::move(account));
  return tracker;
}

// ------------------------------------------------- transcript identity

// The dual objective telescopes to exactly Σ B(victim): the banked mass
// must equal ALG-CONT's y_total() on the same trace, because ALG-DISCRETE
// raises y by precisely the victim's budget per eviction (DESIGN.md §13).
TEST(CostTracker, BankedMassMatchesContinuousTranscript) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Trace trace = random_uniform_trace(2, 4, 160, rng);
    const auto costs = monomials(2, 2.0);
    const std::size_t k = 3;
    const CostTracker tracker = run_and_track(trace, k, costs);
    const PrimalDualRun cont = run_alg_cont(trace, k, costs);
    double banked = 0.0;
    for (const double m : tracker.accounts()[0].mass) banked += m;
    EXPECT_NEAR(banked, cont.y_total(), 1e-9 * (1.0 + cont.y_total()))
        << "seed " << seed;
  }
}

// ------------------------------------------------------- LB soundness

// Weak duality: the certified bound must sit below the exact optimum on
// every instance small enough to solve exactly — across cost shapes,
// including a mixed linear/quadratic portfolio where the conjugate caps
// the scaling search.
TEST(CostTracker, LowerBoundNeverExceedsExactOpt) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 7919);
    const Trace trace = random_uniform_trace(2, 3, 48, rng);
    std::vector<CostFunctionPtr> costs;
    costs.push_back(std::make_unique<MonomialCost>(2.0));
    costs.push_back(std::make_unique<MonomialCost>(1.0, 2.0));
    const std::size_t k = 2;
    const CostTracker tracker = run_and_track(trace, k, costs);
    const CostSnapshot snap = tracker.snapshot(costs, k);
    ASSERT_TRUE(snap.certified);
    const OptResult opt = exact_opt(trace, k, costs);
    EXPECT_LE(snap.dual_lower_bound, opt.cost + 1e-6 * (1.0 + opt.cost))
        << "seed " << seed;
    // The tenant shares decompose the certificate exactly.
    double shares = 0.0;
    for (const double s : snap.tenant_lower_bound) shares += s;
    if (snap.dual_lower_bound > 0.0) {
      EXPECT_NEAR(shares, snap.dual_lower_bound,
                  1e-9 * (1.0 + snap.dual_lower_bound));
    }
  }
}

// The scaling search must recover a *useful* bound, not just a sound one:
// on the k=1 two-page thrash with f(x)=x² the naive u=1 evaluation gives
// LB ≈ M while OPT ≈ M²/4 is attainable at u=1/2 — the measured ratio then
// approaches Corollary 1.2's β^β·k^β = 4 instead of diverging.
TEST(CostTracker, ScalingSearchRecoversQuadraticThrashBound) {
  const int kRounds = 64;
  Trace trace(1);
  for (int i = 0; i < kRounds; ++i) {
    trace.append(0, make_page(0, 0));
    trace.append(0, make_page(0, 1));
  }
  const auto costs = monomials(1, 2.0);
  const CostTracker tracker = run_and_track(trace, 1, costs);
  const CostSnapshot snap = tracker.snapshot(costs, 1);
  ASSERT_TRUE(snap.certified);
  const double misses = static_cast<double>(tracker.misses()[0]);
  EXPECT_GE(snap.dual_lower_bound, misses * misses / 4.0 * 0.9);
  EXPECT_LE(snap.competitive_ratio, snap.theorem_ratio_bound + 1e-6);
  EXPECT_DOUBLE_EQ(snap.theorem_ratio_bound, 4.0);  // β^β·k^β = 2²·1²
}

// Measured ratio stays under the Theorem 1.1 value-domain cap on the same
// randomized instances the CI smoke traces draw from.
TEST(CostTracker, MeasuredRatioRespectsTheoremBound) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 104729);
    const Trace trace = random_uniform_trace(3, 5, 400, rng);
    const auto costs = monomials(3, 2.0);
    const std::size_t k = 4;
    const CostTracker tracker = run_and_track(trace, k, costs);
    const CostSnapshot snap = tracker.snapshot(costs, k);
    ASSERT_TRUE(snap.certified);
    if (snap.competitive_ratio > 0.0) {
      EXPECT_LE(snap.competitive_ratio, snap.theorem_ratio_bound * (1 + 1e-9))
          << "seed " << seed;
    }
  }
}

// Windowed accounting re-bases budgets mid-run — the books stop being a
// dual transcript, and the tracker must say so instead of certifying.
TEST(CostTracker, WindowedPolicyCarriesNoCertificate) {
  Rng rng(3);
  const Trace trace = random_uniform_trace(2, 4, 120, rng);
  const auto costs = monomials(2, 2.0);
  ConvexCachingOptions options;
  options.window_length = 16;
  ConvexCachingPolicy policy(options);
  const SimResult result = run_trace(trace, 3, policy, &costs);
  CostTracker tracker(trace.num_tenants());
  tracker.add_misses(result.metrics.miss_vector());
  DualAccount account;
  account.valid = policy.dual_certificate_valid();
  account.mass = policy.dual_mass_by_tenant();
  account.evictions = policy.tenant_evictions();
  tracker.add_account(std::move(account));
  EXPECT_FALSE(policy.dual_certificate_valid());
  const CostSnapshot snap = tracker.snapshot(costs, 3);
  EXPECT_FALSE(snap.certified);
  EXPECT_DOUBLE_EQ(snap.dual_lower_bound, 0.0);
  EXPECT_DOUBLE_EQ(snap.competitive_ratio, 0.0);
  EXPECT_GT(snap.cost_total, 0.0) << "costs still reported uncertified";
}

// ---------------------------------------------------------- merge algebra

CostTracker random_tracker(std::uint32_t num_tenants, std::uint64_t first_id,
                           std::size_t num_accounts, Rng& rng) {
  CostTracker tracker(num_tenants);
  std::vector<std::uint64_t> misses(num_tenants);
  for (auto& m : misses) m = rng.next_below(1000);
  tracker.add_misses(misses);
  for (std::size_t a = 0; a < num_accounts; ++a) {
    DualAccount account;
    account.id = first_id + a;
    account.valid = true;
    for (std::uint32_t t = 0; t < num_tenants; ++t) {
      account.evictions.push_back(rng.next_below(50));
      account.mass.push_back(
          static_cast<double>(rng.next_below(100000)) / 256.0);
    }
    tracker.add_account(std::move(account));
  }
  return tracker;
}

bool trackers_identical(const CostTracker& a, const CostTracker& b) {
  if (a.misses() != b.misses()) return false;
  if (a.accounts().size() != b.accounts().size()) return false;
  for (std::size_t i = 0; i < a.accounts().size(); ++i) {
    const DualAccount& x = a.accounts()[i];
    const DualAccount& y = b.accounts()[i];
    // Bit-for-bit: the doubles must be *identical*, not merely close.
    if (x.id != y.id || x.valid != y.valid || x.mass != y.mass ||
        x.evictions != y.evictions)
      return false;
  }
  return true;
}

TEST(CostTrackerMerge, RandomizedAssociativeAndCommutative) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const std::uint32_t n = 1 + static_cast<std::uint32_t>(seed % 4);
    const CostTracker a = random_tracker(n, 0, 1 + seed % 3, rng);
    const CostTracker b = random_tracker(n, 100, 1 + seed % 2, rng);
    const CostTracker c = random_tracker(n, 200, 1 + seed % 3, rng);

    CostTracker ab = a;
    ab.merge(b);
    CostTracker ba = b;
    ba.merge(a);
    EXPECT_TRUE(trackers_identical(ab, ba)) << "commutativity, seed " << seed;

    CostTracker ab_c = ab;
    ab_c.merge(c);
    CostTracker bc = b;
    bc.merge(c);
    CostTracker a_bc = a;
    a_bc.merge(bc);
    EXPECT_TRUE(trackers_identical(ab_c, a_bc))
        << "associativity, seed " << seed;
  }
}

TEST(CostTrackerMerge, DuplicateAccountIdThrows) {
  Rng rng(9);
  CostTracker a = random_tracker(2, 5, 1, rng);
  const CostTracker b = random_tracker(2, 5, 1, rng);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CostTrackerMerge, TenantCountMismatchThrows) {
  Rng rng(10);
  CostTracker a = random_tracker(2, 0, 1, rng);
  const CostTracker b = random_tracker(3, 10, 1, rng);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// Merged tracker == tracker of the merged books: running two disjoint
// "shards" and merging their trackers must price the union the same as
// building one tracker from both accounts directly.
TEST(CostTrackerMerge, MergeEqualsDirectConstruction) {
  Rng rng(11);
  const auto costs = monomials(2, 2.0);
  const Trace t1 = random_uniform_trace(2, 3, 80, rng);
  const Trace t2 = random_uniform_trace(2, 3, 80, rng);
  CostTracker a = run_and_track(t1, 2, costs);
  CostTracker b = run_and_track(t2, 2, costs);
  // Re-key b's account so the ids do not collide.
  CostTracker b_rekeyed(2);
  b_rekeyed.add_misses(b.misses());
  DualAccount moved = b.accounts()[0];
  moved.id = 1;
  b_rekeyed.add_account(std::move(moved));
  a.merge(b_rekeyed);

  const CostSnapshot merged = a.snapshot(costs, 2);
  double cost = 0.0;
  for (std::size_t t = 0; t < 2; ++t)
    cost += costs[t]->value(static_cast<double>(a.misses()[t]));
  EXPECT_DOUBLE_EQ(merged.cost_total, cost);
  ASSERT_EQ(a.accounts().size(), 2u);
  EXPECT_TRUE(merged.certified);
}

// ------------------------------------------------------ Fenchel conjugate

TEST(Conjugate, MonomialClosedFormMatchesDefinition) {
  // f(x)=c·x^β ⇒ f*(λ) = (β−1)·c·(λ/(cβ))^{β/(β−1)} — spot-check against a
  // dense sup over b.
  const MonomialCost f(3.0, 2.0);  // 2·x³
  for (const double lambda : {0.5, 1.0, 4.0, 17.0}) {
    double sup = 0.0;
    for (double b = 0.0; b <= 50.0; b += 1e-3)
      sup = std::max(sup, lambda * b - f.value(b));
    EXPECT_NEAR(f.conjugate(lambda), sup, 1e-4 * (1.0 + sup)) << lambda;
    // Fenchel–Young holds with equality at b* — conjugate may never sit
    // below the dense sup (soundness requires an upper bound).
    EXPECT_GE(f.conjugate(lambda), sup - 1e-9);
  }
}

TEST(Conjugate, LinearCostIsIndicator) {
  const MonomialCost f(1.0, 3.0);  // 3·x
  EXPECT_DOUBLE_EQ(f.conjugate(2.0), 0.0);
  EXPECT_DOUBLE_EQ(f.conjugate(3.0), 0.0);
  EXPECT_TRUE(std::isinf(f.conjugate(3.0 + 1e-9)));
  EXPECT_DOUBLE_EQ(f.conjugate(-1.0), 0.0);
}

TEST(Conjugate, NumericFallbackUpperBoundsTrueConjugate) {
  // Exercise the CostFunction::conjugate default through SumCost (no
  // closed-form override): x² + 2x. True f*(λ) = (λ−2)²/4 for λ ≥ 2.
  SumCost f(std::make_unique<MonomialCost>(2.0),
            std::make_unique<MonomialCost>(1.0, 2.0));
  for (const double lambda : {2.5, 4.0, 10.0}) {
    const double exact = (lambda - 2.0) * (lambda - 2.0) / 4.0;
    const double numeric = f.conjugate(lambda);
    EXPECT_GE(numeric, exact - 1e-9) << "must stay an upper bound";
    EXPECT_NEAR(numeric, exact, 1e-6 * (1.0 + exact)) << lambda;
  }
  EXPECT_DOUBLE_EQ(f.conjugate(1.0), 0.0);  // below f'(0)=2: b*=0
}

}  // namespace
}  // namespace ccc::obs
