// Behavioral tests for randomized marking
// (policies/randomized_marking.hpp).
#include "policies/randomized_marking.hpp"

#include <gtest/gtest.h>

#include "exp/adversary.hpp"
#include "cost/monomial.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(RandomizedMarking, NeverEvictsMarkedPageWithinPhase) {
  // k=3: pages 1,2,3 all marked (fresh); a miss on 4 starts a new phase.
  // Then hits on two survivors mark them; the next miss must evict the
  // only unmarked page regardless of the random draw.
  RandomizedMarkingPolicy policy;
  SimulatorSession session(3, 1, policy, nullptr);
  for (const int p : {1, 2, 3, 4}) session.step({0, static_cast<PageId>(p)});
  // One of {1,2,3} was evicted; 4 is marked. Touch the two survivors.
  std::vector<PageId> survivors;
  for (const int p : {1, 2, 3})
    if (session.cache().contains(static_cast<PageId>(p)))
      survivors.push_back(static_cast<PageId>(p));
  ASSERT_EQ(survivors.size(), 2u);
  session.step({0, survivors[0]});
  const StepEvent miss = session.step({0, 99});
  ASSERT_TRUE(miss.victim.has_value());
  EXPECT_EQ(*miss.victim, survivors[1])
      << "the single unmarked page must be the victim";
}

TEST(RandomizedMarking, SeededAndReproducible) {
  Rng rng(3);
  const Trace t = random_uniform_trace(1, 10, 600, rng);
  SimOptions options;
  options.record_events = true;
  options.seed = 42;
  RandomizedMarkingPolicy p1, p2;
  const SimResult a = run_trace(t, 4, p1, nullptr, options);
  const SimResult b = run_trace(t, 4, p2, nullptr, options);
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_EQ(a.events[i].victim, b.events[i].victim);
}

TEST(RandomizedMarking, AdaptiveAdversaryStillWins) {
  // Theorem 1.4's adversary is adaptive (it sees the actual cache), so
  // even randomization cannot save the algorithm: zero hits.
  const std::uint32_t n = 6;
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(2.0));
  RandomizedMarkingPolicy policy;
  const AdversaryRun run = run_adversary(n, 300, policy, costs);
  EXPECT_EQ(run.alg_metrics.total_hits(), 0u);
}

TEST(RandomizedMarking, ContractOnRandomTraces) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    Rng rng(seed);
    const Trace t = random_uniform_trace(2, 9, 1200, rng);
    RandomizedMarkingPolicy policy;
    const SimResult result = run_trace(t, 5, policy, nullptr);
    EXPECT_EQ(result.metrics.total_hits() + result.metrics.total_misses(),
              t.size());
    EXPECT_LE(result.metrics.total_misses() -
                  result.metrics.total_evictions(),
              5u);
  }
}

}  // namespace
}  // namespace ccc
