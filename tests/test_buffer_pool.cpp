// Tests for the SQLVM-style buffer-pool facade (bufferpool/buffer_pool.hpp).
#include "bufferpool/buffer_pool.hpp"

#include <gtest/gtest.h>

#include "core/convex_caching.hpp"
#include "cost/piecewise_linear.hpp"
#include "policies/lru.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

std::vector<TenantContract> two_contracts() {
  std::vector<TenantContract> contracts;
  contracts.push_back(
      {"gold", std::make_unique<PiecewiseLinearCost>(
                   PiecewiseLinearCost::sla(2.0, 10.0))});
  contracts.push_back(
      {"bronze", std::make_unique<PiecewiseLinearCost>(
                     PiecewiseLinearCost::sla(50.0, 1.0))});
  return contracts;
}

TEST(BufferPool, TracksHitsAndMisses) {
  BufferPool pool(2, two_contracts(), std::make_unique<LruPolicy>(), 0);
  pool.access(0, make_page(0, 0));
  pool.access(0, make_page(0, 0));
  pool.access(1, make_page(1, 0));
  const BufferPoolReport report = pool.report();
  EXPECT_EQ(report.tenant_names[0], "gold");
  EXPECT_EQ(report.hits[0], 1u);
  EXPECT_EQ(report.misses[0], 1u);
  EXPECT_EQ(report.misses[1], 1u);
}

TEST(BufferPool, RefundFollowsSla) {
  // Gold tolerates 2 misses/window; force 5 gold misses in one window.
  BufferPool pool(1, two_contracts(), std::make_unique<LruPolicy>(), 100);
  for (int i = 0; i < 5; ++i)
    pool.access(0, make_page(0, static_cast<PageId>(i)));
  const BufferPoolReport report = pool.report();
  EXPECT_DOUBLE_EQ(report.refunds[0], (5.0 - 2.0) * 10.0);
  EXPECT_DOUBLE_EQ(report.refunds[1], 0.0);
  EXPECT_DOUBLE_EQ(report.total_refund, 30.0);
}

TEST(BufferPool, ReplayMatchesManualAccesses) {
  Rng rng(71);
  const Trace t = random_uniform_trace(2, 5, 200, rng);
  BufferPool a(3, two_contracts(), std::make_unique<LruPolicy>(), 50);
  BufferPool b(3, two_contracts(), std::make_unique<LruPolicy>(), 50);
  a.replay(t);
  for (const Request& r : t) b.access(r.tenant, r.page);
  const BufferPoolReport ra = a.report();
  const BufferPoolReport rb = b.report();
  EXPECT_EQ(ra.misses, rb.misses);
  EXPECT_EQ(ra.refunds, rb.refunds);
}

TEST(BufferPool, WorksWithConvexCachingPolicy) {
  Rng rng(72);
  const Trace t = random_uniform_trace(2, 6, 400, rng);
  BufferPool pool(4, two_contracts(),
                  std::make_unique<ConvexCachingPolicy>(), 100);
  pool.replay(t);
  const BufferPoolReport report = pool.report();
  EXPECT_EQ(report.policy_name, "ConvexCaching");
  EXPECT_EQ(report.hits[0] + report.misses[0] + report.hits[1] +
                report.misses[1],
            t.size());
}

TEST(BufferPool, ValidatesConstruction) {
  EXPECT_THROW(BufferPool(2, {}, std::make_unique<LruPolicy>(), 0),
               std::invalid_argument);
  EXPECT_THROW(BufferPool(2, two_contracts(), nullptr, 0),
               std::invalid_argument);
  std::vector<TenantContract> bad;
  bad.push_back({"x", nullptr});
  EXPECT_THROW(BufferPool(2, std::move(bad), std::make_unique<LruPolicy>(), 0),
               std::invalid_argument);
}

TEST(BufferPool, RejectsOutOfRangeTenant) {
  BufferPool pool(2, two_contracts(), std::make_unique<LruPolicy>(), 0);
  EXPECT_THROW(pool.access(2, make_page(2, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace ccc
