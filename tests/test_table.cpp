// Unit tests for the report-table builder (util/table.hpp).
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ccc {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, AddFormatsMixedTypes) {
  Table t({"name", "count", "value"});
  t.add("x", std::uint64_t{7}, 2.5);
  t.add(std::string("y"), 3, 10.0);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,7,2.5000"), std::string::npos);
  EXPECT_NE(csv.find("y,3,10"), std::string::npos);
}

TEST(Table, AsciiContainsHeadersAndAlignment) {
  Table t({"col", "longer_header"});
  t.add("v", "w");
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("col"), std::string::npos);
  EXPECT_NE(ascii.find("longer_header"), std::string::npos);
  EXPECT_NE(ascii.find('+'), std::string::npos);
  EXPECT_NE(ascii.find('|'), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.add(1, 2);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"x"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvRoundtrip) {
  Table t({"h1", "h2"});
  t.add(1, 2);
  const std::string path = ::testing::TempDir() + "ccc_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"h"});
  EXPECT_THROW(t.write_csv("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace ccc
