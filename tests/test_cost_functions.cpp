// Unit + property tests for the cost-function hierarchy (src/cost).
#include <gtest/gtest.h>

#include <cmath>

#include "cost/combinators.hpp"
#include "cost/cost_function.hpp"
#include "cost/exponential.hpp"
#include "cost/monomial.hpp"
#include "cost/piecewise_linear.hpp"
#include "cost/polynomial.hpp"

namespace ccc {
namespace {

TEST(MonomialCost, ValuesAndDerivatives) {
  const MonomialCost f(2.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(3.0), 9.0);
  EXPECT_DOUBLE_EQ(f.derivative(3.0), 6.0);
  EXPECT_DOUBLE_EQ(f.marginal(2), 9.0 - 4.0);
  EXPECT_TRUE(f.is_convex());
}

TEST(MonomialCost, ScaleApplies) {
  const MonomialCost f(1.0, 5.0);
  EXPECT_DOUBLE_EQ(f.value(4.0), 20.0);
  EXPECT_DOUBLE_EQ(f.derivative(100.0), 5.0);
}

TEST(MonomialCost, AlphaIsBeta) {
  for (const double beta : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    const MonomialCost f(beta);
    EXPECT_DOUBLE_EQ(f.alpha(1000.0), beta);
    // Closed form must agree with the numeric estimator.
    EXPECT_NEAR(estimate_alpha(f, 1000.0), beta, 1e-3);
  }
}

TEST(MonomialCost, RejectsInvalidParameters) {
  EXPECT_THROW(MonomialCost(0.5), std::invalid_argument);
  EXPECT_THROW(MonomialCost(2.0, 0.0), std::invalid_argument);
  const MonomialCost f(2.0);
  EXPECT_THROW((void)f.value(-1.0), std::invalid_argument);
  EXPECT_THROW((void)f.derivative(-1.0), std::invalid_argument);
}

TEST(MonomialCost, DerivativeAtZero) {
  EXPECT_DOUBLE_EQ(MonomialCost(1.0, 3.0).derivative(0.0), 3.0);
  EXPECT_DOUBLE_EQ(MonomialCost(2.0).derivative(0.0), 0.0);
}

TEST(PolynomialCost, HornerEvaluation) {
  // f(x) = 2x + 3x²
  const PolynomialCost f({0.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(2.0), 4.0 + 12.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), 2.0 + 12.0);
  EXPECT_EQ(f.degree(), 2u);
}

TEST(PolynomialCost, AlphaIsDegree) {
  const PolynomialCost f({0.0, 1.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(f.alpha(100.0), 3.0);
}

TEST(PolynomialCost, Validation) {
  EXPECT_THROW(PolynomialCost({0.0}), std::invalid_argument);    // degree 0
  EXPECT_THROW(PolynomialCost({1.0, 1.0}), std::invalid_argument);  // f(0)≠0
  EXPECT_THROW(PolynomialCost({0.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(PolynomialCost({0.0, 0.0}), std::invalid_argument);  // zero
}

TEST(PiecewiseLinearCost, SlaShape) {
  const auto f = PiecewiseLinearCost::sla(100.0, 5.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(100.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(120.0), 100.0);
  EXPECT_DOUBLE_EQ(f.derivative(50.0), 0.0);
  EXPECT_DOUBLE_EQ(f.derivative(150.0), 5.0);
}

TEST(PiecewiseLinearCost, FlatThenRisingAlphaIsInfinite) {
  const auto f = PiecewiseLinearCost::sla(100.0, 5.0);
  EXPECT_TRUE(std::isinf(f.alpha(1000.0)));
}

TEST(PiecewiseLinearCost, LinearFromOriginAlphaIsOne) {
  const PiecewiseLinearCost f({{0.0, 0.0}}, 2.0);
  EXPECT_DOUBLE_EQ(f.value(10.0), 20.0);
  EXPECT_NEAR(f.alpha(1000.0), 1.0, 1e-9);
}

TEST(PiecewiseLinearCost, MultiSegmentConvex) {
  const PiecewiseLinearCost f({{0.0, 0.0}, {10.0, 10.0}, {20.0, 30.0}}, 5.0);
  EXPECT_DOUBLE_EQ(f.value(5.0), 5.0);
  EXPECT_DOUBLE_EQ(f.value(15.0), 10.0 + 10.0);
  EXPECT_DOUBLE_EQ(f.value(25.0), 30.0 + 25.0);
  EXPECT_DOUBLE_EQ(f.derivative(12.0), 2.0);
  EXPECT_DOUBLE_EQ(f.derivative(999.0), 5.0);
}

TEST(PiecewiseLinearCost, RejectsNonConvex) {
  // Slopes 2 then 1: concave kink.
  EXPECT_THROW(
      PiecewiseLinearCost({{0.0, 0.0}, {10.0, 20.0}, {20.0, 30.0}}, 1.0),
      std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearCost({{1.0, 0.0}}), std::invalid_argument);
}

TEST(ExponentialCost, ValuesAndAlpha) {
  const ExponentialCost f(2.0, 0.5);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_NEAR(f.value(2.0), 2.0 * (std::exp(1.0) - 1.0), 1e-12);
  EXPECT_NEAR(f.derivative(2.0), 2.0 * 0.5 * std::exp(1.0), 1e-12);
  // alpha(x_max) ≈ b·x_max for large b·x_max.
  EXPECT_NEAR(f.alpha(100.0), 50.0, 0.1);
  EXPECT_NEAR(estimate_alpha(f, 100.0), f.alpha(100.0), 0.2);
}

TEST(StepCost, DiscreteMarginals) {
  const StepCost f(3.0, 10.0);  // jumps at 3, 6, 9, ...
  EXPECT_DOUBLE_EQ(f.value(2.9), 0.0);
  EXPECT_DOUBLE_EQ(f.value(3.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value(7.0), 20.0);
  EXPECT_FALSE(f.is_convex());
  // derivative() is the discrete marginal (§2.5).
  EXPECT_DOUBLE_EQ(f.derivative(2.0), 10.0);  // f(3)-f(2)
  EXPECT_DOUBLE_EQ(f.derivative(3.0), 0.0);   // f(4)-f(3)
}

TEST(SqrtCost, ConcaveShape) {
  const SqrtCost f;
  EXPECT_DOUBLE_EQ(f.value(4.0), 2.0);
  EXPECT_DOUBLE_EQ(f.derivative(4.0), 0.25);
  EXPECT_DOUBLE_EQ(f.alpha(100.0), 0.5);
  EXPECT_FALSE(f.is_convex());
}

TEST(Combinators, ScaledCost) {
  const ScaledCost f(3.0, std::make_unique<MonomialCost>(2.0));
  EXPECT_DOUBLE_EQ(f.value(2.0), 12.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), 12.0);
  EXPECT_DOUBLE_EQ(f.alpha(10.0), 2.0);  // scaling preserves alpha
  EXPECT_TRUE(f.is_convex());
}

TEST(Combinators, SumCost) {
  const SumCost f(std::make_unique<MonomialCost>(1.0, 2.0),
                  std::make_unique<MonomialCost>(2.0));
  EXPECT_DOUBLE_EQ(f.value(3.0), 6.0 + 9.0);
  EXPECT_DOUBLE_EQ(f.derivative(3.0), 2.0 + 6.0);
  EXPECT_TRUE(f.is_convex());
  // Numeric alpha of 2x + x² lies strictly between 1 and 2.
  const double a = f.alpha(1000.0);
  EXPECT_GT(a, 1.0);
  EXPECT_LE(a, 2.0);
}

TEST(CostFunction, CloneProducesIndependentCopy) {
  const MonomialCost f(2.0, 3.0);
  const auto g = f.clone();
  EXPECT_DOUBLE_EQ(g->value(2.0), f.value(2.0));
  EXPECT_EQ(g->describe(), f.describe());
}

TEST(CallableCost, WrapsFunctionPointers) {
  const CallableCost f([](double x) { return x * x * x; },
                       [](double x) { return 3.0 * x * x; }, true, "cubic");
  EXPECT_DOUBLE_EQ(f.value(2.0), 8.0);
  EXPECT_DOUBLE_EQ(f.derivative(2.0), 12.0);
  EXPECT_EQ(f.describe(), "cubic");
}

TEST(CallableCost, NumericDerivativeFallback) {
  const CallableCost f([](double x) { return x * x; }, nullptr, true, "sq");
  EXPECT_NEAR(f.derivative(3.0), 6.0, 1e-4);
}

// Property sweep: every convex family must have non-decreasing marginals
// and a derivative consistent with finite differences.
class ConvexFamilyTest : public ::testing::TestWithParam<int> {};

CostFunctionPtr family_member(int id) {
  switch (id) {
    case 0: return std::make_unique<MonomialCost>(1.0, 2.5);
    case 1: return std::make_unique<MonomialCost>(2.0);
    case 2: return std::make_unique<MonomialCost>(3.0, 0.5);
    case 3: return std::make_unique<PolynomialCost>(
                std::vector<double>{0.0, 1.0, 2.0});
    case 4: return std::make_unique<PiecewiseLinearCost>(
                PiecewiseLinearCost::sla(10.0, 4.0));
    case 5: return std::make_unique<ExponentialCost>(1.0, 0.1);
    default: return std::make_unique<MonomialCost>(1.5);
  }
}

TEST_P(ConvexFamilyTest, MarginalsAreNonDecreasing) {
  const auto f = family_member(GetParam());
  double prev = f->marginal(0);
  for (std::uint64_t m = 1; m < 200; ++m) {
    const double cur = f->marginal(m);
    EXPECT_GE(cur, prev - 1e-9) << f->describe() << " at m=" << m;
    prev = cur;
  }
}

TEST_P(ConvexFamilyTest, DerivativeMatchesFiniteDifference) {
  const auto f = family_member(GetParam());
  for (const double x : {0.5, 1.0, 5.0, 25.0, 80.0}) {
    const double h = 1e-6 * std::max(1.0, x);
    const double fd = (f->value(x + h) - f->value(x - h)) / (2.0 * h);
    // Piecewise-linear kinks make the FD check meaningless at knots; all
    // sampled points here are interior to segments.
    EXPECT_NEAR(f->derivative(x), fd, 1e-3 * std::max(1.0, std::fabs(fd)))
        << f->describe() << " at x=" << x;
  }
}

TEST_P(ConvexFamilyTest, ValueIsNonNegativeAndZeroAtOrigin) {
  const auto f = family_member(GetParam());
  EXPECT_NEAR(f->value(0.0), 0.0, 1e-12);
  for (const double x : {0.1, 1.0, 10.0, 1000.0})
    EXPECT_GE(f->value(x), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ConvexFamilyTest,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace ccc
