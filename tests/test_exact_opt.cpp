// Tests for the exact offline optimum (offline/exact_opt.hpp).
#include "offline/exact_opt.hpp"

#include <gtest/gtest.h>

#include "cost/monomial.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

std::vector<CostFunctionPtr> monomials(std::uint32_t n, double beta) {
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < n; ++i)
    costs.push_back(std::make_unique<MonomialCost>(beta));
  return costs;
}

TEST(ExactOpt, EmptyTraceCostsNothing) {
  const Trace t(2);
  const auto costs = monomials(2, 2.0);
  const OptResult r = exact_opt(t, 2, costs);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.misses, (std::vector<std::uint64_t>{0, 0}));
}

TEST(ExactOpt, ColdMissesAreUnavoidable) {
  Trace t(1);
  t.append(0, 1);
  t.append(0, 2);
  const auto costs = monomials(1, 2.0);
  const OptResult r = exact_opt(t, 2, costs);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);  // 2 misses, f(2)=4
  EXPECT_EQ(r.misses[0], 2u);
}

TEST(ExactOpt, KnowsToProtectExpensiveTenant) {
  // k=1. Tenant 0 (cheap, linear) and tenant 1 (f(x)=x^3). Alternating
  // requests force misses; OPT should never... both must miss on every
  // alternation with k=1, so verify cost equals the forced value.
  Trace t(2);
  for (int i = 0; i < 3; ++i) {
    t.append(0, make_page(0, 0));
    t.append(1, make_page(1, 0));
  }
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0));
  costs.push_back(std::make_unique<MonomialCost>(3.0));
  const OptResult r = exact_opt(t, 1, costs);
  EXPECT_EQ(r.misses[0], 3u);
  EXPECT_EQ(r.misses[1], 3u);
  EXPECT_DOUBLE_EQ(r.cost, 3.0 + 27.0);
}

TEST(ExactOpt, ConvexityShiftsMissesToCheapTenant) {
  // Two tenants alternate over two pages each; k=3 can fully host only one
  // tenant. With a quadratic cost for tenant 1 and linear for tenant 0,
  // OPT pins tenant 1's pair (cold misses only) and lets the cheap linear
  // tenant thrash: cost = (T/2 a-misses)·1 + f1(2).
  Trace t(2);
  for (int i = 0; i < 4; ++i) {
    t.append(0, make_page(0, 0));
    t.append(1, make_page(1, 0));
    t.append(0, make_page(0, 1));
    t.append(1, make_page(1, 1));
  }
  std::vector<CostFunctionPtr> costs;
  costs.push_back(std::make_unique<MonomialCost>(1.0));  // cheap linear
  costs.push_back(std::make_unique<MonomialCost>(2.0));  // expensive convex
  const OptResult r = exact_opt(t, 3, costs);
  EXPECT_EQ(r.misses[1], 2u) << "expensive tenant keeps its working set";
  // OPT alternates which a-page occupies the spare slot, converting one
  // a-request into a hit: 7 linear misses + f1(2) = 7 + 4.
  EXPECT_DOUBLE_EQ(r.cost, 7.0 + 4.0);
}

// Property: the Pareto DP agrees with plain brute force on tiny instances.
class DpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpVsBruteForce, IdenticalOptimalCost) {
  Rng rng(GetParam());
  const std::uint32_t tenants = 1 + static_cast<std::uint32_t>(
                                        rng.next_below(2));
  const Trace t = random_uniform_trace(tenants, 3, 11, rng);
  const std::size_t k = 2;
  std::vector<CostFunctionPtr> costs;
  for (std::uint32_t i = 0; i < tenants; ++i)
    costs.push_back(std::make_unique<MonomialCost>(
        1.0 + static_cast<double>(rng.next_below(3))));
  const OptResult dp = exact_opt(t, k, costs);
  const OptResult bf = exact_opt_bruteforce(t, k, costs);
  EXPECT_DOUBLE_EQ(dp.cost, bf.cost) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(ExactOpt, StateBudgetGuardThrows) {
  Rng rng(5);
  const Trace t = random_uniform_trace(2, 20, 200, rng);
  const auto costs = monomials(2, 2.0);
  EXPECT_THROW((void)exact_opt(t, 10, costs, /*state_budget=*/100),
               std::runtime_error);
}

TEST(ExactOpt, OptNeverBeatenByAnyOnlinePolicySchedule) {
  // OPT's cost is a true lower bound for any schedule, in particular LRU's.
  Rng rng(61);
  const Trace t = random_uniform_trace(2, 4, 40, rng);
  const auto costs = monomials(2, 2.0);
  const OptResult opt = exact_opt(t, 3, costs);
  // Simple feasibility sanity: the DP's per-tenant misses cover at least
  // the distinct pages of each tenant (cold misses are unavoidable).
  const auto pages = t.pages_per_tenant();
  double cold_cost = 0.0;
  for (std::size_t i = 0; i < pages.size(); ++i)
    cold_cost += costs[i]->value(static_cast<double>(pages[i]));
  EXPECT_GE(opt.cost + 1e-9, cold_cost);
}

}  // namespace
}  // namespace ccc
