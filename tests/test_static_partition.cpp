// Behavioral tests for the static-partition strawman
// (policies/static_partition.hpp).
#include "policies/static_partition.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace ccc {
namespace {

TEST(StaticPartition, TenantOverQuotaEvictsItsOwnLru) {
  StaticPartitionPolicy policy;  // equal quotas: 2 each with k=4
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(0, make_page(0, 1));
  t.append(1, make_page(1, 0));
  t.append(1, make_page(1, 1));
  t.append(0, make_page(0, 2));  // tenant 0 at quota → evict own LRU
  SimOptions options;
  options.record_events = true;
  const SimResult result = run_trace(t, 4, policy, nullptr, options);
  ASSERT_TRUE(result.events[4].victim.has_value());
  EXPECT_EQ(*result.events[4].victim, make_page(0, 0));
}

TEST(StaticPartition, QuotaEnforcedEvenWithFreeSpace) {
  // Quotas 1 and 3 (k=4): tenant 0's second and third pages force
  // self-evictions immediately, even though the cache has free slots —
  // that is what makes the allocation *static*.
  StaticPartitionPolicy policy({1, 3});
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(0, make_page(0, 1));  // at quota 1 → evicts own (0,0)
  t.append(0, make_page(0, 2));  // evicts own (0,1)
  t.append(1, make_page(1, 0));  // tenant 1 under quota: no eviction
  SimOptions options;
  options.record_events = true;
  const SimResult result = run_trace(t, 4, policy, nullptr, options);
  EXPECT_FALSE(result.events[0].victim.has_value());
  ASSERT_TRUE(result.events[1].victim.has_value());
  EXPECT_EQ(*result.events[1].victim, make_page(0, 0));
  ASSERT_TRUE(result.events[2].victim.has_value());
  EXPECT_EQ(*result.events[2].victim, make_page(0, 1));
  EXPECT_FALSE(result.events[3].victim.has_value());
}

TEST(StaticPartition, QuotaIsolationWastesCapacity) {
  // The paper's §1.1 complaint: an idle tenant's quota is wasted. A single
  // active tenant with half the cache must miss more under partitioning
  // than under any shared policy that can use the whole cache.
  Rng rng(3);
  std::vector<TenantWorkload> tenants;
  tenants.push_back({std::make_unique<UniformPages>(8), 1.0});
  tenants.push_back({std::make_unique<UniformPages>(8), 0.0001});  // idle-ish
  const Trace t = generate_trace(std::move(tenants), 3000, rng);

  StaticPartitionPolicy partitioned;  // 4+4 split of k=8
  const SimResult part = run_trace(t, 8, partitioned, nullptr);
  // Tenant 0's working set is 8 pages; with only 4 slots it must miss a lot.
  // With the full cache it would fit entirely (≤ 8 cold misses).
  EXPECT_GT(part.metrics.misses(0), 100u);
}

TEST(StaticPartition, ExplicitQuotasValidated) {
  StaticPartitionPolicy policy({2});  // only one quota for two tenants
  Trace t(2);
  t.append(0, make_page(0, 0));
  t.append(1, make_page(1, 0));
  EXPECT_THROW((void)run_trace(t, 2, policy, nullptr), std::invalid_argument);
}

TEST(StaticPartition, EqualSplitHandlesRemainder) {
  // k=5, 2 tenants → quotas 3 and 2; fill and confirm no crash and that
  // occupancy respects capacity.
  StaticPartitionPolicy policy;
  Rng rng(7);
  const Trace t = random_uniform_trace(2, 6, 500, rng);
  const SimResult result = run_trace(t, 5, policy, nullptr);
  EXPECT_EQ(result.metrics.total_hits() + result.metrics.total_misses(),
            t.size());
}

}  // namespace
}  // namespace ccc
