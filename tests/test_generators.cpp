// Unit tests for workload generators (trace/generators.hpp).
#include "trace/generators.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ccc {
namespace {

TEST(UniformPages, StaysInUniverseAndIsDeterministic) {
  UniformPages gen(10);
  Rng a(1), b(1);
  auto g2 = gen.clone();
  for (int i = 0; i < 500; ++i) {
    const auto x = gen.next(a);
    EXPECT_LT(x, 10u);
    EXPECT_EQ(x, g2->next(b));
  }
}

TEST(ZipfPages, SkewOrdersFrequencies) {
  ZipfPages gen(50, 1.2);
  Rng rng(7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.next(rng)];
  // Rank 0 must dominate rank 10 which must dominate rank 40.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

TEST(ZipfPages, ZeroSkewIsUniform) {
  ZipfPages gen(4, 0.0);
  Rng rng(7);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.next(rng)];
  for (const auto& [page, c] : counts) {
    (void)page;
    EXPECT_NEAR(c, kDraws / 4, 700);
  }
}

TEST(ScanPages, CyclesSequentially) {
  ScanPages gen(3);
  Rng rng(1);
  const std::uint64_t expected[] = {0, 1, 2, 0, 1, 2, 0};
  for (const std::uint64_t e : expected) EXPECT_EQ(gen.next(rng), e);
}

TEST(WorkingSetPages, HotPagesDominateWithinPhase) {
  WorkingSetPages gen(100, 5, 1000000, 0.95);
  Rng rng(3);
  int hot = 0;
  for (int i = 0; i < 10000; ++i)
    if (gen.next(rng) < 5) ++hot;
  EXPECT_GT(hot, 9000);  // ~95% hot + a few uniform draws landing hot
}

TEST(WorkingSetPages, PhaseShiftMovesHotSet) {
  WorkingSetPages gen(100, 10, 100, 1.0);
  Rng rng(3);
  std::map<std::uint64_t, int> first_phase, second_phase;
  for (int i = 0; i < 100; ++i) ++first_phase[gen.next(rng)];
  for (int i = 0; i < 100; ++i) ++second_phase[gen.next(rng)];
  // First phase draws only from [0,10); second from [5,15).
  for (const auto& [p, c] : first_phase) {
    (void)c;
    EXPECT_LT(p, 10u);
  }
  bool saw_shifted = false;
  for (const auto& [p, c] : second_phase) {
    (void)c;
    EXPECT_GE(p, 5u);
    EXPECT_LT(p, 15u);
    saw_shifted = saw_shifted || p >= 10;
  }
  EXPECT_TRUE(saw_shifted);
}

TEST(GenerateTrace, RespectsWeightsRoughly) {
  std::vector<TenantWorkload> tenants;
  tenants.push_back({std::make_unique<UniformPages>(10), 3.0});
  tenants.push_back({std::make_unique<UniformPages>(10), 1.0});
  Rng rng(11);
  const Trace trace = generate_trace(std::move(tenants), 20000, rng);
  const auto counts = trace.requests_per_tenant();
  EXPECT_NEAR(static_cast<double>(counts[0]), 15000.0, 500.0);
  EXPECT_NEAR(static_cast<double>(counts[1]), 5000.0, 500.0);
}

TEST(GenerateTrace, PagesAreNamespacedByTenant) {
  Rng rng(5);
  const Trace trace = random_uniform_trace(3, 4, 300, rng);
  for (const Request& r : trace) EXPECT_EQ(page_owner(r.page), r.tenant);
  EXPECT_LE(trace.distinct_pages(), 12u);
}

TEST(GenerateTrace, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const Trace t1 = random_uniform_trace(2, 5, 100, a);
  const Trace t2 = random_uniform_trace(2, 5, 100, b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t2[i]);
}

TEST(MarkovPages, FollowsRunsWhenProbabilityIsHigh) {
  // With follow probability 1 after the first draw, the stream walks the
  // fixed permutation cycle: consecutive draws must respect successor
  // structure (each page's successor is always the same page).
  MarkovPages gen(16, 1.0, 0.8, 42);
  Rng rng(1);
  std::uint64_t prev = gen.next(rng);
  std::map<std::uint64_t, std::uint64_t> successor_seen;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t cur = gen.next(rng);
    const auto it = successor_seen.find(prev);
    if (it != successor_seen.end()) {
      EXPECT_EQ(it->second, cur) << "cycle must be deterministic";
    }
    successor_seen[prev] = cur;
    prev = cur;
  }
}

TEST(MarkovPages, ZeroFollowIsPureZipf) {
  MarkovPages gen(50, 0.0, 1.2, 7);
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.next(rng)];
  EXPECT_GT(counts[0], counts[20]);
}

TEST(MarkovPages, RunsShortenReuseDistance) {
  // High follow probability produces long sequential runs → the stream
  // revisits pages in tight cycles, unlike the memoryless counterpart.
  const auto build = [](double follow) {
    std::vector<TenantWorkload> w;
    w.push_back({std::make_unique<MarkovPages>(64, follow, 0.5, 5), 1.0});
    Rng rng(9);
    return generate_trace(std::move(w), 4000, rng);
  };
  const TraceStats runs = compute_stats(build(0.95));
  const TraceStats memoryless = compute_stats(build(0.0));
  EXPECT_NE(runs.mean_reuse_distance, memoryless.mean_reuse_distance);
}

TEST(MarkovPages, ValidatesParameters) {
  EXPECT_THROW(MarkovPages(0, 0.5, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(MarkovPages(8, 1.5, 1.0, 1), std::invalid_argument);
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(UniformPages(0), std::invalid_argument);
  EXPECT_THROW(ZipfPages(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfPages(5, -1.0), std::invalid_argument);
  EXPECT_THROW(ScanPages(0), std::invalid_argument);
  EXPECT_THROW(WorkingSetPages(10, 0, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(WorkingSetPages(10, 11, 5, 0.5), std::invalid_argument);
  EXPECT_THROW(WorkingSetPages(10, 5, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(WorkingSetPages(10, 5, 5, 1.5), std::invalid_argument);
  Rng rng(1);
  EXPECT_THROW((void)generate_trace({}, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ccc
